#!/usr/bin/env python
"""Smoke-verify the observability pipeline end to end.

Runs ``repro.experiments.runner figure1 --fast --jobs 2`` in a temporary
directory and asserts the contract the manifest and structured log are
supposed to honour:

* ``manifest.json`` exists next to the CSV with the schema version, the
  seed, the parameters, a git SHA, and a metrics snapshot whose
  exact-test cache shows *nonzero hits* (the paired-sampling design makes
  the structure cache pay off after the first bandwidth — zero hits means
  the cache or its accounting broke);
* every line of the JSONL log parses as JSON and carries the mandatory
  fields;
* the CSV uses the current 10-column schema.

It then smoke-tests the verification harness itself
(:mod:`repro.verify`): the mutation smoke must flag **every**
deliberately injected off-by-one bug — a differential harness that
cannot catch known bugs would be handing out vacuous green lights.

Exit code 0 on success; raises (nonzero exit) with a diagnostic on any
violation.  ``make verify`` runs this after the tier-1 test suite.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_smoke() -> None:
    """Execute the smoke run and assert on its artifacts."""
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        csv_path = os.path.join(tmp, "figure1.csv")
        jsonl_path = os.path.join(tmp, "run.jsonl")
        manifest_path = os.path.join(tmp, "manifest.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.runner",
                "figure1", "--fast", "--jobs", "2",
                "--csv", csv_path, "--log-json", jsonl_path, "--quiet",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            raise AssertionError(
                f"runner exited {proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
            )
        if proc.stdout:
            raise AssertionError(
                f"--quiet run still wrote to stdout:\n{proc.stdout}"
            )

        # -- manifest ---------------------------------------------------
        if not os.path.exists(manifest_path):
            raise AssertionError(f"no manifest at {manifest_path}")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        for key in ("schema_version", "command", "parameters", "git",
                    "metrics", "spans", "wall_time_s"):
            if key not in manifest:
                raise AssertionError(f"manifest missing {key!r}")
        if manifest["command"] != "figure1":
            raise AssertionError(f"wrong command: {manifest['command']!r}")
        if "seed" not in manifest["parameters"]:
            raise AssertionError("manifest parameters missing the seed")
        if not manifest["git"]["sha"]:
            raise AssertionError("manifest has no git SHA")
        hits = manifest["metrics"].get("pdp.exact_cache.hits", {})
        if not hits.get("value", 0) > 0:
            raise AssertionError(
                "exact-test cache shows no hits — cache or accounting broke"
            )
        if not any("/bw" in key for key in manifest["spans"]):
            raise AssertionError("manifest spans carry no per-cell timings")

        # -- structured log ---------------------------------------------
        with open(jsonl_path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise AssertionError("JSONL log is empty")
        for number, line in enumerate(lines, 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise AssertionError(
                    f"line {number} of the JSONL log is not JSON: {error}"
                ) from error
            for field in ("ts", "level", "logger", "msg"):
                if field not in record:
                    raise AssertionError(
                        f"line {number} missing field {field!r}: {line}"
                    )

        # -- CSV schema --------------------------------------------------
        with open(csv_path, encoding="utf-8") as handle:
            header = handle.readline().strip().split(",")
        if len(header) != 10 or header[-1] != "deg_ttp":
            raise AssertionError(f"unexpected CSV schema: {header}")

    print("verify_smoke: ok (manifest, JSONL log, CSV schema, cache hits)")


def run_mutation_smoke_check() -> None:
    """Assert the fuzz harness flags every deliberately injected bug."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.verify import run_mutation_smoke

    report = run_mutation_smoke()
    if not report.all_detected:
        raise AssertionError(
            "mutation smoke missed an injected bug:\n" + report.summary()
        )
    print(
        "verify_smoke: ok (mutation smoke "
        f"{sum(report.detected.values())}/{len(report.detected)} detected)"
    )


if __name__ == "__main__":
    run_smoke()
    run_mutation_smoke_check()
