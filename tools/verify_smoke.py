#!/usr/bin/env python
"""Smoke-verify the observability pipeline end to end.

Runs ``repro.experiments.runner figure1 --fast --jobs 2`` in a temporary
directory and asserts the contract the manifest and structured log are
supposed to honour:

* ``manifest.json`` exists next to the CSV with the schema version, the
  seed, the parameters, a git SHA, and a metrics snapshot whose
  exact-test cache shows *nonzero hits* (the paired-sampling design makes
  the structure cache pay off after the first bandwidth — zero hits means
  the cache or its accounting broke);
* the run is given ``--cache-dir``, so the content-addressed result
  cache must surface ``cache.breakdown.*`` traffic in the manifest
  (USAGE.md §13) — writes on the first pass, and the persisted entries
  must actually exist on disk;
* every line of the JSONL log parses as JSON and carries the mandatory
  fields;
* the CSV uses the current 10-column schema.

It then smoke-tests the verification harness itself
(:mod:`repro.verify`): the mutation smoke must flag **every**
deliberately injected off-by-one bug — a differential harness that
cannot catch known bugs would be handing out vacuous green lights.

Next the admission-service canary spawns the asyncio server in-process
(``runner loadgen --spawn``) and drives two seconds of *paced* load:
at nominal rate the service must shed nothing, see zero transport
errors, keep p99 latency under 250 ms — the operational floor of
USAGE.md §14 — and its admission result cache must come out
hit-dominated (the catalogue repeats; misses winning means the
canonical set signatures broke).

The admission-engine guard then reruns the ``bench-admission`` canary
in-process: every warm cell must be cache-hit-dominated, and per-cell
means must stay within 2x of the committed ``BENCH_admission.json``
baseline (same same-hardware rule as the figure guard).

The lossy-medium canary reruns a small ``loss-sweep`` in-process and
asserts the retransmission-aware bounds stay *sound*: at loss fractions
{0, 0.01, 0.05}, every message set the fault-aware analysis accepts must
meet all deadlines when simulated against a fault plan drawn at the
budget's rate; breakdown utilization must be positive fault-free and
monotone non-increasing in the loss fraction.  A committed
``BENCH_loss.json`` (from ``make bench-loss``) is held to the same shape
invariants.

The columnar scale guard runs a reduced-size ``bench-scale`` in-process:
the columnar pipeline must analyse streams at least 50x faster per
stream than the object path, the variance-reduced streaming Monte Carlo
run must reach the target CI with no more evaluations than plain
sampling (and agree with it within the combined CI), and a committed
``BENCH_scale.json`` must record the same floors.

The cluster canary spawns a real 2-worker sharded fleet (worker
subprocesses behind the consistent-hash router) and drives paced load
through the front: zero transport errors, traffic on every shard, and
sound fleet accounting — the lease total and the jointly admitted
utilization must stay within the aggregate cap.  A committed
``BENCH_cluster.json`` (from ``make bench-cluster``) must carry the
single-worker baseline and a sound budget in every entry; its measured
multi-worker scaling ratio is held to a 2.5x floor only when it was
recorded on a host with 4+ cores (on fewer cores the honest ratio
cannot exceed ~1x and the floor is skipped with a notice).

Finally the perf-regression guard re-runs the ``bench-quick`` canary
benchmarks and compares their means against the committed
``BENCH_figure1.json`` baseline: any benchmark that got more than 2x
slower (with a 50 ms absolute floor, so microsecond jitter cannot trip
it) fails the build.  When the baseline was recorded on different
hardware the comparison is meaningless and is skipped with a notice.

Exit code 0 on success; raises (nonzero exit) with a diagnostic on any
violation.  ``make verify`` runs this after the tier-1 test suite.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_smoke() -> None:
    """Execute the smoke run and assert on its artifacts."""
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        csv_path = os.path.join(tmp, "figure1.csv")
        jsonl_path = os.path.join(tmp, "run.jsonl")
        manifest_path = os.path.join(tmp, "manifest.json")
        cache_dir = os.path.join(tmp, "result-cache")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.runner",
                "figure1", "--fast", "--jobs", "2",
                "--cache-dir", cache_dir,
                "--csv", csv_path, "--log-json", jsonl_path, "--quiet",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            raise AssertionError(
                f"runner exited {proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
            )
        if proc.stdout:
            raise AssertionError(
                f"--quiet run still wrote to stdout:\n{proc.stdout}"
            )

        # -- manifest ---------------------------------------------------
        if not os.path.exists(manifest_path):
            raise AssertionError(f"no manifest at {manifest_path}")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        for key in ("schema_version", "command", "parameters", "git",
                    "metrics", "spans", "wall_time_s"):
            if key not in manifest:
                raise AssertionError(f"manifest missing {key!r}")
        if manifest["command"] != "figure1":
            raise AssertionError(f"wrong command: {manifest['command']!r}")
        if "seed" not in manifest["parameters"]:
            raise AssertionError("manifest parameters missing the seed")
        if not manifest["git"]["sha"]:
            raise AssertionError("manifest has no git SHA")
        hits = manifest["metrics"].get("pdp.exact_cache.hits", {})
        if not hits.get("value", 0) > 0:
            raise AssertionError(
                "exact-test cache shows no hits — cache or accounting broke"
            )
        if not any("/bw" in key for key in manifest["spans"]):
            raise AssertionError("manifest spans carry no per-cell timings")
        cache_writes = manifest["metrics"].get("cache.breakdown.writes", {})
        if not cache_writes.get("value", 0) > 0:
            raise AssertionError(
                "--cache-dir run shows no cache.breakdown.writes in the "
                "manifest — result-cache accounting broke"
            )
        persisted = [
            name
            for _, _, files in os.walk(os.path.join(cache_dir, "breakdown"))
            for name in files if name.endswith(".json")
        ]
        if not persisted:
            raise AssertionError(
                f"--cache-dir wrote no breakdown entries under {cache_dir}"
            )

        # A second process against the same cache dir must *hit*: the keys
        # are content-addressed, so nothing about process identity may
        # change them, and the hit rate must be visible in its manifest.
        manifest2_path = os.path.join(tmp, "manifest2.json")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.runner",
                "figure1", "--fast", "--cache-dir", cache_dir,
                "--manifest", manifest2_path, "--quiet",
            ],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            raise AssertionError(
                f"cached re-run exited {proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
            )
        with open(manifest2_path, encoding="utf-8") as handle:
            manifest2 = json.load(handle)
        cache_hits = manifest2["metrics"].get("cache.breakdown.hits", {})
        if not cache_hits.get("value", 0) > 0:
            raise AssertionError(
                "re-run against a warm --cache-dir shows no "
                "cache.breakdown.hits in the manifest"
            )

        # -- structured log ---------------------------------------------
        with open(jsonl_path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise AssertionError("JSONL log is empty")
        for number, line in enumerate(lines, 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise AssertionError(
                    f"line {number} of the JSONL log is not JSON: {error}"
                ) from error
            for field in ("ts", "level", "logger", "msg"):
                if field not in record:
                    raise AssertionError(
                        f"line {number} missing field {field!r}: {line}"
                    )

        # -- CSV schema --------------------------------------------------
        with open(csv_path, encoding="utf-8") as handle:
            header = handle.readline().strip().split(",")
        if len(header) != 10 or header[-1] != "deg_ttp":
            raise AssertionError(f"unexpected CSV schema: {header}")

    print("verify_smoke: ok (manifest, JSONL log, CSV schema, cache hits)")


def run_mutation_smoke_check() -> None:
    """Assert the fuzz harness flags every deliberately injected bug."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.verify import run_mutation_smoke

    report = run_mutation_smoke()
    if not report.all_detected:
        raise AssertionError(
            "mutation smoke missed an injected bug:\n" + report.summary()
        )
    print(
        "verify_smoke: ok (mutation smoke "
        f"{sum(report.detected.values())}/{len(report.detected)} detected)"
    )


#: Regression thresholds: a benchmark fails only when it is BOTH more
#: than RATIO times slower than the committed baseline AND slower by at
#: least FLOOR_S absolute — the floor keeps microsecond-scale benches
#: from tripping on scheduler jitter.
_BENCH_RATIO = 2.0
_BENCH_FLOOR_S = 0.05

#: The bench-quick canary selection (must match the Makefile target).
_BENCH_CANARY = [
    "benchmarks/test_bench_figure1.py::test_bench_figure1_single_point",
    "benchmarks/test_bench_analysis_micro.py",
]


def run_bench_guard() -> None:
    """Fail on a >2x slowdown against the committed bench canary.

    Compares per-benchmark mean times of a fresh ``bench-quick`` run
    against ``BENCH_figure1.json``.  Skips (with a notice) when there is
    no baseline or it was recorded on different hardware — cross-machine
    wall-clock comparison is noise, not signal.
    """
    baseline_path = os.path.join(REPO_ROOT, "BENCH_figure1.json")
    if not os.path.exists(baseline_path):
        print("verify_smoke: bench guard skipped (no committed baseline)")
        return
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.obs.benchjson import summarize_benchmark_json

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        fresh_path = os.path.join(tmp, "bench.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", *_BENCH_CANARY,
                "--benchmark-only", f"--benchmark-json={fresh_path}", "-q",
            ],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            raise AssertionError(
                f"bench canary run exited {proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
            )
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = summarize_benchmark_json(json.load(handle))

    if fresh.get("machine") != baseline.get("machine"):
        print(
            "verify_smoke: bench guard skipped (baseline recorded on "
            f"different hardware: {baseline.get('machine')})"
        )
        return

    fresh_means = {
        bench["fullname"]: bench["stats"]["mean"]
        for bench in fresh.get("benchmarks", [])
    }
    regressions = []
    for bench in baseline.get("benchmarks", []):
        name = bench["fullname"]
        base_mean = bench["stats"]["mean"]
        now = fresh_means.get(name)
        if now is None or base_mean is None:
            continue  # renamed or removed benches are not regressions
        if now > _BENCH_RATIO * base_mean and now - base_mean > _BENCH_FLOOR_S:
            regressions.append(
                f"  {name}: {base_mean * 1e3:.1f} ms -> {now * 1e3:.1f} ms "
                f"({now / base_mean:.1f}x)"
            )
    if regressions:
        raise AssertionError(
            "bench canary regressed more than "
            f"{_BENCH_RATIO}x vs BENCH_figure1.json:\n" + "\n".join(regressions)
        )
    print(
        "verify_smoke: ok (bench guard, "
        f"{len(fresh_means)} benchmarks within {_BENCH_RATIO}x of baseline)"
    )


#: Service canary load: paced (not closed-loop) so the assertion tests
#: behaviour at *nominal* load — the service must shed nothing and stay
#: comfortably under the latency bound when it is not saturated.
_SERVICE_DURATION_S = 2.0
_SERVICE_TARGET_RPS = 400.0
_SERVICE_P99_BOUND_S = 0.25


def run_service_canary() -> None:
    """Spawn the admission service, drive nominal load, check the canary.

    Runs ``runner loadgen --spawn`` (in-process server on an ephemeral
    port) and asserts the operational floor of the service layer: the
    run completes, zero requests are shed (429) or refused (503), zero
    transport errors, p99 latency under the bound, and at least half the
    paced request budget actually served — a stalled batcher cannot hide
    behind a green exit code.
    """
    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        bench_path = os.path.join(tmp, "BENCH_service.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.runner", "loadgen",
                "--spawn",
                "--duration", str(_SERVICE_DURATION_S),
                "--load-workers", "4",
                "--target-rps", str(_SERVICE_TARGET_RPS),
                "--bench-json", bench_path,
                "--no-manifest", "--quiet", "--log-level", "error",
            ],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            raise AssertionError(
                f"service canary exited {proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
            )
        with open(bench_path, encoding="utf-8") as handle:
            document = json.load(handle)
        report = document["benchmarks"][0]["extra_info"]["report"]
        if report["shed"] or report["draining"]:
            raise AssertionError(
                f"service shed at nominal load: shed={report['shed']} "
                f"draining={report['draining']} (target "
                f"{_SERVICE_TARGET_RPS} rps, queue should be nowhere near "
                "full)"
            )
        if report["errors"]:
            raise AssertionError(
                f"service canary saw {report['errors']} transport errors"
            )
        p99 = report["latency_s"].get("p99")
        if p99 is None or p99 > _SERVICE_P99_BOUND_S:
            raise AssertionError(
                f"service p99 latency {p99!r}s exceeds the "
                f"{_SERVICE_P99_BOUND_S}s bound at nominal load"
            )
        floor = 0.5 * _SERVICE_TARGET_RPS * _SERVICE_DURATION_S
        if report["requests"] < floor:
            raise AssertionError(
                f"service served only {report['requests']} requests; "
                f"expected at least {floor:.0f} at the paced rate"
            )
        # Hit-ratio guard: the catalogue repeats, so a warm serving mix
        # must be hit-dominated.  Miss-dominated decisions mean the
        # canonical set signatures stopped matching (the regression this
        # guard exists for — the pre-incremental keys were
        # order-sensitive and the canary ran 3:1 miss:hit).
        cache = document["benchmarks"][0]["extra_info"]["admission_cache"]
        if cache["hits"] <= cache["misses"]:
            raise AssertionError(
                "admission cache is miss-dominated at a warm serving mix: "
                f"hits={cache['hits']:.0f} misses={cache['misses']:.0f} — "
                "set signatures are not matching across decisions"
            )
    print(
        "verify_smoke: ok (service canary, "
        f"{report['requests']} requests, p99 {p99 * 1e3:.1f} ms, 0 shed, "
        f"cache hit ratio {cache['hit_ratio']:.2f})"
    )


#: Admission-engine guard thresholds (the cells are ~30-900 us/op, so
#: the absolute floor is far below the service-bench floor — 1 ms of
#: drift on a 30 us op is a real regression, not scheduler jitter).
_ADMISSION_RATIO = 2.0
_ADMISSION_FLOOR_S = 0.001


def run_admission_guard() -> None:
    """Fresh ``bench-admission`` run: warm mixes must hit, means must hold.

    * every **warm** cell must be cache-hit-dominated (the op sequence
      repeats verbatim against retained content-addressed entries — a
      miss-dominated warm pass means the canonical signatures broke);
    * per-cell means are compared against the committed
      ``BENCH_admission.json`` baseline with the same >2x-and-floor rule
      as the figure canary (skipped off-baseline-hardware).
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.experiments.admission_bench import run_admission_bench
    from repro.experiments.config import PaperParameters

    fresh = run_admission_bench(PaperParameters().seed)
    for bench in fresh["benchmarks"]:
        if bench["params"]["phase"] != "warm":
            continue
        ratio = bench["extra_info"]["cache_hit_ratio"]
        if ratio is None or ratio <= 0.5:
            raise AssertionError(
                f"warm admission mix {bench['name']} is miss-dominated "
                f"(hit ratio {ratio!r}) — canonical set signatures are "
                "not matching across identical decision sequences"
            )

    baseline_path = os.path.join(REPO_ROOT, "BENCH_admission.json")
    if not os.path.exists(baseline_path):
        print(
            "verify_smoke: ok (admission guard, warm mixes hit-dominated; "
            "no committed baseline to compare against)"
        )
        return
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if fresh.get("machine") != baseline.get("machine"):
        print(
            "verify_smoke: ok (admission guard, warm mixes hit-dominated; "
            "baseline recorded on different hardware, means not compared)"
        )
        return
    fresh_means = {
        bench["fullname"]: bench["stats"]["mean"]
        for bench in fresh["benchmarks"]
    }
    regressions = []
    for bench in baseline.get("benchmarks", []):
        name = bench["fullname"]
        base_mean = bench["stats"]["mean"]
        now = fresh_means.get(name)
        if now is None or base_mean is None:
            continue
        if (
            now > _ADMISSION_RATIO * base_mean
            and now - base_mean > _ADMISSION_FLOOR_S
        ):
            regressions.append(
                f"  {name}: {base_mean * 1e6:.1f} us -> {now * 1e6:.1f} us "
                f"({now / base_mean:.1f}x)"
            )
    if regressions:
        raise AssertionError(
            "admission engine regressed more than "
            f"{_ADMISSION_RATIO}x vs BENCH_admission.json:\n"
            + "\n".join(regressions)
        )
    print(
        "verify_smoke: ok (admission guard, warm mixes hit-dominated, "
        f"{len(fresh_means)} cells within {_ADMISSION_RATIO}x of baseline)"
    )


#: Loss fractions the soundness canary probes (0 pins the fault-free path).
_LOSS_FRACTIONS = (0.0, 0.01, 0.05)
_LOSS_RECOVERY_S = 1e-3


def _assert_loss_shape(label, fractions, means) -> None:
    """Positive fault-free baseline, monotone non-increasing degradation."""
    if means[0] <= 0.0:
        raise AssertionError(
            f"{label}: fault-free breakdown utilization must be positive, "
            f"got {means[0]!r}"
        )
    for (f_lo, m_lo), (f_hi, m_hi) in zip(
        zip(fractions, means), list(zip(fractions, means))[1:]
    ):
        if m_hi > m_lo + 1e-9:
            raise AssertionError(
                f"{label}: breakdown utilization must not increase with "
                f"loss ({m_lo:.4f} @ {f_lo:g} -> {m_hi:.4f} @ {f_hi:g})"
            )


def run_loss_canary() -> None:
    """Fault-aware bounds must be sound and degrade monotonically.

    * a small in-process loss sweep must show a positive fault-free
      baseline and monotone non-increasing breakdown utilization for
      both protocols;
    * for each probed loss fraction, message sets scaled to 90% of the
      fault-aware breakdown (hence accepted non-vacuously) must meet
      every deadline when fault-injected at the declared rate;
    * a committed ``BENCH_loss.json`` must honour the same shape.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    import numpy as np

    from repro.analysis.pdp import PDPVariant
    from repro.experiments.config import PaperParameters
    from repro.experiments.loss_sweep import loss_sweep
    from repro.faults import (
        FaultBudget,
        FaultPlan,
        fault_aware_breakdown_scale,
        pdp_fault_aware_schedulable,
        rate_for_loss_fraction,
    )
    from repro.sim import dispatch
    from repro.sim.pdp_sim import PDPSimConfig

    params = PaperParameters().scaled_down(n_stations=8, monte_carlo_sets=4)
    result, _ = loss_sweep(
        params,
        16.0,
        loss_fractions=_LOSS_FRACTIONS,
        recovery_time_s=_LOSS_RECOVERY_S,
    )
    for column in ("IEEE 802.5", "FDDI"):
        _assert_loss_shape(
            f"loss sweep {column}",
            [float(row[0]) for row in result.rows],
            [float(v) for v in result.column(column)],
        )

    analysis = params.pdp_analysis(16.0, PDPVariant.STANDARD)
    rng = np.random.default_rng(params.seed)
    sets = params.sampler().sample_many(rng, 3)
    checked = 0
    for fraction in _LOSS_FRACTIONS:
        budget = FaultBudget(
            token_loss_rate_hz=(
                rate_for_loss_fraction(fraction, _LOSS_RECOVERY_S)
                if fraction
                else 0.0
            ),
            recovery_time_s=_LOSS_RECOVERY_S,
        )
        for index, message_set in enumerate(sets):
            scale = fault_aware_breakdown_scale(
                lambda ms, b=budget: pdp_fault_aware_schedulable(
                    analysis, ms, b
                ),
                message_set,
            )
            if scale <= 0.0:
                continue
            probe = message_set.scaled(scale * 0.9)
            if not pdp_fault_aware_schedulable(analysis, probe, budget):
                continue
            plan = FaultPlan(
                seed=7_001 + index,
                token_loss_rate_hz=budget.token_loss_rate_hz,
                recovery_time_s=_LOSS_RECOVERY_S,
            )
            report = dispatch.run_pdp(
                analysis.ring,
                analysis.frame,
                probe,
                PDPSimConfig(faults=plan),
                4.0 * probe.max_period,
            )
            if not report.deadline_safe:
                missed = [
                    s.stream_index for s in report.streams if s.missed > 0
                ]
                raise AssertionError(
                    "fault-aware analysis accepted a set that missed "
                    f"deadlines under its own budget (loss fraction "
                    f"{fraction:g}, streams {missed}, "
                    f"faults={report.faults!r}) — the retransmission "
                    "inflation is unsound"
                )
            checked += 1
    if checked < 3:
        raise AssertionError(
            f"loss canary only exercised {checked} accepted sets; "
            "the soundness assertion is vacuous"
        )

    baseline_path = os.path.join(REPO_ROOT, "BENCH_loss.json")
    suffix = "no committed BENCH_loss.json"
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        for protocol in ("pdp", "ttp"):
            cells = sorted(
                (
                    bench["params"]["loss_fraction"],
                    bench["extra_info"]["mean_breakdown_utilization"],
                )
                for bench in baseline.get("benchmarks", [])
                if bench["params"]["protocol"] == protocol
            )
            if not cells:
                raise AssertionError(
                    f"BENCH_loss.json has no {protocol} cells"
                )
            _assert_loss_shape(
                f"BENCH_loss.json {protocol}",
                [fraction for fraction, _ in cells],
                [mean for _, mean in cells],
            )
        suffix = "committed BENCH_loss.json shape holds"
    print(
        f"verify_smoke: ok (loss canary: {checked} accepted sets "
        f"deadline-safe under injected faults at fractions "
        f"{_LOSS_FRACTIONS}; {suffix})"
    )


#: Scale-guard floors.  The live columnar-vs-object throughput ratio
#: lands around 100x even at the guard's reduced sizes, so 50x trips on
#: real columnar regressions (a fallen-back scalar path runs at ~1x),
#: not on scheduler noise; the committed canary must carry the same
#: floor.  Ratios compare two pipelines measured in the same process, so
#: unlike the wall-clock guards they are checked off-baseline-hardware
#: too.
_SCALE_SPEEDUP_FLOOR = 50.0
_SCALE_GUARD_STREAMS = 100_000
_SCALE_GUARD_BASELINE = 256


def run_scale_guard() -> None:
    """Columnar throughput and MC variance reduction must hold.

    * a live reduced-size scale bench must analyse columnar streams at
      least ``_SCALE_SPEEDUP_FLOOR`` times faster per stream than the
      object path (both pipelines run the full order + exact RM + TTP
      saturation sequence);
    * the variance-reduced streaming estimator must reach the same CI
      target with no more evaluations than plain sampling, both runs
      must converge before the cap, and their means must agree within
      the sum of their CI half-widths (they estimate the same quantity);
    * a committed ``BENCH_scale.json`` (from ``make bench-scale``) must
      report the same speedup floor and an evaluations ratio >= 1.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.experiments.config import PaperParameters
    from repro.experiments.scale_bench import run_scale_bench

    result = run_scale_bench(
        PaperParameters(),
        n_streams=_SCALE_GUARD_STREAMS,
        baseline_streams=_SCALE_GUARD_BASELINE,
        bandwidth_mbps=10.0,
    )
    if result.speedup < _SCALE_SPEEDUP_FLOOR:
        raise AssertionError(
            f"columnar pipeline is only {result.speedup:.1f}x the object "
            f"path ({result.columnar_streams_per_sec:,.0f} vs "
            f"{result.object_streams_per_sec:,.0f} streams/s); the "
            f"{_SCALE_SPEEDUP_FLOOR:.0f}x floor means the columnar fast "
            "path has fallen back to per-stream work"
        )
    if not result.naive.converged or not result.vr.converged:
        raise AssertionError(
            "streaming estimator hit the evaluation cap before the CI "
            f"target (naive converged={result.naive.converged}, "
            f"vr converged={result.vr.converged})"
        )
    if result.vr.evaluations > result.naive.evaluations:
        raise AssertionError(
            "variance-reduced streaming run needed MORE evaluations than "
            f"plain sampling ({result.vr.evaluations} vs "
            f"{result.naive.evaluations}) to reach half-width "
            f"{result.mc_eps:g} — stratification stopped reducing variance"
        )
    tolerance = result.naive.half_width + result.vr.half_width
    if abs(result.naive.mean - result.vr.mean) > tolerance:
        raise AssertionError(
            "plain and variance-reduced estimates disagree beyond their "
            f"combined CI half-widths ({result.naive.mean:.5f} vs "
            f"{result.vr.mean:.5f}, tolerance {tolerance:.5f}) — the "
            "stratified/antithetic sampler is biased"
        )

    baseline_path = os.path.join(REPO_ROOT, "BENCH_scale.json")
    suffix = "no committed BENCH_scale.json"
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        by_group: dict = {}
        for bench in baseline.get("benchmarks", []):
            by_group.setdefault(bench["group"], []).append(bench)
        columnar = [
            bench for bench in by_group.get("scale", [])
            if "speedup_vs_object" in bench["extra_info"]
        ]
        if not columnar:
            raise AssertionError(
                "BENCH_scale.json has no columnar scale entry"
            )
        committed_speedup = columnar[0]["extra_info"]["speedup_vs_object"]
        if committed_speedup < _SCALE_SPEEDUP_FLOOR:
            raise AssertionError(
                f"committed BENCH_scale.json records a {committed_speedup:.1f}x "
                f"speedup, below the {_SCALE_SPEEDUP_FLOOR:.0f}x floor"
            )
        vr_cells = [
            bench for bench in by_group.get("mc", [])
            if "eval_ratio_vs_naive" in bench["extra_info"]
        ]
        if not vr_cells:
            raise AssertionError(
                "BENCH_scale.json has no variance-reduced mc entry"
            )
        committed_ratio = vr_cells[0]["extra_info"]["eval_ratio_vs_naive"]
        if committed_ratio < 1.0:
            raise AssertionError(
                "committed BENCH_scale.json records an evaluations ratio "
                f"of {committed_ratio:.2f} (< 1): variance reduction cost "
                "evaluations instead of saving them"
            )
        suffix = (
            f"committed canary holds ({committed_speedup:,.0f}x, "
            f"mc ratio {committed_ratio:.2f})"
        )
    print(
        f"verify_smoke: ok (scale guard: {result.speedup:,.0f}x columnar "
        f"speedup live, vr {result.vr.evaluations} <= naive "
        f"{result.naive.evaluations} evaluations; {suffix})"
    )


#: Cluster canary shape: a 2-worker fleet driven for a couple of paced
#: seconds — enough to prove routing, budget accounting, and per-shard
#: telemetry without turning verify into a benchmark run.
_CLUSTER_DURATION_S = 2.0
_CLUSTER_TARGET_RPS = 300.0
_CLUSTER_WORKERS = 2

#: Scaling floor for the *committed* BENCH_cluster.json: a 4-worker
#: fleet must deliver at least this multiple of the single-worker fleet
#: throughput — but only when the canary was recorded on hardware that
#: can physically express it (cores >= _CLUSTER_MIN_CPUS).  On a 1-core
#: host every worker shares the core and the router adds a hop, so the
#: honest measured ratio is <= 1 and the floor is meaningless.
_CLUSTER_SCALING_FLOOR = 2.5
_CLUSTER_MIN_CPUS = 4


def run_cluster_canary() -> None:
    """Spawn a live sharded fleet, then audit the committed cluster bench.

    Live half: ``runner loadgen --workers 2`` spawns two worker
    subprocesses behind the consistent-hash router and drives paced
    load through the front.  The run must complete with zero transport
    errors, traffic must reach *both* shards (per-shard latency
    percentiles present for w0 and w1), and the fleet accounting must
    come back sound: lease total within the aggregate cap and joint
    admitted utilization never past it.

    Committed half: ``BENCH_cluster.json`` (from ``make bench-cluster``)
    must carry the single-worker baseline, a sound budget in every
    entry, and — when it was recorded on a host with at least
    ``_CLUSTER_MIN_CPUS`` cores — a measured multi-worker scaling ratio
    of at least ``_CLUSTER_SCALING_FLOOR``.  Recorded on smaller
    hardware, the ratio is reported but the floor is skipped with a
    notice (same rule as the wall-clock bench guards).
    """
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        bench_path = os.path.join(tmp, "BENCH_cluster_live.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.runner", "loadgen",
                "--workers", str(_CLUSTER_WORKERS),
                "--duration", str(_CLUSTER_DURATION_S),
                "--load-workers", "4",
                "--target-rps", str(_CLUSTER_TARGET_RPS),
                "--bench-json", bench_path,
                "--no-manifest", "--quiet", "--log-level", "error",
            ],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            raise AssertionError(
                f"cluster canary exited {proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
            )
        with open(bench_path, encoding="utf-8") as handle:
            document = json.load(handle)
        extra = document["benchmarks"][0]["extra_info"]
        report = extra["report"]
        fleet = extra["fleet"]
        if report["errors"]:
            raise AssertionError(
                f"cluster canary saw {report['errors']} transport errors "
                "through the router"
            )
        floor = 0.5 * _CLUSTER_TARGET_RPS * _CLUSTER_DURATION_S
        if report["requests"] < floor:
            raise AssertionError(
                f"cluster served only {report['requests']} requests; "
                f"expected at least {floor:.0f} at the paced rate"
            )
        shard_keys = set(report.get("shard_latency_s", {}))
        expected = {f"w{i}" for i in range(_CLUSTER_WORKERS)}
        if not expected <= shard_keys:
            raise AssertionError(
                "traffic did not reach every shard: per-shard latency "
                f"covers {sorted(shard_keys)}, expected at least "
                f"{sorted(expected)} — the hash router is not spreading "
                "the catalogue"
            )
        if fleet["reachable"] != _CLUSTER_WORKERS:
            raise AssertionError(
                f"only {fleet['reachable']}/{_CLUSTER_WORKERS} workers "
                "reachable at the end of the canary run"
            )
        if not fleet["fleet"]["budget_sound"]:
            raise AssertionError(
                "fleet lease ledger is unsound: granted "
                f"{fleet['fleet']['lease_granted_total']!r} vs cap "
                f"{fleet['fleet']['utilization_cap']!r}"
            )
        cap = fleet["fleet"]["utilization_cap"]
        joint = fleet["fleet"]["utilization"]
        if joint > cap + 1e-9:
            raise AssertionError(
                f"fleet jointly admitted utilization {joint:.6f} past the "
                f"aggregate cap {cap:.6f} — the lease split is not "
                "containing the workers"
            )

    baseline_path = os.path.join(REPO_ROOT, "BENCH_cluster.json")
    suffix = "no committed BENCH_cluster.json"
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        by_name = {
            bench["name"]: bench for bench in baseline.get("benchmarks", [])
        }
        if "fleet_w1" not in by_name:
            raise AssertionError(
                "BENCH_cluster.json has no single-worker baseline entry"
            )
        for name, bench in sorted(by_name.items()):
            bench_fleet = bench["extra_info"]["fleet"]["fleet"]
            if not bench_fleet["budget_sound"]:
                raise AssertionError(
                    f"BENCH_cluster.json entry {name} records an unsound "
                    "budget ledger"
                )
        scaled = [
            (name, bench)
            for name, bench in sorted(by_name.items())
            if "scaling_vs_single" in bench["extra_info"]
        ]
        if not scaled:
            raise AssertionError(
                "BENCH_cluster.json has no multi-worker scaling entry"
            )
        name, bench = scaled[-1]
        ratio = bench["extra_info"]["scaling_vs_single"]
        recorded_cpus = bench["extra_info"].get("cpu_count") or 0
        if recorded_cpus >= _CLUSTER_MIN_CPUS:
            if ratio < _CLUSTER_SCALING_FLOOR:
                raise AssertionError(
                    f"BENCH_cluster.json {name} scaled only {ratio:.2f}x "
                    f"vs the single-worker fleet on a {recorded_cpus}-core "
                    f"host; the {_CLUSTER_SCALING_FLOOR}x floor means the "
                    "fleet stopped parallelising"
                )
            suffix = (
                f"committed {name} scaling {ratio:.2f}x holds the "
                f"{_CLUSTER_SCALING_FLOOR}x floor"
            )
        else:
            suffix = (
                f"committed {name} scaling {ratio:.2f}x recorded on a "
                f"{recorded_cpus}-core host — floor needs "
                f"{_CLUSTER_MIN_CPUS}+ cores, skipped with this notice"
            )
    print(
        "verify_smoke: ok (cluster canary: "
        f"{report['requests']} requests through the router across "
        f"{len(shard_keys)} shards, fleet budget sound; {suffix})"
    )


def run_top_smoke() -> None:
    """One ``runner top --once --spawn`` frame must render live telemetry.

    Spawns the in-process server, drives the seeded burst, and asserts
    the frame actually shows traffic: the ``req/s`` line, the latency
    percentiles, and the batch-size section all come from the
    ``/metrics`` histograms, so an empty or missing section means the
    bucketed pipeline (or its delta arithmetic) broke.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.experiments.runner", "top",
            "--spawn", "--once", "--interval", "0.5",
            "--no-manifest", "--log-level", "error",
        ],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=600,
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"runner top --once failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    for needle in ("req/s", "latency", "batches"):
        if needle not in proc.stdout:
            raise AssertionError(
                f"top frame is missing {needle!r}:\n{proc.stdout}"
            )
    print("verify_smoke: ok (runner top --once renders live telemetry)")


def run_bench_trend_guard() -> None:
    """The bench-trend history check must pass (or skip with a notice)."""
    env = dict(os.environ)
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "bench_trend.py"),
         "check"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120,
    )
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        raise AssertionError(
            f"bench-trend check failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    print("verify_smoke: ok (bench trend within threshold)")


if __name__ == "__main__":
    run_smoke()
    run_mutation_smoke_check()
    run_service_canary()
    run_admission_guard()
    run_loss_canary()
    run_scale_guard()
    run_cluster_canary()
    run_bench_guard()
    run_top_smoke()
    run_bench_trend_guard()
