#!/usr/bin/env python
"""Track and guard the performance trajectory across ``BENCH_*.json`` files.

The committed canaries (``BENCH_figure1.json``, ``BENCH_sim.json``,
``BENCH_service.json``, ``BENCH_admission.json``) each hold only the
*latest* run — good for a point-in-time guard, blind to slow drift.
This tool keeps a history:

``append``
    Summarize every current ``BENCH_*.json`` into one JSONL line each
    (per-benchmark mean and ops, plus the machine identity) appended to
    ``BENCH_history.jsonl``.  ``make bench-trend`` runs this after
    regenerating the canaries.

``check``
    Compare every current ``BENCH_*.json`` against the **newest
    same-machine** history entry for that file.  A benchmark whose mean
    grew by more than ``--threshold`` (default 25%) — with an absolute
    floor so microsecond jitter cannot trip it — or whose throughput
    (``ops``) dropped by more than the same fraction is a regression:
    nonzero exit, one diagnostic line per offender.  No history or a
    machine mismatch skips with a notice (a trend against somebody
    else's hardware is noise, same rule as the verify bench guard).
    ``make verify`` runs this.

History entries are plain JSON objects — one per (append run, BENCH
file) — so the file diffs cleanly and tolerates hand-pruning.
"""

from __future__ import annotations

import argparse
import datetime
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HISTORY_SCHEMA_VERSION = 1

#: Mean-time regressions smaller than this are jitter, not signal.
ABS_FLOOR_S = 0.001

#: Throughput (ops) drops smaller than this many ops/s are jitter.
ABS_FLOOR_OPS = 1.0


def _machine_key(machine: dict | None) -> str:
    """A comparable hardware identity (brand + arch + core count)."""
    machine = machine or {}
    cpu = machine.get("cpu") or {}
    return "|".join(
        str(part)
        for part in (
            cpu.get("brand"),
            machine.get("machine"),
            cpu.get("count"),
        )
    )


def _summarize(path: str) -> dict | None:
    """One BENCH document as a history entry (None if unreadable)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-trend: skipping {path}: {exc}")
        return None
    benchmarks = {}
    for bench in document.get("benchmarks", []):
        stats = bench.get("stats") or {}
        if stats.get("mean") is None:
            continue
        benchmarks[bench["fullname"]] = {
            "mean": stats["mean"],
            "ops": stats.get("ops"),
        }
    if not benchmarks:
        return None
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "file": os.path.basename(path),
        "datetime": document.get("datetime")
        or datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "machine": _machine_key(document.get("machine")),
        "benchmarks": benchmarks,
    }


def _bench_paths(root: str) -> list[str]:
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def _load_history(path: str) -> list[dict]:
    entries: list[dict] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                print(
                    f"bench-trend: ignoring malformed history line "
                    f"{line_number}: {exc}"
                )
    return entries


def cmd_append(root: str, history_path: str) -> int:
    """Append one history line per current BENCH file."""
    entries = [
        entry
        for entry in (_summarize(path) for path in _bench_paths(root))
        if entry is not None
    ]
    if not entries:
        print("bench-trend: no BENCH_*.json documents to append")
        return 0
    with open(history_path, "a", encoding="utf-8") as handle:
        for entry in entries:
            json.dump(entry, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")
    print(
        f"bench-trend: appended {len(entries)} entries "
        f"({', '.join(e['file'] for e in entries)}) to {history_path}"
    )
    return 0


def cmd_check(root: str, history_path: str, threshold: float) -> int:
    """Compare current BENCH files against their newest same-machine entry."""
    history = _load_history(history_path)
    if not history:
        print(
            f"bench-trend: no history at {history_path}; "
            "run `make bench-trend` to seed it -- skipping"
        )
        return 0
    regressions: list[str] = []
    compared = 0
    for path in _bench_paths(root):
        current = _summarize(path)
        if current is None:
            continue
        baseline = next(
            (
                entry
                for entry in reversed(history)
                if entry.get("file") == current["file"]
                and entry.get("machine") == current["machine"]
            ),
            None,
        )
        if baseline is None:
            print(
                f"bench-trend: no same-machine history for "
                f"{current['file']}; skipping"
            )
            continue
        for fullname, stats in sorted(current["benchmarks"].items()):
            base = baseline["benchmarks"].get(fullname)
            if base is None:
                continue
            compared += 1
            mean, base_mean = stats["mean"], base["mean"]
            if (
                base_mean
                and mean > base_mean * (1.0 + threshold)
                and mean - base_mean > ABS_FLOOR_S
            ):
                regressions.append(
                    f"{current['file']}: {fullname} mean "
                    f"{base_mean * 1e3:.3f} ms -> {mean * 1e3:.3f} ms "
                    f"(+{(mean / base_mean - 1.0):.0%})"
                )
            ops, base_ops = stats.get("ops"), base.get("ops")
            if (
                ops is not None
                and base_ops
                and ops < base_ops * (1.0 - threshold)
                and base_ops - ops > ABS_FLOOR_OPS
            ):
                regressions.append(
                    f"{current['file']}: {fullname} throughput "
                    f"{base_ops:.1f} -> {ops:.1f} ops/s "
                    f"({(ops / base_ops - 1.0):.0%})"
                )
    if regressions:
        print(
            f"bench-trend: {len(regressions)} regression(s) beyond "
            f"{threshold:.0%} against {history_path}:"
        )
        for line in regressions:
            print(f"  REGRESSION  {line}")
        return 1
    print(
        f"bench-trend: {compared} benchmark(s) within {threshold:.0%} "
        f"of their history baselines"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_trend",
        description="Append to / check against the BENCH_*.json history",
    )
    parser.add_argument("command", choices=["append", "check"])
    parser.add_argument(
        "--root", default=REPO_ROOT,
        help="directory holding the BENCH_*.json files",
    )
    parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="history JSONL path (default: <root>/BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="fractional regression tolerance (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    history_path = args.history or os.path.join(
        args.root, "BENCH_history.jsonl"
    )
    if args.command == "append":
        return cmd_append(args.root, history_path)
    return cmd_check(args.root, history_path, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
