#!/usr/bin/env python3
"""Protocol selection assistant: which token ring protocol fits my network?

The paper's bottom line is a design rule — priority driven below ~10 Mbps,
timed token above ~100 Mbps, measure in between.  This example turns the
analyses into that decision tool: given a concrete workload it sweeps the
candidate bandwidths, computes each protocol's breakdown *headroom* for
this exact workload (not a population average), locates the crossover, and
prints a recommendation per bandwidth.

Run:  python examples/protocol_race.py
"""

from repro import (
    MessageSet,
    PDPAnalysis,
    PDPVariant,
    SynchronousStream,
    TTPAnalysis,
    breakdown_utilization,
    fddi_ring,
    ieee_802_5_ring,
    mbps,
    milliseconds,
    paper_frame_format,
)
from repro.experiments.reporting import ascii_plot, format_table
from repro.units import bytes_to_bits


def build_workload() -> MessageSet:
    """A 30-station distributed control workload with a 25x rate spread."""
    streams = []
    for i in range(30):
        period_ms = 20 + (i * 480) / 29  # 20 ms .. 500 ms
        payload = bytes_to_bits(128 + 96 * i)  # 128 B .. ~3 KB
        streams.append(SynchronousStream(
            period_s=milliseconds(period_ms),
            payload_bits=payload,
            station=i,
        ))
    return MessageSet(streams)


def main() -> None:
    workload = build_workload()
    frame = paper_frame_format()
    bandwidths = [1, 2, 4, 10, 16, 40, 100, 250, 622, 1000]

    rows = []
    curves: dict[str, list[float]] = {"IEEE 802.5": [], "Mod 802.5": [], "FDDI": []}
    for bw_mbps in bandwidths:
        bandwidth = mbps(bw_mbps)
        ring5 = ieee_802_5_ring(bandwidth, n_stations=len(workload))
        ringf = fddi_ring(bandwidth, n_stations=len(workload))
        values = {}
        for name, analysis in (
            ("IEEE 802.5", PDPAnalysis(ring5, frame, PDPVariant.STANDARD)),
            ("Mod 802.5", PDPAnalysis(ring5, frame, PDPVariant.MODIFIED)),
            ("FDDI", TTPAnalysis(ringf, frame)),
        ):
            result = breakdown_utilization(workload, analysis, bandwidth, rel_tol=1e-3)
            values[name] = result.utilization
            curves[name].append(result.utilization)
        winner = max(values, key=values.get)
        rows.append([
            float(bw_mbps),
            values["IEEE 802.5"],
            values["Mod 802.5"],
            values["FDDI"],
            winner if max(values.values()) > 0 else "none feasible",
        ])

    print(f"workload: {len(workload)} streams; breakdown utilization of "
          "THIS workload under each protocol:\n")
    print(format_table(
        ["BW (Mbps)", "IEEE 802.5", "Mod 802.5", "FDDI", "recommend"],
        rows,
    ))

    print()
    print(ascii_plot(
        [float(b) for b in bandwidths], curves, logx=True,
        title="Breakdown utilization of this workload vs bandwidth",
    ))

    crossover = next(
        (bw for bw, row in zip(bandwidths, rows) if row[4] == "FDDI"), None
    )
    if crossover is None:
        print("the priority driven protocol wins across the whole range")
    else:
        print(f"recommendation: priority driven protocol below {crossover} Mbps, "
              f"timed token protocol from {crossover} Mbps up")


if __name__ == "__main__":
    main()
