#!/usr/bin/env python3
"""Quickstart: test one workload under both token ring protocols.

Builds a ten-station workload, asks Theorem 4.1 (priority driven protocol,
both IEEE 802.5 variants) and Theorem 5.1 (timed token protocol) whether
its deadlines can be guaranteed, and prints the per-stream evidence.

Run:  python examples/quickstart.py
"""

from repro import (
    MessageSet,
    PDPAnalysis,
    PDPVariant,
    SynchronousStream,
    TTPAnalysis,
    fddi_ring,
    ieee_802_5_ring,
    mbps,
    milliseconds,
    paper_frame_format,
)
from repro.units import seconds_to_ms


def build_workload() -> MessageSet:
    """Ten periodic streams, 20–110 ms periods, 2 KB messages."""
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(20 + 10 * i),
            payload_bits=16_000,  # 2 KB payload
            station=i,
        )
        for i in range(10)
    )


def main() -> None:
    workload = build_workload()
    frame = paper_frame_format()
    bandwidth = mbps(16)

    print(f"workload: {len(workload)} streams, "
          f"U = {workload.utilization(bandwidth):.3f} at 16 Mbps\n")

    # --- priority driven protocol (IEEE 802.5) -----------------------------
    ring = ieee_802_5_ring(bandwidth, n_stations=len(workload))
    for variant in (PDPVariant.STANDARD, PDPVariant.MODIFIED):
        analysis = PDPAnalysis(ring, frame, variant)
        result = analysis.analyze(workload)
        print(f"{variant.value}: "
              f"{'SCHEDULABLE' if result.schedulable else 'NOT schedulable'} "
              f"(worst load ratio {result.worst_ratio:.3f}, "
              f"blocking {seconds_to_ms(result.blocking):.3f} ms)")
        for detail, c_aug in zip(result.details, result.augmented_lengths):
            print(f"   stream {detail.index}: min ratio {detail.min_load_ratio:.3f} "
                  f"at t={seconds_to_ms(detail.critical_point):.1f} ms, "
                  f"C' = {seconds_to_ms(c_aug):.3f} ms")
        print()

    # --- timed token protocol (FDDI) ---------------------------------------
    ring_fddi = fddi_ring(bandwidth, n_stations=len(workload))
    ttp = TTPAnalysis(ring_fddi, frame)
    verdict = ttp.analyze(workload)
    print(f"timed token (FDDI): "
          f"{'SCHEDULABLE' if verdict.schedulable else 'NOT schedulable'}")
    if verdict.allocation is not None:
        alloc = verdict.allocation
        print(f"   TTRT = {seconds_to_ms(alloc.ttrt_s):.3f} ms, "
              f"delta = {seconds_to_ms(alloc.delta_s):.3f} ms, "
              f"slack = {seconds_to_ms(alloc.protocol_slack_s):.3f} ms")
        for i, (h, q) in enumerate(zip(alloc.bandwidths_s, alloc.token_visits)):
            print(f"   station {i}: h = {seconds_to_ms(h):.3f} ms, "
                  f"q = {q} token visits per period")
    else:
        print(f"   reason: {verdict.reason}")


if __name__ == "__main__":
    main()
