#!/usr/bin/env python3
"""Online admission control on a real-time ring (the §2 run-time story).

The paper notes that knowing a utilization bound "simplifies run-time
network administration — schedulability tests are not needed as long as
the offered load is below this bound."  This example runs that
administration loop: a stream of connection requests (new sensors coming
online, sessions ending) hits an :class:`AdmissionController` for each
protocol, and we watch how many requests each admission policy accepts,
how often the cheap sufficient bound suffices, and that the admitted set
never becomes unschedulable.

Run:  python examples/admission_control.py
"""

import numpy as np

from repro import (
    PDPAnalysis,
    PDPVariant,
    TTPAnalysis,
    fddi_ring,
    ieee_802_5_ring,
    mbps,
    paper_frame_format,
)
from repro.admission import AdmissionController, AdmissionPolicy
from repro.experiments.reporting import format_table


def request_trace(seed: int, count: int):
    """A day of connection churn: (kind, period_s, payload_bits)."""
    rng = np.random.default_rng(seed)
    events = []
    for _ in range(count):
        if rng.random() < 0.75 or not events:
            period = float(rng.uniform(0.02, 0.25))
            payload = float(rng.uniform(2_000, 400_000))
            events.append(("request", period, payload))
        else:
            events.append(("release", 0.0, 0.0))
    return events


def run_trace(controller: AdmissionController, events) -> dict:
    admitted = rejected = released = cheap_tests = 0
    live_ids = []
    rng = np.random.default_rng(99)
    for kind, period, payload in events:
        if kind == "request":
            decision = controller.request(period, payload)
            if decision.admitted:
                admitted += 1
                live_ids.append(decision.stream_id)
            else:
                rejected += 1
            if decision.tested_by == "sufficient":
                cheap_tests += 1
        elif live_ids:
            victim = live_ids.pop(int(rng.integers(len(live_ids))))
            controller.release(victim)
            released += 1
    # Invariant check: whatever happened, the admitted set is feasible.
    if controller.admitted_count:
        assert controller.analysis.is_schedulable(controller.current_set())
    return {
        "admitted": admitted,
        "rejected": rejected,
        "released": released,
        "cheap tests": cheap_tests,
        "final streams": controller.admitted_count,
        "final U": controller.utilization(),
    }


def main() -> None:
    frame = paper_frame_format()
    n_stations = 16
    events = request_trace(seed=7, count=60)
    print(f"replaying {len(events)} admission/teardown events "
          f"on a {n_stations}-station ring\n")

    rows = []
    for label, bandwidth_mbps, make_analysis in (
        ("802.5 @ 4 Mbps", 4,
         lambda bw: PDPAnalysis(ieee_802_5_ring(bw, n_stations=n_stations),
                                frame, PDPVariant.MODIFIED)),
        ("FDDI @ 100 Mbps", 100,
         lambda bw: TTPAnalysis(fddi_ring(bw, n_stations=n_stations), frame)),
    ):
        for policy in AdmissionPolicy:
            controller = AdmissionController(
                make_analysis(mbps(bandwidth_mbps)), policy
            )
            outcome = run_trace(controller, events)
            rows.append([
                label,
                policy.value,
                outcome["admitted"],
                outcome["rejected"],
                outcome["cheap tests"],
                outcome["final streams"],
                outcome["final U"],
            ])

    print(format_table(
        ["network", "policy", "admitted", "rejected", "cheap tests",
         "live", "final U"],
        rows, float_format="{:.3f}",
    ))
    print("\nreading the table:")
    print("  - EXACT and HYBRID admit the same requests; HYBRID answers the")
    print("    easy ones with the cheap sufficient bound ('cheap tests').")
    print("  - SUFFICIENT is per-request more conservative; over a churn")
    print("    trace its *totals* can differ either way, because rejecting")
    print("    one stream leaves room for different later ones.")
    print("  - every admitted population stayed provably schedulable")
    print("    (asserted inside the replay loop).")


if __name__ == "__main__":
    main()
