#!/usr/bin/env python3
"""Space-station backbone sizing study (the paper's NASA motivation).

The paper opens by noting that an FDDI-based token ring was selected as
the backbone for NASA's Space Station Freedom.  This example plays the
network architect for such a backbone: a fixed suite of synchronous
payloads (guidance, life support, experiment telemetry, video) must be
guaranteed, and the question is **how much link bandwidth the backbone
needs** under each protocol — the inverse of Figure 1's question.

For each protocol we binary-search the minimum bandwidth at which the
suite is schedulable, then show the margin curve (breakdown headroom vs
bandwidth) and validate the chosen design point in simulation.

Run:  python examples/space_station.py
"""

from repro import (
    MessageSet,
    PDPAnalysis,
    PDPVariant,
    SynchronousStream,
    TTPAnalysis,
    breakdown_utilization,
    fddi_ring,
    ieee_802_5_ring,
    mbps,
    milliseconds,
    paper_frame_format,
)
from repro.experiments.reporting import format_table
from repro.sim import TTPRingSimulator, TTPSimConfig
from repro.units import bps_to_mbps, bytes_to_bits, seconds_to_ms


def build_station_suite() -> MessageSet:
    """20 stations: control loops, telemetry, compressed video."""
    specs = [
        *[(25, 512)] * 4,      # guidance & navigation, 40 Hz
        *[(50, 2048)] * 4,     # life-support sensor buses, 20 Hz
        *[(100, 8192)] * 6,    # experiment telemetry, 10 Hz
        *[(200, 65536)] * 4,   # compressed video frames, 5 Hz
        *[(500, 16384)] * 2,   # housekeeping dumps, 2 Hz
    ]
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period),
            payload_bits=bytes_to_bits(payload),
            station=i,
        )
        for i, (period, payload) in enumerate(specs)
    )


def minimum_bandwidth(make_analysis, workload, lo=0.5e6, hi=20e9) -> float:
    """Smallest bandwidth (bps) at which the workload is schedulable."""
    if not make_analysis(hi).is_schedulable(workload):
        return float("inf")
    if make_analysis(lo).is_schedulable(workload):
        return lo
    for _ in range(60):
        mid = (lo * hi) ** 0.5
        if make_analysis(mid).is_schedulable(workload):
            hi = mid
        else:
            lo = mid
    return hi


def main() -> None:
    workload = build_station_suite()
    frame = paper_frame_format()
    n = len(workload)

    def pdp_std(bw):
        return PDPAnalysis(ieee_802_5_ring(bw, n_stations=n), frame,
                           PDPVariant.STANDARD)

    def pdp_mod(bw):
        return PDPAnalysis(ieee_802_5_ring(bw, n_stations=n), frame,
                           PDPVariant.MODIFIED)

    def ttp(bw):
        return TTPAnalysis(fddi_ring(bw, n_stations=n), frame)

    print(f"backbone suite: {n} stations, "
          f"{workload.total_payload_bits() / 8 / 1024:.0f} KB per hyperperiod slice")
    print(f"utilization at 100 Mbps: {workload.utilization(mbps(100)):.3f}\n")

    # 1. Minimum bandwidth per protocol.
    rows = []
    for name, factory in (
        ("IEEE 802.5", pdp_std),
        ("Modified 802.5", pdp_mod),
        ("FDDI", ttp),
    ):
        minimum = minimum_bandwidth(factory, workload)
        rows.append([
            name,
            bps_to_mbps(minimum) if minimum != float("inf") else float("nan"),
        ])
    print(format_table(["protocol", "min bandwidth (Mbps)"], rows,
                       float_format="{:.2f}"))

    # 2. Margin curve around the candidate design points.
    print("\nbreakdown headroom (x over current payloads):")
    margin_rows = []
    for bw_mbps in (25, 50, 100, 200, 400):
        bandwidth = mbps(bw_mbps)
        row = [float(bw_mbps)]
        for factory in (pdp_std, pdp_mod, ttp):
            result = breakdown_utilization(
                workload, factory(bandwidth), bandwidth, rel_tol=1e-3
            )
            row.append(result.scale if result.saturated else 0.0)
        margin_rows.append(row)
    print(format_table(
        ["BW (Mbps)", "802.5 margin", "mod margin", "FDDI margin"],
        margin_rows, float_format="{:.2f}",
    ))

    # 3. Validate the FDDI design point at 100 Mbps by simulation.
    bandwidth = mbps(100)
    analysis = ttp(bandwidth)
    verdict = analysis.analyze(workload)
    assert verdict.schedulable and verdict.allocation is not None
    simulator = TTPRingSimulator(
        analysis.ring, frame, workload, verdict.allocation, TTPSimConfig()
    )
    report = simulator.run(duration_s=3.0)
    print(f"\nFDDI @ 100 Mbps validation (3 s, saturating async):")
    print(f"  TTRT = {seconds_to_ms(verdict.allocation.ttrt_s):.3f} ms, "
          f"completed {report.total_completed}, missed {report.total_missed}")
    print(f"  max rotation {seconds_to_ms(report.max_rotation):.3f} ms "
          f"<= 2 TTRT = {seconds_to_ms(2 * verdict.allocation.ttrt_s):.3f} ms")
    print(f"  medium: {report.sync_utilization:.1%} sync, "
          f"{report.async_utilization:.1%} async")


if __name__ == "__main__":
    main()
