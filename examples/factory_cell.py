#!/usr/bin/env python3
"""Factory-cell control on a 4 Mbps IEEE 802.5 ring (the PDP's home turf).

The paper concludes the priority driven protocol is the right choice at
1-10 Mbps — classic factory-floor token ring territory.  This example puts
a mixed control workload on a 4 Mbps 802.5 ring, assigns rate-monotonic
priorities, and then uses the Theorem 4.1 machinery to answer engineering
questions the analysis makes cheap:

1. Is the cell schedulable under the standard and the modified protocol?
2. How much payload headroom does each stream have (saturation scaling)?
3. Which frame size should the network be configured with?
4. Does an adversarial simulation (critical-instant phasing, saturating
   low-priority traffic) confirm the guarantee?

Run:  python examples/factory_cell.py
"""

from repro import (
    MessageSet,
    PDPAnalysis,
    PDPVariant,
    SynchronousStream,
    breakdown_utilization,
    ieee_802_5_ring,
    mbps,
    milliseconds,
)
from repro.network.frames import FrameFormat
from repro.sim import PDPRingSimulator, PDPSimConfig
from repro.sim.pdp_sim import TokenWalkModel
from repro.sim.traffic import ArrivalPhasing
from repro.units import bytes_to_bits, seconds_to_ms


def build_cell_workload() -> MessageSet:
    """A 12-station manufacturing cell."""
    specs = [
        # (period ms, payload bytes, description)
        (10, 64, "servo loop A"),
        (10, 64, "servo loop B"),
        (20, 128, "robot arm setpoints"),
        (20, 128, "conveyor speed"),
        (50, 512, "vision system ROI"),
        (50, 512, "force sensor batch"),
        (100, 1024, "PLC state sync"),
        (100, 1024, "safety interlock log"),
        (200, 2048, "quality metrics"),
        (200, 2048, "inventory update"),
        (500, 8192, "recipe download"),
        (500, 8192, "maintenance telemetry"),
    ]
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period),
            payload_bits=bytes_to_bits(payload),
            station=i,
        )
        for i, (period, payload, _) in enumerate(specs)
    )


def main() -> None:
    workload = build_cell_workload()
    bandwidth = mbps(4)
    ring = ieee_802_5_ring(bandwidth, n_stations=len(workload))

    print(f"factory cell: {len(workload)} stations at 4 Mbps, "
          f"U = {workload.utilization(bandwidth):.3f}\n")

    # 1. Schedulability under both variants with the default 64 B frames.
    frame64 = FrameFormat(info_bits=bytes_to_bits(64), overhead_bits=112)
    for variant in (PDPVariant.STANDARD, PDPVariant.MODIFIED):
        analysis = PDPAnalysis(ring, frame64, variant)
        result = analysis.analyze(workload)
        print(f"{variant.value} @ 64 B frames: "
              f"{'SCHEDULABLE' if result.schedulable else 'NOT schedulable'} "
              f"(worst ratio {result.worst_ratio:.3f})")

    # 2. Headroom: how far can the payloads grow before breakdown?
    analysis = PDPAnalysis(ring, frame64, PDPVariant.MODIFIED)
    headroom = breakdown_utilization(workload, analysis, bandwidth, rel_tol=1e-4)
    print(f"\nheadroom (modified variant): payloads can scale by "
          f"{headroom.scale:.2f}x before breakdown; "
          f"breakdown utilization = {headroom.utilization:.3f}")

    # 3. Frame-size tuning: sweep candidate frame payloads.
    print("\nframe-size tuning (modified variant):")
    print("  payload   schedulable   breakdown scale")
    for payload_bytes in (16, 32, 64, 128, 256, 512):
        frame = FrameFormat(info_bits=bytes_to_bits(payload_bytes), overhead_bits=112)
        candidate = PDPAnalysis(ring, frame, PDPVariant.MODIFIED)
        verdict = candidate.is_schedulable(workload)
        margin = breakdown_utilization(workload, candidate, bandwidth, rel_tol=1e-3)
        print(f"  {payload_bytes:5d} B   {str(verdict):11s}   {margin.scale:8.2f}x")

    # 4. Adversarial simulation of the chosen configuration.
    simulator = PDPRingSimulator(
        ring, frame64, workload,
        PDPSimConfig(
            variant=PDPVariant.MODIFIED,
            phasing=ArrivalPhasing.SIMULTANEOUS,
            async_saturating=True,
            token_walk=TokenWalkModel.ACTUAL,
        ),
    )
    report = simulator.run(duration_s=5.0)
    print(f"\nsimulation (5 s, critical instant, saturating async):")
    print(f"  completed {report.total_completed} messages, "
          f"missed {report.total_missed} deadlines")
    worst = max(report.streams, key=lambda s: s.max_response)
    print(f"  worst response: stream {worst.stream_index} at "
          f"{seconds_to_ms(worst.max_response):.2f} ms "
          f"(period {seconds_to_ms(workload[worst.stream_index].period_s):.0f} ms)")


if __name__ == "__main__":
    main()
