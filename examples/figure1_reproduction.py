#!/usr/bin/env python3
"""Reproduce Figure 1: average breakdown utilization versus bandwidth.

By default runs a scaled-down configuration (20 stations, 10 Monte Carlo
sets) that finishes in seconds and preserves every qualitative shape of
the paper's figure.  Pass ``--full`` for the paper's 100-station,
30-set configuration (takes minutes).

Run:  python examples/figure1_reproduction.py [--full] [--csv figure1.csv]
"""

import argparse

from repro.experiments.config import PaperParameters
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.reporting import write_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale run (100 stations, 30 sets)")
    parser.add_argument("--csv", type=str, default=None,
                        help="also write the curves to this CSV file")
    args = parser.parse_args()

    params = PaperParameters()
    if not args.full:
        params = params.scaled_down(n_stations=20, monte_carlo_sets=10)

    print(f"running Figure 1 with n={params.n_stations} stations, "
          f"{params.monte_carlo_sets} Monte Carlo sets per point ...\n")
    result = run_figure1(params)

    print(result.to_table())
    print()
    print(result.to_ascii_plot())

    print("shape checks (the reproduction targets):")
    for check, passed in result.shape_report().items():
        print(f"  {'PASS' if passed else 'FAIL'}  {check}")
    print(f"\nPDP standard peaks at {result.peak_bandwidth('pdp_standard'):g} Mbps; "
          f"modified peaks at {result.peak_bandwidth('pdp_modified'):g} Mbps")
    print(f"TTP overtakes PDP at {result.crossover_bandwidth():g} Mbps "
          "(the paper places the handover between 10 and 100 Mbps)")

    if args.csv:
        write_csv(args.csv, Figure1Result.CSV_HEADERS, result.rows())
        print(f"\nwrote {args.csv}")


if __name__ == "__main__":
    main()
