#!/usr/bin/env python3
"""Avionics backbone on a timed token ring (the paper's SAFENET/HSRB use case).

The paper motivates the timed token protocol with military avionics buses
(SAFENET, the High-Speed Ring Bus) and NASA's Space Station backbone.
This example configures a 100 Mbps FDDI-style ring carrying a realistic
avionics mix:

* 4 flight-control loops at 80 Hz (small, urgent),
* 8 sensor-fusion feeds at 20 Hz,
* 4 display/telemetry channels at 5 Hz (large),

then (1) selects the TTRT with the paper's sqrt rule, (2) verifies
schedulability with Theorem 5.1, (3) confirms the verdict by
discrete-event simulation under saturating asynchronous interference, and
(4) checks Johnson's token-timing bound (max rotation <= 2 TTRT).

Run:  python examples/avionics_bus.py
"""

from repro import (
    MessageSet,
    SynchronousStream,
    TTPAnalysis,
    fddi_ring,
    mbps,
    milliseconds,
    paper_frame_format,
)
from repro.sim import TTPRingSimulator, TTPSimConfig
from repro.sim.traffic import ArrivalPhasing
from repro.units import bytes_to_bits, seconds_to_ms


def build_avionics_workload() -> MessageSet:
    """16 streams: control loops, sensor feeds, telemetry channels."""
    streams = []
    station = 0
    for _ in range(4):  # 80 Hz flight-control loops, 256 B
        streams.append(SynchronousStream(
            period_s=milliseconds(12.5),
            payload_bits=bytes_to_bits(256),
            station=station))
        station += 1
    for _ in range(8):  # 20 Hz sensor fusion, 4 KB
        streams.append(SynchronousStream(
            period_s=milliseconds(50),
            payload_bits=bytes_to_bits(4096),
            station=station))
        station += 1
    for _ in range(4):  # 5 Hz displays / telemetry, 32 KB
        streams.append(SynchronousStream(
            period_s=milliseconds(200),
            payload_bits=bytes_to_bits(32768),
            station=station))
        station += 1
    return MessageSet(streams)


def main() -> None:
    workload = build_avionics_workload()
    bandwidth = mbps(100)
    ring = fddi_ring(bandwidth, n_stations=len(workload))
    frame = paper_frame_format()
    analysis = TTPAnalysis(ring, frame)

    print(f"avionics ring: {len(workload)} stations at 100 Mbps, "
          f"U = {workload.utilization(bandwidth):.3f}")
    print(f"ring latency Θ = {seconds_to_ms(ring.theta):.4f} ms, "
          f"per-rotation overhead δ = {seconds_to_ms(analysis.delta):.4f} ms\n")

    # 1-2. TTRT selection + Theorem 5.1.
    verdict = analysis.analyze(workload)
    assert verdict.allocation is not None
    alloc = verdict.allocation
    print(f"sqrt-rule TTRT: {seconds_to_ms(alloc.ttrt_s):.3f} ms "
          f"(P_min/2 would be {seconds_to_ms(workload.min_period / 2):.3f} ms)")
    print(f"Theorem 5.1: {'SCHEDULABLE' if verdict.schedulable else 'NOT schedulable'} "
          f"(load ratio {verdict.load_ratio:.3f}, "
          f"slack {seconds_to_ms(alloc.protocol_slack_s):.3f} ms per rotation)\n")

    print("synchronous bandwidth allocation (local scheme):")
    for i, stream in enumerate(workload):
        print(f"  station {i:2d}: P = {seconds_to_ms(stream.period_s):6.1f} ms, "
              f"h = {seconds_to_ms(alloc.bandwidths_s[i]):7.4f} ms, "
              f"q = {alloc.token_visits[i]:3d} visits/period")

    # 3. Simulate under worst-case interference.
    simulator = TTPRingSimulator(
        ring, frame, workload, alloc,
        TTPSimConfig(phasing=ArrivalPhasing.SIMULTANEOUS, async_saturating=True),
    )
    report = simulator.run(duration_s=2.0)
    print(f"\nsimulation (2 s, saturating async background):")
    print(f"  messages completed: {report.total_completed}, "
          f"deadline misses: {report.total_missed}")
    print(f"  medium use: sync {report.sync_utilization:.1%}, "
          f"async {report.async_utilization:.1%}")

    # 4. Johnson's bound.
    max_rotation = report.max_rotation
    print(f"  max token rotation: {seconds_to_ms(max_rotation):.3f} ms "
          f"(bound 2·TTRT = {seconds_to_ms(2 * alloc.ttrt_s):.3f} ms) "
          f"{'OK' if max_rotation <= 2 * alloc.ttrt_s + 1e-9 else 'VIOLATED'}")

    per_stream = max(
        (s.max_response for s in report.streams), default=0.0)
    print(f"  worst response time across streams: "
          f"{seconds_to_ms(per_stream):.3f} ms")


if __name__ == "__main__":
    main()
