"""Run manifests and the runner's observability flags, end to end."""

import json

import pytest

from repro.experiments import runner
from repro.experiments.config import PaperParameters
from repro.obs import logging as obslog
from repro.obs import manifest as obsmanifest
from repro.obs import metrics, timing


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Isolate global logging/metrics/timing state per test."""
    obslog.teardown_logging()
    metrics.reset()
    timing.reset()
    yield
    obslog.teardown_logging()
    metrics.reset()
    timing.reset()


class TestGitRevision:
    def test_inside_repo_reports_sha(self):
        info = obsmanifest.git_revision()
        assert set(info) == {"sha", "dirty"}
        if info["sha"] is not None:
            assert len(info["sha"]) == 40
            assert isinstance(info["dirty"], bool)

    def test_outside_repo_reports_nulls(self, tmp_path):
        assert obsmanifest.git_revision(cwd=str(tmp_path)) == {
            "sha": None,
            "dirty": None,
        }


class TestDescribeParameters:
    def test_dataclass_serializes_init_fields(self):
        desc = obsmanifest.describe_parameters(PaperParameters())
        assert desc["seed"] == PaperParameters().seed
        assert desc["n_stations"] == 100
        assert "_pdp_test_cache" not in desc
        json.dumps(desc)  # JSON-safe

    def test_non_dataclass_falls_back_to_repr(self):
        assert obsmanifest.describe_parameters(object())["repr"]


class TestBuildManifest:
    def test_contains_provenance_fields(self):
        doc = obsmanifest.build_manifest(
            command="figure1",
            cli_args={"fast": True},
            parameters=PaperParameters(),
            wall_time_s=1.5,
            metrics={"m": {"type": "counter", "value": 1.0}},
            spans={"s": {"count": 1}},
            artifacts=["out.csv"],
        )
        assert doc["schema_version"] == obsmanifest.MANIFEST_SCHEMA_VERSION
        assert doc["command"] == "figure1"
        assert doc["parameters"]["seed"] == PaperParameters().seed
        assert doc["environment"]["python"]
        assert doc["environment"]["numpy"]
        assert doc["wall_time_s"] == 1.5
        assert doc["artifacts"] == ["out.csv"]
        json.dumps(doc)

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "manifest.json"
        obsmanifest.write_manifest(
            str(path), obsmanifest.build_manifest(command="x")
        )
        assert json.loads(path.read_text())["command"] == "x"


class TestResolveManifestPath:
    def _args(self, **overrides):
        import argparse

        defaults = {"no_manifest": False, "manifest": None, "csv": None}
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_no_manifest_wins(self):
        args = self._args(no_manifest=True, manifest="x.json")
        assert runner.resolve_manifest_path(args) is None

    def test_explicit_path_wins_over_csv(self):
        args = self._args(manifest="m.json", csv="out/f.csv")
        assert runner.resolve_manifest_path(args) == "m.json"

    def test_defaults_next_to_csv(self):
        args = self._args(csv="out/f.csv")
        assert runner.resolve_manifest_path(args) == "out/manifest.json"

    def test_falls_back_to_cwd(self):
        assert runner.resolve_manifest_path(self._args()) == "manifest.json"


class TestRunnerEndToEnd:
    def test_fast_run_emits_manifest_and_jsonl(self, tmp_path, capsys):
        csv = tmp_path / "figure1.csv"
        jsonl = tmp_path / "run.jsonl"
        code = runner.main(
            [
                "figure1",
                "--fast",
                "--sets", "4",
                "--stations", "10",
                "--csv", str(csv),
                "--log-json", str(jsonl),
                "--quiet",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""  # --quiet really is quiet

        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["command"] == "figure1"
        assert manifest["parameters"]["seed"] == PaperParameters().seed
        assert manifest["parameters"]["monte_carlo_sets"] == 4
        assert manifest["cli_args"]["quiet"] is True
        assert manifest["wall_time_s"] > 0
        assert "git" in manifest

        # The acceptance criterion: paired sampling makes the exact-test
        # structure cache hit after the first bandwidth.
        hits = manifest["metrics"]["pdp.exact_cache.hits"]["value"]
        assert hits > 0
        assert manifest["metrics"]["breakdown.probes"]["value"] > 0

        # Per-cell spans made it into the manifest.
        cell_spans = [k for k in manifest["spans"] if "/bw" in k]
        assert len(cell_spans) == 16 * 3

        # Every log line parses as JSON, and the quiet console output was
        # still mirrored into the structured log.
        records = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        assert records
        loggers = {r["logger"] for r in records}
        assert obslog.CONSOLE_LOGGER_NAME in loggers
        assert "repro.experiments.parallel" in loggers

        # The CSV artifact is listed and uses the 10-column schema.
        assert str(csv) in manifest["artifacts"]
        header = csv.read_text().splitlines()[0]
        assert header.split(",")[-3:] == [
            "deg_standard", "deg_modified", "deg_ttp",
        ]

    def test_no_manifest_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = runner.main(
            [
                "throughput",
                "--fast",
                "--sets", "2",
                "--stations", "8",
                "--no-manifest",
                "--quiet",
            ]
        )
        assert code == 0
        assert not (tmp_path / "manifest.json").exists()
