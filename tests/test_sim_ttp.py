"""TTP ring simulator: FDDI timer rules, Johnson's bound, Theorem 5.1."""

import pytest

from repro.analysis.ttp import TTPAnalysis
from repro.analysis.ttrt import FixedTTRT
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, paper_frame_format
from repro.sim.traffic import ArrivalPhasing
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(specs) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period), payload_bits=payload, station=i
        )
        for i, (period, payload) in enumerate(specs)
    )


def build(message_set, bandwidth_mbps=100.0, policy=None, **config_kwargs):
    ring = fddi_ring(mbps(bandwidth_mbps), n_stations=len(message_set))
    analysis = TTPAnalysis(ring, FRAME, policy)
    allocation = analysis.allocate(message_set)
    simulator = TTPRingSimulator(
        ring, FRAME, message_set, allocation, TTPSimConfig(**config_kwargs)
    )
    return analysis, allocation, simulator


class TestConstruction:
    def test_rejects_empty_set(self):
        ring = fddi_ring(mbps(100), n_stations=4)
        analysis = TTPAnalysis(ring, FRAME)
        workload = make_set([(50, 1000)])
        allocation = analysis.allocate(workload)
        with pytest.raises(ConfigurationError):
            TTPRingSimulator(ring, FRAME, MessageSet([]), allocation)

    def test_rejects_allocation_mismatch(self):
        ring = fddi_ring(mbps(100), n_stations=4)
        analysis = TTPAnalysis(ring, FRAME)
        allocation = analysis.allocate(make_set([(50, 1000)]))
        with pytest.raises(ConfigurationError):
            TTPRingSimulator(
                ring, FRAME, make_set([(50, 1000), (60, 1000)]), allocation
            )

    def test_rejects_duplicate_stations(self):
        ring = fddi_ring(mbps(100), n_stations=4)
        analysis = TTPAnalysis(ring, FRAME)
        workload = MessageSet(
            [
                SynchronousStream(period_s=0.05, payload_bits=100, station=1),
                SynchronousStream(period_s=0.06, payload_bits=100, station=1),
            ]
        )
        allocation = analysis.allocate(workload)
        with pytest.raises(ConfigurationError):
            TTPRingSimulator(ring, FRAME, workload, allocation)

    def test_rejects_nonpositive_duration(self):
        _, _, simulator = build(make_set([(50, 1000)]))
        with pytest.raises(ConfigurationError):
            simulator.run(0.0)


class TestProtocolBehaviour:
    def test_light_load_completes_everything(self):
        _, _, simulator = build(make_set([(50, 8000), (100, 16_000)]))
        report = simulator.run(0.5)
        assert report.total_completed == 10 + 5
        assert report.deadline_safe

    def test_johnsons_bound_holds(self):
        """Max token rotation never exceeds 2 TTRT (Sevcik & Johnson)."""
        workload = make_set([(40, 20_000), (60, 40_000), (80, 40_000), (100, 60_000)])
        _, allocation, simulator = build(workload, async_saturating=True)
        report = simulator.run(1.0)
        assert report.max_rotation <= 2 * allocation.ttrt_s + 1e-9

    def test_average_rotation_at_most_ttrt(self):
        """Steady-state mean rotation time cannot exceed TTRT."""
        workload = make_set([(40, 20_000), (60, 40_000), (80, 40_000)])
        _, allocation, simulator = build(workload, async_saturating=True)
        report = simulator.run(1.0)
        means = [r.mean for r in report.rotations if r.count > 2]
        assert means
        for mean in means:
            assert mean <= allocation.ttrt_s * 1.01

    def test_async_only_with_earliness(self):
        """Without async traffic the token spins much faster than TTRT."""
        workload = make_set([(50, 1000)])
        _, allocation, simulator = build(workload, async_saturating=False)
        report = simulator.run(0.5)
        fast_rotations = [r.mean for r in report.rotations if r.count > 0]
        assert min(fast_rotations) < allocation.ttrt_s / 2

    def test_async_utilization_positive_when_saturating(self):
        _, _, simulator = build(make_set([(50, 1000)]), async_saturating=True)
        report = simulator.run(0.5)
        assert report.async_utilization > 0.3

    def test_rotation_tracking_can_be_disabled(self):
        _, _, simulator = build(
            make_set([(50, 1000)]), track_rotations=False
        )
        report = simulator.run(0.2)
        assert report.rotations == []

    def test_sync_chunked_across_visits(self):
        """A message far larger than h_i needs many visits yet completes."""
        workload = make_set([(100, 200_000), (100, 1000)])
        _, allocation, simulator = build(workload)
        h_0 = allocation.bandwidths_s[0]
        message_time = 200_000 / mbps(100)
        assert message_time > 3 * h_0  # genuinely chunked
        report = simulator.run(0.5)
        assert report.streams[0].missed == 0
        assert report.streams[0].completed >= 4


class TestOverload:
    def test_protocol_constraint_violation_misses(self):
        """Grossly over-subscribed synchronous load must miss deadlines."""
        workload = make_set(
            [(20, 600_000), (22, 600_000), (24, 600_000), (26, 600_000)]
        )
        ring = fddi_ring(mbps(100), n_stations=4)
        analysis = TTPAnalysis(ring, FRAME)
        result = analysis.analyze(workload)
        assert not result.schedulable
        assert result.allocation is not None
        simulator = TTPRingSimulator(
            ring, FRAME, workload, result.allocation, TTPSimConfig()
        )
        report = simulator.run(1.0)
        assert report.total_missed > 0


class TestAgreementWithTheorem:
    @pytest.mark.parametrize("bandwidth", [25.0, 100.0, 1000.0])
    @pytest.mark.parametrize("phasing", list(ArrivalPhasing))
    def test_schedulable_sets_never_miss(self, bandwidth, phasing):
        workload = make_set(
            [(30, 10_000), (50, 30_000), (75, 30_000), (120, 80_000)]
        )
        ring = fddi_ring(mbps(bandwidth), n_stations=len(workload))
        analysis = TTPAnalysis(ring, FRAME)
        result = analysis.analyze(workload)
        if not result.schedulable:
            pytest.skip("not schedulable at this bandwidth; nothing to check")
        simulator = TTPRingSimulator(
            ring,
            FRAME,
            workload,
            result.allocation,
            TTPSimConfig(phasing=phasing, async_saturating=True),
        )
        report = simulator.run(0.6)
        assert report.deadline_safe
        assert report.total_completed > 0

    def test_near_saturation_still_clean(self):
        """A set scaled to 95% of its breakdown point must stay clean."""
        workload = make_set([(40, 10_000), (60, 20_000), (90, 30_000)])
        ring = fddi_ring(mbps(100), n_stations=3)
        analysis = TTPAnalysis(ring, FRAME)
        scale = analysis.saturation_scale(workload)
        near = workload.scaled(scale * 0.95)
        allocation = analysis.allocate(near)
        simulator = TTPRingSimulator(ring, FRAME, near, allocation, TTPSimConfig())
        report = simulator.run(0.8)
        assert report.deadline_safe
