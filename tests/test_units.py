"""Unit conversion helpers: exact values and input validation."""

import math

import pytest

from repro import units


class TestDataSizes:
    def test_bits_is_identity(self):
        assert units.bits(512) == 512.0

    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(64) == 512.0

    def test_bits_to_bytes_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(1500)) == 1500.0

    def test_kilobits(self):
        assert units.kilobits(2) == 2_000.0

    def test_megabits(self):
        assert units.megabits(1.5) == 1_500_000.0


class TestBandwidth:
    def test_mbps(self):
        assert units.mbps(100) == 1e8

    def test_gbps(self):
        assert units.gbps(1) == 1e9

    def test_kbps(self):
        assert units.kbps(56) == 56_000.0

    def test_bps_to_mbps_roundtrip(self):
        assert units.bps_to_mbps(units.mbps(16)) == 16.0


class TestTime:
    def test_seconds_is_identity(self):
        assert units.seconds(2.5) == 2.5

    def test_milliseconds(self):
        assert units.milliseconds(100) == pytest.approx(0.1)

    def test_microseconds(self):
        assert units.microseconds(250) == pytest.approx(250e-6)

    def test_nanoseconds(self):
        assert units.nanoseconds(1) == pytest.approx(1e-9)

    def test_seconds_to_ms(self):
        assert units.seconds_to_ms(0.02) == pytest.approx(20.0)

    def test_seconds_to_us(self):
        assert units.seconds_to_us(1e-3) == pytest.approx(1000.0)


class TestDistance:
    def test_meters_identity(self):
        assert units.meters(100) == 100.0

    def test_kilometers(self):
        assert units.kilometers(10) == 10_000.0


class TestTransmissionTime:
    def test_simple_case(self):
        # 1000 bits at 1 Mbps = 1 ms.
        assert units.transmission_time(1000, 1e6) == pytest.approx(1e-3)

    def test_zero_size_is_instant(self):
        assert units.transmission_time(0, 1e6) == 0.0

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0.0)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, -5.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            units.transmission_time(-1, 1e6)


class TestPropagationDelay:
    def test_speed_of_light_constant(self):
        assert units.SPEED_OF_LIGHT == pytest.approx(2.998e8, rel=1e-3)

    def test_full_speed(self):
        delay = units.propagation_delay(units.SPEED_OF_LIGHT)
        assert delay == pytest.approx(1.0)

    def test_velocity_factor(self):
        # At 0.75c a 10 km ring takes 10000 / (0.75 * c) seconds.
        expected = 10_000 / (0.75 * units.SPEED_OF_LIGHT)
        assert units.propagation_delay(10_000, 0.75) == pytest.approx(expected)

    def test_paper_ring_magnitude(self):
        # 100 stations x 100 m at 0.75c is roughly 44 microseconds.
        delay = units.propagation_delay(10_000, 0.75)
        assert 40e-6 < delay < 50e-6

    def test_zero_distance(self):
        assert units.propagation_delay(0.0) == 0.0

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            units.propagation_delay(-1.0)

    def test_rejects_bad_velocity_factor(self):
        with pytest.raises(ValueError):
            units.propagation_delay(100.0, 0.0)
        with pytest.raises(ValueError):
            units.propagation_delay(100.0, 1.5)

    def test_velocity_factor_of_one_allowed(self):
        assert math.isfinite(units.propagation_delay(100.0, 1.0))
