"""Shared fixtures for the test suite.

Conventions used throughout the tests:

* ``small_ring_*`` fixtures use 8 stations so exact values stay
  hand-checkable; paper-scale (100 stations) appears only in the slower
  integration tests.
* All randomness flows through seeded ``numpy.random.Generator`` objects;
  no test depends on global RNG state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import PaperParameters
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.frames import FrameFormat
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import bytes_to_bits, mbps, milliseconds


@pytest.fixture
def frame() -> FrameFormat:
    """The paper's frame format: 64 B payload, 112 b overhead."""
    return paper_frame_format()


@pytest.fixture
def small_ring_802_5():
    """An 8-station IEEE 802.5 ring at 10 Mbps."""
    return ieee_802_5_ring(mbps(10), n_stations=8)


@pytest.fixture
def small_ring_fddi():
    """An 8-station FDDI ring at 100 Mbps."""
    return fddi_ring(mbps(100), n_stations=8)


@pytest.fixture
def harmonic_set() -> MessageSet:
    """Four harmonic streams (easy to reason about by hand)."""
    return MessageSet(
        [
            SynchronousStream(period_s=milliseconds(20), payload_bits=8_000, station=0),
            SynchronousStream(period_s=milliseconds(40), payload_bits=16_000, station=1),
            SynchronousStream(period_s=milliseconds(80), payload_bits=16_000, station=2),
            SynchronousStream(period_s=milliseconds(160), payload_bits=32_000, station=3),
        ]
    )


@pytest.fixture
def light_set() -> MessageSet:
    """Eight streams with comfortable slack at 10+ Mbps."""
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(25 + 15 * i),
            payload_bits=bytes_to_bits(512),
            station=i,
        )
        for i in range(8)
    )


@pytest.fixture
def sampler() -> MessageSetSampler:
    """A small sampler matching the paper's distributions (8 streams)."""
    return MessageSetSampler(
        n_streams=8,
        periods=PeriodDistribution(mean_period_s=0.1, ratio=10.0),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for Monte Carlo tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_params() -> PaperParameters:
    """Paper parameters scaled down for quick experiment tests."""
    return PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=5)
