"""End-to-end request tracing through the admission service.

One served request must produce one trace nesting
``request -> batch -> engine -> cache`` with consistent IDs, under both
admission engines and at every sampling rate — and tracing must never
change a decision (the transport-level twin of the
``admission_tracing_equiv`` fuzz property).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import ServiceError
from repro.obs import prometheus
from repro.obs.tracing import TRACE_SCHEMA_VERSION
from repro.service import AdmissionServer, ServiceClient, ServiceConfig


class _ServerThread:
    """An :class:`AdmissionServer` on its own loop/thread (test helper)."""

    def __init__(self, config: ServiceConfig):
        self._config = config
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: AdmissionServer | None = None

    def __enter__(self) -> AdmissionServer:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server failed to start"
        return self.server

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)

    def _run(self) -> None:
        async def main():
            self.server = AdmissionServer(self._config)
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            await self.server.start()
            self._ready.set()
            await self._stop.wait()
            await self.server.drain_and_stop()

        asyncio.run(main())


def _config(engine: str, sample_rate: float, **overrides) -> ServiceConfig:
    return ServiceConfig(
        port=0,
        n_stations=8,
        admission_engine=engine,
        trace_sample_rate=sample_rate,
        **overrides,
    )


def _drive_mixed_load(client: ServiceClient) -> list[dict]:
    """Six checks and two admits in a fixed order; returns the decisions."""
    decisions = []
    for index in range(8):
        period_s = (0.008, 0.016, 0.032, 0.064)[index % 4]
        if index in (3, 7):
            decisions.append(client.admit(period_s, 512.0))
        else:
            decisions.append(client.check(period_s, 256.0 + 64.0 * index))
    return decisions


EXPECTED_SAMPLED = {0.0: 0, 0.5: 4, 1.0: 8}


@pytest.mark.parametrize("engine", ["scalar", "incremental"])
@pytest.mark.parametrize("sample_rate", [0.0, 0.5, 1.0])
class TestRequestTraces:
    def test_one_trace_nests_server_batch_engine_cache(
        self, engine, sample_rate
    ):
        with _ServerThread(_config(engine, sample_rate)) as server:
            with ServiceClient(port=server.port) as client:
                _drive_mixed_load(client)
                trace_header = client.last_headers.get("x-trace-id")
                payload = client.traces()

        assert payload["schema_version"] == TRACE_SCHEMA_VERSION
        assert payload["sample_rate"] == sample_rate
        traces = payload["traces"]
        assert payload["count"] == len(traces)
        admission = [
            t for t in traces if t["attrs"].get("path", "").startswith("/v1/")
        ]
        assert len(admission) == EXPECTED_SAMPLED[sample_rate]

        if sample_rate == 0.0:
            assert trace_header is None
            return
        # the 8th request was an admit; at 0.5 the even-indexed requests
        # (2nd, 4th, ...) are the sampled ones, so it is traced either way
        assert trace_header is not None
        assert trace_header in {t["trace_id"] for t in traces}

        for trace in admission:
            assert trace["name"] == "request"
            assert trace["attrs"]["method"] == "POST"
            assert trace["attrs"]["status"] == 200
            assert trace["attrs"]["op"] in ("check", "admit")
            (batch,) = trace["spans"]
            assert batch["name"] == "batch"
            assert batch["attrs"]["batch_size"] >= 1
            assert batch["attrs"]["engine"] == engine
            engines = [s for s in batch["spans"] if s["name"] == "engine"]
            assert len(engines) == 1
            assert engines[0]["attrs"]["engine"] == engine
            caches = [
                s for s in engines[0]["spans"] if s["name"] == "cache"
            ]
            assert len(caches) == 1
            assert caches[0]["attrs"]["namespace"] == "admission"
            if engine == "scalar":
                # the scalar engine consults the decision cache per op
                hits = caches[0]["attrs"].get("cache_hits", 0)
                misses = caches[0]["attrs"].get("cache_misses", 0)
                assert hits + misses >= 1
            else:
                # the incremental engine skips decision-level entries
                # (the per-level prefix cache subsumes them); its level
                # accounting lands on the exact-evaluation span instead
                exacts = [
                    s for s in engines[0]["spans"] if s["name"] == "exact"
                ]
                assert len(exacts) == 1
                levels = exacts[0]["attrs"].get(
                    "levels_computed", 0
                ) + exacts[0]["attrs"].get("levels_reused", 0)
                assert levels >= 1

    def test_decisions_identical_with_tracing_on_and_off(
        self, engine, sample_rate
    ):
        def serve(rate: float) -> list[dict]:
            with _ServerThread(_config(engine, rate)) as server:
                with ServiceClient(port=server.port) as client:
                    return _drive_mixed_load(client)

        assert serve(sample_rate) == serve(0.0)


class TestTraceEndpoint:
    def test_limit_caps_and_orders_the_buffer(self):
        with _ServerThread(_config("scalar", 1.0)) as server:
            with ServiceClient(port=server.port) as client:
                _drive_mixed_load(client)
                full = client.traces()
                limited = client.traces(limit=3)
        assert limited["count"] == 3
        # the limited cut is the newest suffix of the buffer; the full
        # fetch itself finishes one more trace in between, so the last
        # limited entry may be that /v1/traces request
        full_ids = [t["trace_id"] for t in full["traces"]]
        limited_ids = [t["trace_id"] for t in limited["traces"]]
        assert limited_ids[:2] == full_ids[-2:]

    def test_bad_limit_is_a_400(self):
        with _ServerThread(_config("scalar", 1.0)) as server:
            with ServiceClient(port=server.port) as client:
                status, payload, _ = client.request(
                    "GET", "/v1/traces?limit=banana"
                )
        assert status == 400
        assert payload["error"] == "BadLimit"

    def test_buffer_is_bounded(self):
        config = _config("scalar", 1.0, trace_buffer=4)
        with _ServerThread(config) as server:
            with ServiceClient(port=server.port) as client:
                _drive_mixed_load(client)
                payload = client.traces()
        assert payload["count"] == 4


class TestMetricsFormats:
    def test_prometheus_exposition_parses_and_is_typed(self):
        with _ServerThread(_config("scalar", 1.0)) as server:
            with ServiceClient(port=server.port) as client:
                _drive_mixed_load(client)
                text = client.metrics_text()
                content_type = client.last_headers["content-type"]
                json_snapshot = client.metrics()["metrics"]

        assert content_type == prometheus.CONTENT_TYPE
        families = prometheus.parse(text)
        requests = families["repro_service_http_requests_total"]
        assert requests["type"] == "counter"
        assert requests["samples"][0]["value"] >= 8
        latency = families["repro_service_request_latency_s"]
        assert latency["type"] == "histogram"
        inf_bucket = [
            s
            for s in latency["samples"]
            if s["name"] == "repro_service_request_latency_s_bucket"
            and s["labels"]["le"] == "+Inf"
        ]
        count = [
            s
            for s in latency["samples"]
            if s["name"] == "repro_service_request_latency_s_count"
        ]
        assert inf_bucket[0]["value"] == count[0]["value"]
        # both formats come from the same atomic snapshot machinery
        assert "service.http_requests" in json_snapshot

    def test_json_format_keeps_json_content_type(self):
        with _ServerThread(_config("scalar", 1.0)) as server:
            with ServiceClient(port=server.port) as client:
                client.healthz()
                status, payload, _ = client.request(
                    "GET", "/metrics?format=json"
                )
                content_type = client.last_headers["content-type"]
        assert status == 200
        assert content_type.startswith("application/json")
        assert "metrics" in payload

    def test_unknown_format_is_a_400(self):
        with _ServerThread(_config("scalar", 1.0)) as server:
            with ServiceClient(port=server.port) as client:
                status, payload, _ = client.request(
                    "GET", "/metrics?format=bogus"
                )
        assert status == 400
        assert payload["error"] == "BadFormat"

    def test_exemplar_trace_ids_resolve_to_buffered_traces(self):
        with _ServerThread(_config("scalar", 1.0)) as server:
            with ServiceClient(port=server.port) as client:
                _drive_mixed_load(client)
                snapshot = client.metrics()["metrics"]
                trace_ids = {
                    t["trace_id"] for t in client.traces()["traces"]
                }
        exemplars = (
            snapshot["service.request_latency_s"]["buckets"]["exemplars"]
        )
        assert exemplars, "traced requests must leave exemplars"
        assert any(
            trace_id in trace_ids for trace_id, _ in exemplars.values()
        )


class TestSlowTraceLog:
    def test_slow_requests_increment_the_slow_counter(self):
        config = _config("scalar", 1.0, slow_trace_s=1e-9)
        with _ServerThread(config) as server:
            with ServiceClient(port=server.port) as client:
                client.check(0.032, 512.0)
                snapshot = client.metrics()["metrics"]
        assert snapshot["trace.slow"]["value"] >= 1
