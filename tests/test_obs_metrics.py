"""The metrics registry, its instrumentation hooks, and parallel merging.

Three layers of assurance:

1. registry mechanics (singletons, snapshot/merge/reset, disable);
2. the exact-test cache counters against an *oracle recount* — a
   hand-tracked simulation of the LRU on a deterministic workload;
3. the partitioning invariance contract: a ``jobs=2`` Figure 1 run merges
   worker metrics into exactly the totals of the sequential run for every
   metric that does not depend on how cells were packed into processes.
"""

import numpy as np
import pytest

from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.figure1 import run_figure1
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.frames import FrameFormat
from repro.network.standards import ieee_802_5_ring
from repro.obs import metrics
from repro.units import mbps


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test starts and ends with a zeroed global registry."""
    metrics.reset()
    metrics.enable()
    yield
    metrics.reset()
    metrics.enable()


class TestRegistry:
    def test_counter_is_singleton_per_name(self):
        reg = metrics.MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")

    def test_counter_increments(self):
        reg = metrics.MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_counter_rejects_negative(self):
        reg = metrics.MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("hits").inc(-1)

    def test_type_conflict_raises(self):
        reg = metrics.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_gauge_tracks_level(self):
        reg = metrics.MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        g.set(3)
        assert g.value == 3.0

    def test_histogram_moments(self):
        reg = metrics.MetricsRegistry()
        h = reg.histogram("sizes")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.minimum == 1.0 and h.maximum == 3.0

    def test_snapshot_skips_zero_state(self):
        reg = metrics.MetricsRegistry()
        reg.counter("untouched")
        reg.histogram("empty")
        reg.counter("used").inc()
        snap = reg.snapshot()
        assert "used" in snap
        assert "untouched" not in snap
        assert "empty" not in snap

    def test_snapshot_is_plain_data(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"] == {"type": "gauge", "value": 5.0}
        assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 1.5

    def test_snapshot_prefix_filters(self):
        reg = metrics.MetricsRegistry()
        reg.counter("service.requests").inc()
        reg.counter("cache.admission.hits").inc()
        reg.counter("sim.runs").inc()
        assert set(reg.snapshot(prefix="service.")) == {"service.requests"}
        assert set(reg.snapshot(prefix=("service.", "cache.admission."))) == {
            "service.requests",
            "cache.admission.hits",
        }
        assert len(reg.snapshot()) == 3

    def test_merge_combines_worker_snapshots(self):
        a = metrics.MetricsRegistry()
        b = metrics.MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        a.merge(b.snapshot())
        assert a.counter("c").value == 5.0
        assert a.gauge("g").value == 9.0  # max wins
        h = a.histogram("h")
        assert h.count == 2 and h.minimum == 1.0 and h.maximum == 5.0

    def test_merge_unknown_type_raises(self):
        reg = metrics.MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.merge({"x": {"type": "meter", "value": 1}})

    def test_reset_zeroes_in_place(self):
        reg = metrics.MetricsRegistry()
        c = reg.counter("c")
        c.inc(4)
        reg.reset()
        assert c.value == 0.0
        c.inc()  # the pre-reset reference still works
        assert reg.counter("c").value == 1.0

    def test_disable_short_circuits_updates(self):
        reg = metrics.MetricsRegistry()
        c = reg.counter("c")
        reg.enabled = False
        c.inc(10)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == {}
        reg.enabled = True
        c.inc()
        assert c.value == 1.0


def _make_set(rng, n_streams: int, periods=None) -> MessageSet:
    """A random message set (optionally with pinned periods)."""
    if periods is None:
        periods = np.sort(rng.uniform(0.02, 0.2, size=n_streams))
    payloads = rng.uniform(100.0, 2000.0, size=n_streams)
    return MessageSet(
        SynchronousStream(period_s=float(p), payload_bits=float(c), station=i)
        for i, (c, p) in enumerate(zip(payloads, periods))
    )


class TestCacheOracle:
    """The pdp.exact_cache counters versus a hand-tracked LRU recount."""

    def _analysis(self, cache_size: int) -> PDPAnalysis:
        ring = ieee_802_5_ring(mbps(10.0), n_stations=8)
        frame = FrameFormat(info_bits=512, overhead_bits=112)
        return PDPAnalysis(
            ring, frame, PDPVariant.STANDARD, cache_size=cache_size
        )

    def test_counters_match_oracle_recount(self):
        cache_size = 3
        analysis = self._analysis(cache_size)
        rng = np.random.default_rng(7)
        # Six distinct period vectors, presented in an order with repeats.
        vectors = [
            tuple(np.sort(rng.uniform(0.02, 0.2, size=8))) for _ in range(6)
        ]
        order = [0, 1, 0, 2, 3, 1, 4, 0, 5, 5, 2]

        # Oracle: replay the same access sequence against a plain LRU.
        oracle_cache: list[int] = []
        oracle = {"hits": 0, "misses": 0, "evictions": 0}
        for idx in order:
            if idx in oracle_cache:
                oracle["hits"] += 1
                oracle_cache.remove(idx)
                oracle_cache.append(idx)
            else:
                oracle["misses"] += 1
                oracle_cache.append(idx)
                if len(oracle_cache) > cache_size:
                    oracle_cache.pop(0)
                    oracle["evictions"] += 1

        for idx in order:
            analysis.is_schedulable(_make_set(rng, 8, periods=vectors[idx]))

        snap = metrics.snapshot()
        assert snap["pdp.exact_cache.hits"]["value"] == oracle["hits"]
        assert snap["pdp.exact_cache.misses"]["value"] == oracle["misses"]
        assert snap["pdp.exact_cache.evictions"]["value"] == oracle["evictions"]
        assert metrics.gauge("pdp.exact_cache.size").value == len(oracle_cache)

    def test_repeated_set_hits_after_first_miss(self):
        analysis = self._analysis(4)
        rng = np.random.default_rng(3)
        message_set = _make_set(rng, 8)
        for _ in range(5):
            analysis.is_schedulable(message_set)
        snap = metrics.snapshot()
        assert snap["pdp.exact_cache.misses"]["value"] == 1
        assert snap["pdp.exact_cache.hits"]["value"] == 4


#: Metrics whose totals must not depend on how grid cells are packed into
#: worker processes.  The exact-cache hit/miss *split* is excluded by
#: design (each worker warms its own cache) but the lookup total is not.
INVARIANT_METRICS = (
    "breakdown.probes",
    "breakdown.batch_calls",
    "breakdown.sets_saturated",
    "breakdown.closed_form_sets",
    "montecarlo.sets_sampled",
    "montecarlo.degenerate_sets",
    "montecarlo.zero_scale_sets",
    "montecarlo.infinite_scale_sets",
)


class TestParallelMergeInvariance:
    def test_jobs2_merged_metrics_equal_sequential(self):
        params = PaperParameters().scaled_down(
            n_stations=12, monte_carlo_sets=4
        )
        bandwidths = (4.0, 40.0, 400.0)

        metrics.reset()
        sequential = run_figure1(params, bandwidths_mbps=bandwidths, jobs=1)
        seq_snap = metrics.snapshot()

        metrics.reset()
        pooled = run_figure1(params, bandwidths_mbps=bandwidths, jobs=2)
        pool_snap = metrics.snapshot()

        # Bit-identical results regardless of jobs.
        assert sequential.rows() == pooled.rows()

        for name in INVARIANT_METRICS:
            assert seq_snap.get(name) == pool_snap.get(name), name

        # The cache lookup *total* is invariant even though the split isn't.
        def lookups(snap):
            hits = snap.get("pdp.exact_cache.hits", {}).get("value", 0.0)
            misses = snap.get("pdp.exact_cache.misses", {}).get("value", 0.0)
            return hits + misses

        assert lookups(seq_snap) == lookups(pool_snap)

        # Histogram mass (bisection evaluations per set) is invariant too.
        seq_evals = seq_snap.get("breakdown.evals_per_set")
        pool_evals = pool_snap.get("breakdown.evals_per_set")
        if seq_evals is not None:
            assert pool_evals is not None
            assert seq_evals["count"] == pool_evals["count"]
            assert seq_evals["total"] == pool_evals["total"]

    def test_results_identical_with_metrics_disabled(self):
        params = PaperParameters().scaled_down(
            n_stations=10, monte_carlo_sets=3
        )
        enabled = run_figure1(params, bandwidths_mbps=(10.0,), jobs=1)
        metrics.reset()
        metrics.disable()
        try:
            disabled = run_figure1(params, bandwidths_mbps=(10.0,), jobs=1)
        finally:
            metrics.enable()
        assert enabled.rows() == disabled.rows()
        # And the disabled run left no trace.
        assert metrics.snapshot() == {}
