"""The bench-trend guard: history append, regression detection, skips.

``tools/bench_trend.py`` is what keeps ``make verify`` honest about the
performance trajectory: the committed ``BENCH_*.json`` canaries only
hold the latest run, the JSONL history holds the trend.  These tests pin
the comparison semantics — same-machine baselines only, relative
threshold with absolute jitter floors, tolerant of malformed history
lines.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_trend",
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tools",
        "bench_trend.py",
    ),
)
bench_trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_trend)


MACHINE = {
    "node": "vm",
    "machine": "x86_64",
    "cpu": {"brand": "TestCPU", "count": 4, "arch": "x86_64"},
}


def write_bench(root, name, mean, ops, machine=MACHINE):
    document = {
        "datetime": "2026-08-08T00:00:00+00:00",
        "machine": machine,
        "benchmarks": [
            {
                "fullname": "repro.bench::case",
                "stats": {"mean": mean, "ops": ops},
            }
        ],
    }
    path = os.path.join(root, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return path


@pytest.fixture
def trend_dir(tmp_path):
    root = str(tmp_path)
    return root, os.path.join(root, "BENCH_history.jsonl")


def run(command, root, history, threshold=0.25):
    return bench_trend.main(
        [
            command,
            "--root",
            root,
            "--history",
            history,
            "--threshold",
            str(threshold),
        ]
    )


class TestAppend:
    def test_append_writes_one_line_per_bench_file(self, trend_dir):
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        write_bench(root, "BENCH_b.json", 0.020, 50.0)
        assert run("append", root, history) == 0
        entries = [
            json.loads(line)
            for line in open(history, encoding="utf-8")
        ]
        assert [e["file"] for e in entries] == [
            "BENCH_a.json",
            "BENCH_b.json",
        ]
        assert entries[0]["machine"] == "TestCPU|x86_64|4"
        assert entries[0]["benchmarks"]["repro.bench::case"]["mean"] == 0.010

    def test_append_without_bench_files_is_a_noop(self, trend_dir):
        root, history = trend_dir
        assert run("append", root, history) == 0
        assert not os.path.exists(history)


class TestCheck:
    def test_steady_state_passes(self, trend_dir):
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        run("append", root, history)
        write_bench(root, "BENCH_a.json", 0.011, 95.0)  # within 25%
        assert run("check", root, history) == 0

    def test_mean_regression_fails(self, trend_dir):
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        run("append", root, history)
        write_bench(root, "BENCH_a.json", 0.030, 100.0)  # 3x slower
        assert run("check", root, history) == 1

    def test_throughput_regression_fails(self, trend_dir):
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        run("append", root, history)
        write_bench(root, "BENCH_a.json", 0.010, 40.0)  # -60% ops
        assert run("check", root, history) == 1

    def test_jitter_below_absolute_floor_passes(self, trend_dir):
        """A 2x blowup on a microsecond benchmark is noise, not signal."""
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.0001, 1e6)
        run("append", root, history)
        write_bench(root, "BENCH_a.json", 0.0002, 1e6)
        assert run("check", root, history) == 0

    def test_no_history_skips(self, trend_dir, capsys):
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        assert run("check", root, history) == 0
        assert "no history" in capsys.readouterr().out

    def test_machine_mismatch_skips(self, trend_dir, capsys):
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        run("append", root, history)
        other = dict(MACHINE, cpu={"brand": "OtherCPU", "count": 1})
        write_bench(root, "BENCH_a.json", 0.900, 1.0, machine=other)
        assert run("check", root, history) == 0
        assert "no same-machine history" in capsys.readouterr().out

    def test_newest_same_machine_entry_wins(self, trend_dir):
        """The baseline is the latest entry, not the first."""
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        run("append", root, history)
        write_bench(root, "BENCH_a.json", 0.030, 100.0)
        run("append", root, history)  # the regression becomes the baseline
        assert run("check", root, history) == 0

    def test_malformed_history_lines_are_ignored(self, trend_dir):
        root, history = trend_dir
        write_bench(root, "BENCH_a.json", 0.010, 100.0)
        run("append", root, history)
        with open(history, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        assert run("check", root, history) == 0
