"""MessageSet: sequence behaviour, aggregates, RM ordering."""

import pytest

from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.units import mbps, milliseconds


def make_set() -> MessageSet:
    return MessageSet(
        [
            SynchronousStream(period_s=milliseconds(40), payload_bits=4000, station=0),
            SynchronousStream(period_s=milliseconds(10), payload_bits=1000, station=1),
            SynchronousStream(period_s=milliseconds(20), payload_bits=2000, station=2),
        ]
    )


class TestSequenceProtocol:
    def test_len(self):
        assert len(make_set()) == 3

    def test_getitem(self):
        assert make_set()[1].station == 1

    def test_slice_returns_message_set(self):
        subset = make_set()[:2]
        assert isinstance(subset, MessageSet)
        assert len(subset) == 2

    def test_iteration_preserves_order(self):
        assert [s.station for s in make_set()] == [0, 1, 2]

    def test_equality_and_hash(self):
        assert make_set() == make_set()
        assert hash(make_set()) == hash(make_set())

    def test_inequality(self):
        assert make_set() != make_set().scaled(2.0)

    def test_rejects_non_streams(self):
        with pytest.raises(MessageSetError):
            MessageSet([1, 2, 3])

    def test_empty_set_allowed(self):
        assert len(MessageSet([])) == 0


class TestAggregates:
    def test_periods(self):
        assert make_set().periods == (0.040, 0.010, 0.020)

    def test_payloads(self):
        assert make_set().payloads_bits == (4000, 1000, 2000)

    def test_min_max_period(self):
        assert make_set().min_period == pytest.approx(0.010)
        assert make_set().max_period == pytest.approx(0.040)

    def test_min_period_empty_raises(self):
        with pytest.raises(MessageSetError):
            MessageSet([]).min_period

    def test_utilization_equation_3(self):
        # At 1 Mbps: 4000/40ms + 1000/10ms + 2000/20ms bits/s = 0.3.
        assert make_set().utilization(mbps(1)) == pytest.approx(0.3)

    def test_total_payload_bits(self):
        assert make_set().total_payload_bits() == 7000


class TestRateMonotonic:
    def test_sorts_by_period(self):
        ordered = make_set().rate_monotonic()
        assert [s.period_s for s in ordered] == sorted(make_set().periods)

    def test_ordered_check(self):
        assert not make_set().is_rate_monotonic_ordered()
        assert make_set().rate_monotonic().is_rate_monotonic_ordered()

    def test_original_untouched(self):
        original = make_set()
        original.rate_monotonic()
        assert [s.station for s in original] == [0, 1, 2]

    def test_empty_is_trivially_ordered(self):
        assert MessageSet([]).is_rate_monotonic_ordered()


class TestTransformations:
    def test_scaled(self):
        doubled = make_set().scaled(2.0)
        assert doubled.payloads_bits == (8000, 2000, 4000)
        assert doubled.periods == make_set().periods

    def test_scaled_utilization_linear(self):
        assert make_set().scaled(0.5).utilization(mbps(1)) == pytest.approx(0.15)

    def test_assigned_to_stations(self):
        renumbered = make_set().rate_monotonic().assigned_to_stations()
        assert [s.station for s in renumbered] == [0, 1, 2]
