"""Throughput experiment: structure and the overhead story."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.throughput import throughput_experiment


@pytest.fixture(scope="module")
def result():
    params = PaperParameters().scaled_down(n_stations=8, monte_carlo_sets=3)
    return throughput_experiment(
        params, bandwidths_mbps=(4.0, 100.0), duration_s=0.3
    )


class TestStructure:
    def test_both_protocols_present(self, result):
        protocols = {p.protocol for p in result.points}
        assert protocols == {"modified-802.5", "fddi"}

    def test_fractions_sum_to_one(self, result):
        for point in result.points:
            total = (
                point.sync_utilization
                + point.async_utilization
                + point.overhead_fraction
            )
            assert total == pytest.approx(1.0, abs=0.05)

    def test_no_misses_at_half_load(self, result):
        assert all(p.deadline_misses == 0 for p in result.points)

    def test_table_renders(self, result):
        table = result.to_table()
        assert "protocol" in table
        assert "fddi" in table

    def test_for_protocol_filter(self, result):
        fddi_points = result.for_protocol("fddi")
        assert all(p.protocol == "fddi" for p in fddi_points)
        assert len(fddi_points) == 2


class TestPhysics:
    def test_goodput_high_everywhere(self, result):
        for point in result.points:
            assert point.goodput > 0.7

    def test_pdp_overhead_grows_with_bandwidth(self, result):
        pdp = {p.bandwidth_mbps: p for p in result.for_protocol("modified-802.5")}
        assert pdp[100.0].overhead_fraction > pdp[4.0].overhead_fraction

    def test_fddi_overhead_small_at_high_bandwidth(self, result):
        fddi = {p.bandwidth_mbps: p for p in result.for_protocol("fddi")}
        assert fddi[100.0].overhead_fraction < 0.1


class TestValidation:
    def test_rejects_bad_fraction(self):
        params = PaperParameters().scaled_down(4, 2)
        with pytest.raises(ConfigurationError):
            throughput_experiment(params, sync_load_fraction=1.5)

    def test_sync_fraction_scales_load(self):
        params = PaperParameters().scaled_down(6, 2)
        light = throughput_experiment(
            params, bandwidths_mbps=(16.0,), sync_load_fraction=0.2,
            duration_s=0.3,
        )
        heavy = throughput_experiment(
            params, bandwidths_mbps=(16.0,), sync_load_fraction=0.8,
            duration_s=0.3,
        )
        for protocol in ("modified-802.5", "fddi"):
            l = light.for_protocol(protocol)[0]
            h = heavy.for_protocol(protocol)[0]
            assert h.sync_utilization > l.sync_utilization
