"""PDP ring simulator: protocol behaviour and agreement with Theorem 4.1."""

import pytest

from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.traffic import ArrivalPhasing
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(specs) -> MessageSet:
    """specs: list of (period_ms, payload_bits)."""
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period), payload_bits=payload, station=i
        )
        for i, (period, payload) in enumerate(specs)
    )


def run_sim(message_set, bandwidth_mbps=10.0, duration=0.5, **config_kwargs):
    ring = ieee_802_5_ring(mbps(bandwidth_mbps), n_stations=len(message_set))
    config = PDPSimConfig(**config_kwargs)
    return PDPRingSimulator(ring, FRAME, message_set, config).run(duration)


class TestBasicOperation:
    def test_light_load_completes_everything(self):
        report = run_sim(make_set([(50, 1000), (100, 2000)]), duration=0.5)
        # 10 + 5 messages arrive in 0.5 s.
        assert report.total_completed == 15
        assert report.deadline_safe

    def test_rejects_empty_set(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=2)
        with pytest.raises(ConfigurationError):
            PDPRingSimulator(ring, FRAME, MessageSet([]))

    def test_rejects_station_overflow(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=2)
        workload = MessageSet(
            [SynchronousStream(period_s=0.1, payload_bits=10, station=5)]
        )
        with pytest.raises(ConfigurationError):
            PDPRingSimulator(ring, FRAME, workload)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            run_sim(make_set([(50, 1000)]), duration=0.0)

    def test_async_fills_medium(self):
        """With saturating async traffic the medium never idles."""
        report = run_sim(make_set([(100, 1000)]), duration=0.2)
        occupied = report.sync_busy_time + report.async_busy_time + report.token_time
        assert occupied == pytest.approx(report.duration, rel=0.05)

    def test_without_async_medium_can_idle(self):
        report = run_sim(
            make_set([(100, 1000)]), duration=0.2, async_saturating=False
        )
        occupied = report.sync_busy_time + report.async_busy_time
        assert occupied < report.duration * 0.5
        assert report.deadline_safe


class TestPriorities:
    def test_high_priority_preempts_between_frames(self):
        """A short-period stream's response time is not held behind a long
        low-priority message beyond the single-frame blocking bound."""
        workload = make_set([(10, 512), (200, 200_000)])
        report = run_sim(workload, bandwidth_mbps=10.0, duration=1.0)
        urgent = report.streams[0]
        assert urgent.missed == 0
        ring = ieee_802_5_ring(mbps(10), n_stations=2)
        # Response <= token + own frame + ~2 blocking frames (generous).
        bound = 4 * max(FRAME.frame_time(mbps(10)), ring.theta) + ring.theta
        assert urgent.max_response <= bound

    def test_overload_starves_low_priority_first(self):
        """Under overload the RM discipline sacrifices long periods."""
        # Payload utilization 1.27 at 2 Mbps: infeasible by construction.
        workload = make_set([(10, 8000), (15, 8000), (20, 8000), (200, 160_000)])
        report = run_sim(workload, bandwidth_mbps=2.0, duration=1.0)
        assert not report.deadline_safe
        assert report.streams[0].missed == 0  # highest priority survives
        assert report.streams[3].missed > 0   # lowest priority pays


class TestVariants:
    def test_modified_no_worse_response(self):
        """The modified variant's per-message cost is never higher, so its
        completions dominate on identical workloads."""
        workload = make_set([(20, 20_000), (40, 40_000), (80, 40_000)])
        std = run_sim(workload, duration=0.8, variant=PDPVariant.STANDARD)
        mod = run_sim(workload, duration=0.8, variant=PDPVariant.MODIFIED)
        assert mod.sync_busy_time <= std.sync_busy_time + 1e-9
        assert mod.total_missed <= std.total_missed

    def test_token_walk_models_differ(self):
        workload = make_set([(20, 20_000), (40, 40_000)])
        actual = run_sim(workload, duration=0.4, token_walk=TokenWalkModel.ACTUAL)
        average = run_sim(workload, duration=0.4, token_walk=TokenWalkModel.AVERAGE)
        assert actual.token_time != pytest.approx(average.token_time, rel=1e-3)


class TestPhasing:
    def test_phasings_all_run_clean_when_light(self):
        workload = make_set([(30, 2000), (60, 4000), (90, 4000)])
        for phasing in ArrivalPhasing:
            report = run_sim(workload, duration=0.5, phasing=phasing)
            assert report.deadline_safe, phasing


class TestAgreementWithTheorem:
    @pytest.mark.parametrize("variant", list(PDPVariant))
    @pytest.mark.parametrize("bandwidth", [4.0, 16.0, 100.0])
    def test_schedulable_sets_never_miss(self, variant, bandwidth):
        """Theorem 4.1-accepted sets must be clean in adversarial sim."""
        workload = make_set(
            [(20, 3000), (40, 8000), (60, 8000), (120, 16_000)]
        )
        ring = ieee_802_5_ring(mbps(bandwidth), n_stations=len(workload))
        analysis = PDPAnalysis(ring, FRAME, variant)
        if not analysis.is_schedulable(workload):
            pytest.skip("not schedulable at this bandwidth; nothing to check")
        simulator = PDPRingSimulator(
            ring,
            FRAME,
            workload,
            PDPSimConfig(
                variant=variant,
                phasing=ArrivalPhasing.SIMULTANEOUS,
                async_saturating=True,
                token_walk=TokenWalkModel.AVERAGE,
            ),
        )
        report = simulator.run(0.6)
        assert report.deadline_safe
        assert report.total_completed > 0
