"""Saturation search: bisection correctness and the closed-form fast path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.breakdown import (
    BreakdownResult,
    breakdown_scale,
    breakdown_utilization,
)
from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.units import mbps


def make_set(payloads=(1000, 2000), periods=(0.01, 0.02)) -> MessageSet:
    return MessageSet(
        SynchronousStream(period_s=p, payload_bits=c, station=i)
        for i, (c, p) in enumerate(zip(payloads, periods))
    )


def utilization_predicate(threshold: float, bandwidth: float):
    """Schedulable iff U(M) <= threshold — a predicate with a known boundary."""
    def predicate(message_set: MessageSet) -> bool:
        return message_set.utilization(bandwidth) <= threshold
    return predicate


class TestBisection:
    def test_finds_known_boundary(self):
        message_set = make_set()
        base_u = message_set.utilization(mbps(1))
        scale, _ = breakdown_scale(
            message_set, utilization_predicate(0.5, mbps(1)), rel_tol=1e-6
        )
        assert scale == pytest.approx(0.5 / base_u, rel=1e-5)

    def test_boundary_from_above(self):
        """Start unschedulable (scale 1 above threshold) and search down."""
        message_set = make_set(payloads=(800_000, 800_000))
        base_u = message_set.utilization(mbps(1))
        assert base_u > 0.5
        scale, _ = breakdown_scale(
            message_set, utilization_predicate(0.5, mbps(1)), rel_tol=1e-6
        )
        assert scale == pytest.approx(0.5 / base_u, rel=1e-5)

    def test_always_unschedulable_returns_zero(self):
        scale, _ = breakdown_scale(make_set(), lambda m: False)
        assert scale == 0.0

    def test_never_saturating_returns_inf(self):
        scale, _ = breakdown_scale(make_set(), lambda m: True)
        assert scale == float("inf")

    def test_zero_payload_set_classified_directly(self):
        empty = make_set(payloads=(0, 0))
        scale, evals = breakdown_scale(empty, lambda m: True)
        assert scale == float("inf")
        assert evals == 1
        scale, _ = breakdown_scale(empty, lambda m: False)
        assert scale == 0.0

    def test_rejects_empty_set(self):
        with pytest.raises(MessageSetError):
            breakdown_scale(MessageSet([]), lambda m: True)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(MessageSetError):
            breakdown_scale(make_set(), lambda m: True, rel_tol=0.0)

    def test_rejects_non_predicate(self):
        with pytest.raises(MessageSetError):
            breakdown_scale(make_set(), 42)

    @settings(max_examples=60, deadline=None)
    @given(
        threshold=st.floats(min_value=0.01, max_value=5.0),
        tol=st.sampled_from([1e-3, 1e-5]),
    )
    def test_result_brackets_boundary(self, threshold, tol):
        """The returned scale is schedulable; scale/(1-tol) overshoots."""
        message_set = make_set()
        predicate = utilization_predicate(threshold, mbps(1))
        scale, _ = breakdown_scale(message_set, predicate, rel_tol=tol)
        assert predicate(message_set.scaled(scale))
        assert not predicate(message_set.scaled(scale * (1 + 2 * tol)))


class TestClosedFormPath:
    class FakeAnalysis:
        """Implements the SupportsSaturationScale protocol."""

        def saturation_scale(self, message_set: MessageSet) -> float:
            return 2.5

        def is_schedulable(self, message_set: MessageSet) -> bool:
            return True

        def __call__(self, message_set):  # pragma: no cover - never used
            raise AssertionError("closed form should bypass the call path")

    def test_uses_closed_form(self):
        scale, evals = breakdown_scale(make_set(), self.FakeAnalysis())
        assert scale == 2.5
        assert evals == 1


class TestAnalysisObjectPath:
    class PredicateOnly:
        """An analysis without a closed form: must route via is_schedulable."""

        def __init__(self, threshold, bandwidth):
            self._pred = utilization_predicate(threshold, bandwidth)
            self.calls = 0

        def is_schedulable(self, message_set):
            self.calls += 1
            return self._pred(message_set)

    def test_uses_is_schedulable(self):
        analysis = self.PredicateOnly(0.5, mbps(1))
        scale, _ = breakdown_scale(make_set(), analysis, rel_tol=1e-4)
        assert analysis.calls > 1
        assert scale > 0


class TestBreakdownUtilization:
    def test_utilization_at_boundary(self):
        message_set = make_set()
        result = breakdown_utilization(
            message_set, utilization_predicate(0.5, mbps(1)), mbps(1), rel_tol=1e-6
        )
        assert isinstance(result, BreakdownResult)
        assert result.saturated
        assert result.utilization == pytest.approx(0.5, rel=1e-4)

    def test_degenerate_zero(self):
        result = breakdown_utilization(make_set(), lambda m: False, mbps(1))
        assert result.scale == 0.0
        assert result.utilization == 0.0
        assert not result.saturated

    def test_degenerate_inf(self):
        result = breakdown_utilization(make_set(), lambda m: True, mbps(1))
        assert result.scale == float("inf")
        assert result.utilization == 0.0
        assert not result.saturated
