"""Sharded admission cluster: ring, budget, routing, pool, contention.

The load-bearing properties, mirrored from the fuzz harness
(``cluster_shard_equiv`` / ``cluster_budget_sound``):

* sharding is pure deployment work — decisions through the cluster are
  bit-identical to standalone controllers replaying each shard's local
  op subsequence;
* capacity is one global quantity — the lease ledger never grants past
  the fleet cap, and the fleet never jointly admits past it, including
  across worker death, lease reclaim, and redistribution;
* a worker death only moves that worker's hash range, and in-flight
  traffic is answered after an internal retry — no request is lost.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time

import pytest

from repro.admission import (
    AdmissionController,
    AdmissionOp,
    AdmissionPolicy,
    OpFault,
    ReleaseOutcome,
)
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.cache.store import ResultCache
from repro.cluster.budget import BudgetLedger
from repro.cluster.config import ClusterConfig, shard_name, worker_service_config
from repro.cluster.core import ClusterDirectory, InProcessCluster
from repro.cluster.hashring import (
    HashRing,
    ROUTE_POLICIES,
    choose_shard,
    stream_key,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import WorkerPool
from repro.errors import ConfigurationError
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.obs import metrics
from repro.service.client import AsyncServiceClient
from repro.service.protocol import ServiceConfig
from repro.service.server import AdmissionServer
from repro.units import mbps, milliseconds

FRAME = paper_frame_format()


def make_controller(n=8, policy=AdmissionPolicy.EXACT, utilization_cap=None):
    analysis = PDPAnalysis(
        ieee_802_5_ring(mbps(16), n_stations=n), FRAME, PDPVariant.MODIFIED
    )
    return AdmissionController(
        analysis, policy, utilization_cap=utilization_cap
    )


# -- consistent hashing ----------------------------------------------------------


class TestHashRing:
    def test_deterministic_across_instances(self):
        shards = ["w0", "w1", "w2"]
        first = HashRing(shards)
        second = HashRing(shards)
        keys = [stream_key(0.01 * (i + 1), 64.0 * i) for i in range(200)]
        assert [first.lookup(k) for k in keys] == [
            second.lookup(k) for k in keys
        ]

    def test_reasonable_balance(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts = {shard: 0 for shard in ring.shards}
        for i in range(2000):
            counts[ring.lookup(f"key-{i}")] += 1
        # Virtual nodes keep the spread coarse but bounded: no shard may
        # own more than half or fewer than 5% of uniformly drawn keys.
        assert max(counts.values()) < 1000
        assert min(counts.values()) > 100

    def test_minimal_disruption_on_removal(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        keys = [f"key-{i}" for i in range(1000)]
        owners = {key: ring.lookup(key) for key in keys}
        shrunk = ring.without("w2")
        for key in keys:
            if owners[key] != "w2":
                assert shrunk.lookup(key) == owners[key]
            else:
                assert shrunk.lookup(key) != "w2"

    def test_with_shard_restores_ownership(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"key-{i}" for i in range(500)]
        owners = {key: ring.lookup(key) for key in keys}
        rejoined = ring.without("w1").with_shard("w1")
        assert [rejoined.lookup(k) for k in keys] == [owners[k] for k in keys]

    def test_stream_key_distinguishes_float_repr(self):
        assert stream_key(0.1, 64.0) != stream_key(0.1, 640.0)
        assert stream_key(0.25, 64.0) == stream_key(0.25, 64.0)

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing([])
        with pytest.raises(ConfigurationError):
            HashRing(["w0"]).without("w0")

    def test_policies_pick_live_shards(self):
        import random

        ring = HashRing(["w0", "w1", "w2"])
        loads = {"w0": 5, "w1": 0, "w2": 3}
        rng = random.Random(7)
        for policy in ROUTE_POLICIES:
            pick = choose_shard(policy, ring, "some-key", loads, rng)
            assert pick in ring.shards
        assert (
            choose_shard("least-loaded", ring, "k", loads, rng) == "w1"
        )
        with pytest.raises(ConfigurationError):
            choose_shard("round-robin", ring, "k", loads, rng)


# -- the budget ledger -----------------------------------------------------------


class TestBudgetLedger:
    def test_even_split_is_exact(self):
        ledger = BudgetLedger(0.9)
        targets = ledger.split_evenly(["w0", "w1", "w2"])
        assert targets == {"w0": 0.3, "w1": 0.3, "w2": 0.3}
        assert ledger.granted_total() == pytest.approx(0.9)
        assert ledger.sound()

    def test_grow_clips_to_headroom(self):
        ledger = BudgetLedger(1.0)
        assert ledger.grant("w0", 0.7) == 0.7
        # Only 0.3 of headroom is left; a 0.6 ask is clipped.
        assert ledger.grant("w1", 0.6) == pytest.approx(0.3)
        assert ledger.sound()

    def test_two_phase_shrink_charges_until_ack(self):
        ledger = BudgetLedger(1.0)
        ledger.grant("w0", 0.8)
        ledger.grant("w0", 0.2)  # shrink: target drops, charge stays
        lease = ledger.lease_of("w0")
        assert lease.target == pytest.approx(0.2)
        assert lease.granted == pytest.approx(0.8)
        assert not lease.settled
        # The freed budget is NOT re-grantable yet.
        assert ledger.grant("w1", 0.5) == pytest.approx(0.2)
        ledger.acknowledge("w0", 0.2)
        assert ledger.lease_of("w0").settled
        # Now it is.
        assert ledger.grant("w1", 0.5) == pytest.approx(0.5)
        assert ledger.sound()

    def test_stale_ack_cannot_shed_a_later_grow(self):
        ledger = BudgetLedger(1.0)
        ledger.grant("w0", 0.3)
        ledger.acknowledge("w0", 0.3)
        ledger.grant("w0", 0.6)  # grow charged immediately
        ledger.acknowledge("w0", 0.3)  # stale ack from before the grow
        assert ledger.lease_of("w0").granted == pytest.approx(0.6)

    def test_reclaim_frees_the_whole_lease(self):
        ledger = BudgetLedger(0.9)
        ledger.split_evenly(["w0", "w1", "w2"])
        assert ledger.reclaim("w1") == pytest.approx(0.3)
        assert ledger.lease_of("w1") is None
        assert ledger.granted_total() == pytest.approx(0.6)
        targets = ledger.split_evenly(["w0", "w2"])
        for shard in ("w0", "w2"):
            ledger.acknowledge(shard, targets[shard])
        assert ledger.granted_total() == pytest.approx(0.9)
        assert ledger.sound()

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetLedger(-0.1)
        with pytest.raises(ConfigurationError):
            BudgetLedger(1.0).grant("w0", -0.2)


# -- cluster config --------------------------------------------------------------


class TestClusterConfig:
    def test_shard_ids_and_worker_config(self):
        config = ClusterConfig(n_workers=3, utilization_cap=0.6)
        assert config.shard_ids() == ("w0", "w1", "w2")
        assert shard_name(7) == "w7"
        service = worker_service_config(config, "w1", 0.2)
        assert service.shard_id == "w1"
        assert service.port == 0
        assert service.utilization_cap == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_workers=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(route_policy="round-robin")
        with pytest.raises(ConfigurationError):
            ClusterConfig(utilization_cap=-1.0)


# -- the budget gate on the controller -------------------------------------------


class TestBudgetGate:
    def test_budget_rejection_before_schedulability(self):
        controller = make_controller(utilization_cap=0.02)
        first = controller.request(milliseconds(50), 8_500)
        assert first.admitted
        denial = controller.request(milliseconds(50), 8_500)
        assert not denial.admitted
        assert denial.tested_by == "budget"
        assert denial.utilization_after > 0.02

    def test_zero_cap_admits_nothing(self):
        controller = make_controller(utilization_cap=0.0)
        denial = controller.request(milliseconds(50), 64)
        assert not denial.admitted
        assert denial.tested_by == "budget"

    def test_cap_can_be_raised_live(self):
        controller = make_controller(utilization_cap=0.0)
        assert not controller.request(milliseconds(50), 8_000).admitted
        previous = controller.set_utilization_cap(0.5)
        assert previous == 0.0
        assert controller.request(milliseconds(50), 8_000).admitted


# -- in-process cluster: equivalence and id translation --------------------------


def op_stream(seed: int, n: int = 40):
    import random

    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.4:
            ops.append(
                AdmissionOp.admit(
                    rng.choice([0.02, 0.04, 0.08, 0.16]),
                    float(rng.randrange(64, 4096, 64)),
                )
            )
        elif roll < 0.75:
            ops.append(
                AdmissionOp.check(
                    rng.choice([0.02, 0.04, 0.08]),
                    float(rng.randrange(64, 4096, 64)),
                )
            )
        else:
            ops.append(
                AdmissionOp.release(
                    rng.randrange(1, 30), idempotent=rng.random() < 0.5
                )
            )
    return ops


class TestInProcessCluster:
    def test_shard_local_replay_is_bit_identical(self):
        shard_ids = ["w0", "w1", "w2"]
        cluster = InProcessCluster(
            shard_ids, make_controller, utilization_cap=0.6, seed=3
        )
        for op in op_stream(11):
            cluster.dispatch(op)
        for shard in shard_ids:
            lease = cluster.ledger.lease_of(shard)
            oracle = make_controller(utilization_cap=lease.target)
            replayed = oracle.process_batch(list(cluster.histories[shard]))
            assert len(replayed) == len(cluster.histories[shard])
            # The worker and the standalone oracle saw identical local
            # sequences, so their end states must agree exactly.
            worker = cluster.workers[shard]
            assert worker.admitted_count == oracle.admitted_count
            assert worker.utilization() == oracle.utilization()

    def test_fleet_ids_are_unique_and_translate(self):
        cluster = InProcessCluster(
            ["w0", "w1"], make_controller, utilization_cap=0.8
        )
        fleet_ids = []
        for period in (0.02, 0.04, 0.08, 0.16):
            result = cluster.dispatch(AdmissionOp.admit(period, 512.0))
            assert result.admitted
            fleet_ids.append(result.stream_id)
        assert len(set(fleet_ids)) == len(fleet_ids)
        outcome = cluster.dispatch(AdmissionOp.release(fleet_ids[0]))
        assert isinstance(outcome, ReleaseOutcome)
        assert outcome.released and outcome.stream_id == fleet_ids[0]
        again = cluster.dispatch(AdmissionOp.release(fleet_ids[0]))
        assert isinstance(again, OpFault)
        assert "unknown or already-released" in again.detail

    def test_unknown_fleet_id_idempotent_release(self):
        cluster = InProcessCluster(["w0", "w1"], make_controller)
        outcome = cluster.dispatch(AdmissionOp.release(999, idempotent=True))
        assert isinstance(outcome, ReleaseOutcome)
        assert not outcome.released

    def test_fleet_never_exceeds_global_cap(self):
        cap = 0.05
        cluster = InProcessCluster(
            ["w0", "w1", "w2"], make_controller, utilization_cap=cap
        )
        for op in op_stream(23, n=60):
            cluster.dispatch(op)
            assert cluster.ledger.sound()
            assert cluster.fleet_utilization() <= cap + 1e-9

    def test_kill_shard_reclaims_and_redistributes(self):
        cap = 0.3
        cluster = InProcessCluster(
            ["w0", "w1", "w2"], make_controller, utilization_cap=cap
        )
        admitted = cluster.dispatch(AdmissionOp.admit(0.02, 512.0))
        assert admitted.admitted
        owner, _ = cluster.directory.owner_of(admitted.stream_id)
        dead = cluster.kill_shard(owner)
        assert admitted.stream_id in dead
        assert cluster.ledger.lease_of(owner) is None
        assert cluster.ledger.granted_total() <= cap + 1e-9
        survivors = cluster.directory.shard_ids
        assert owner not in survivors and len(survivors) == 2
        # Each survivor's lease grew to cap/2.
        for shard in survivors:
            assert cluster.ledger.lease_of(shard).granted == pytest.approx(
                cap / 2
            )
        # Releasing the dead worker's stream answers unknown-stream.
        outcome = cluster.dispatch(
            AdmissionOp.release(admitted.stream_id, idempotent=True)
        )
        assert not outcome.released

    def test_directory_refuses_to_drop_last_shard(self):
        directory = ClusterDirectory(["w0"])
        with pytest.raises(ConfigurationError):
            directory.drop_shard("w0")


# -- the router over real sockets ------------------------------------------------


def _worker_config(shard_id: str, cap: float) -> ServiceConfig:
    return ServiceConfig(
        port=0, shard_id=shard_id, utilization_cap=cap, batch_window_s=0.0
    )


class TestClusterRouter:
    def run_router(self, coro_fn, n_workers=2, cap=0.6, policy="hash"):
        """Start n in-process servers behind a router; run the probe."""

        async def main():
            servers = []
            for i in range(n_workers):
                server = AdmissionServer(
                    _worker_config(shard_name(i), cap / n_workers)
                )
                await server.start()
                servers.append(server)
            config = ClusterConfig(
                n_workers=n_workers,
                route_policy=policy,
                utilization_cap=cap,
                service=ServiceConfig(port=0),
            )
            router = ClusterRouter(config, pool=None)
            for i, server in enumerate(servers):
                router.add_backend(shard_name(i), "127.0.0.1", server.port)
            await router.start()
            try:
                async with AsyncServiceClient(
                    "127.0.0.1", router.port
                ) as client:
                    return await coro_fn(router, servers, client)
            finally:
                await router.drain_and_stop()
                for server in servers:
                    await server.drain_and_stop()

        return asyncio.run(main())

    def test_routes_and_translates_ids(self):
        async def probe(router, servers, client):
            ids, shards = [], set()
            for i in range(10):
                status, payload, headers = await client.request(
                    "POST",
                    "/v1/admit",
                    {"period_s": 0.02 + 0.005 * i, "payload_bits": 512.0},
                )
                assert status == 200
                shards.add(client.last_headers.get("x-shard-id"))
                if payload["admitted"]:
                    ids.append(payload["stream_id"])
            assert len(ids) == len(set(ids))
            assert len(shards) == 2  # hash spreads this catalogue
            status, payload, _ = await client.request(
                "POST", "/v1/release", {"stream_id": ids[0]}
            )
            assert status == 200 and payload["released"]
            status, payload, _ = await client.request(
                "POST", "/v1/release", {"stream_id": ids[0]}
            )
            assert status == 404
            assert "unknown or already-released" in payload["detail"]
            return True

        assert self.run_router(probe)

    def test_fleet_healthz_aggregates_shards(self):
        async def probe(router, servers, client):
            status, doc, _ = await client.request("GET", "/healthz", None)
            assert status == 200
            assert doc["status"] == "ok"
            assert doc["workers"] == 2 and doc["reachable"] == 2
            assert set(doc["shards"]) == {"w0", "w1"}
            for shard, shard_doc in doc["shards"].items():
                assert shard_doc["shard_id"] == shard
                assert shard_doc["worker_pid"] == os.getpid()
            assert doc["fleet"]["budget_sound"] is True
            assert doc["fleet"]["utilization_cap"] == pytest.approx(0.6)
            return True

        assert self.run_router(probe)

    def test_fleet_metrics_merge_and_labels(self):
        async def probe(router, servers, client):
            await client.request(
                "POST", "/v1/check", {"period_s": 0.02, "payload_bits": 512.0}
            )
            status, doc, _ = await client.request("GET", "/metrics", None)
            assert status == 200
            assert set(doc["shards"]) == {"w0", "w1"}
            raw = await client.request(
                "GET", "/metrics?format=prometheus", None, decode=False
            )
            text = raw[1].decode("utf-8")
            assert 'shard_id="w0"' in text or 'shard_id="w1"' in text
            assert 'shard_id="router"' in text
            type_lines = [
                line for line in text.splitlines()
                if line.startswith("# TYPE ")
            ]
            assert len(type_lines) == len(set(type_lines))
            return True

        assert self.run_router(probe)

    def test_worker_death_reroutes_and_loses_no_request(self):
        async def probe(router, servers, client):
            admitted = []
            for i in range(8):
                status, payload, _ = await client.request(
                    "POST",
                    "/v1/admit",
                    {"period_s": 0.02 + 0.01 * i, "payload_bits": 256.0},
                )
                assert status == 200
                if payload["admitted"]:
                    admitted.append(payload["stream_id"])
            # Hard-stop one backend out from under the router.
            victim = "w0"
            await servers[0].drain_and_stop()
            answered = 0
            for i in range(10):
                status, payload, _ = await client.request(
                    "POST",
                    "/v1/check",
                    {"period_s": 0.03 + 0.01 * i, "payload_bits": 128.0},
                )
                # Every request gets a definite answer: the router
                # retries against the survivor after the rebalance.
                assert status == 200
                answered += 1
            assert answered == 10
            assert victim not in router.backends
            assert router.directory.shard_ids == ("w1",)
            # Releases of the dead worker's streams answer idempotently.
            for fleet_id in admitted:
                status, payload, _ = await client.request(
                    "POST",
                    "/v1/release",
                    {"stream_id": fleet_id, "idempotent": True},
                )
                assert status == 200
            return True

        assert self.run_router(probe)

    def test_respawned_worker_receives_its_lease(self):
        """A fresh (leaseless) respawn must end up enforcing its share.

        Regression: grant() charges grows immediately, so right after
        the router re-levels, the *ledger* already reads settled for
        the respawned shard — the push must key on what the worker
        acknowledged, not on the ledger arithmetic, or the respawn
        stays at cap 0 forever and rejects everything on budget.
        """

        async def probe(router, servers, client):
            # Supervisor-confirmed death of w0: drop + reclaim.
            router._drop_backend("w0")
            router.ledger.reclaim("w0")
            await router.reconcile_leases()  # survivor grows to the cap
            await servers[0].drain_and_stop()
            fresh = AdmissionServer(_worker_config("w0", 0.0))
            await fresh.start()
            try:
                router.add_backend("w0", "127.0.0.1", fresh.port)
                # Beat 1 shrinks the survivor; beat 2 grows the respawn
                # into the freed headroom and pushes the lease.
                await router.reconcile_leases()
                await router.reconcile_leases()
                assert fresh.controller.utilization_cap == pytest.approx(
                    0.3
                )
                assert router.ledger.sound()
                assert router.ledger.granted_total() == pytest.approx(0.6)
            finally:
                await fresh.drain_and_stop()
            return True

        assert self.run_router(probe)

    def test_draining_router_rejects_with_503(self):
        async def probe(router, servers, client):
            router._draining = True
            status, payload, _ = await client.request(
                "POST", "/v1/check", {"period_s": 0.02, "payload_bits": 64.0}
            )
            router._draining = False
            assert status == 503 and payload["error"] == "Draining"
            return True

        assert self.run_router(probe)

    def test_unknown_endpoint_404(self):
        async def probe(router, servers, client):
            status, payload, _ = await client.request(
                "GET", "/v1/traces", None
            )
            assert status == 404
            return True

        assert self.run_router(probe)


# -- the worker /v1/lease endpoint ------------------------------------------------


class TestLeaseEndpoint:
    def test_lease_get_and_post_roundtrip(self):
        async def main():
            server = AdmissionServer(_worker_config("w0", 0.25))
            await server.start()
            try:
                async with AsyncServiceClient(
                    "127.0.0.1", server.port
                ) as client:
                    info = await client.lease()
                    assert info["utilization_cap"] == pytest.approx(0.25)
                    acked = await client.lease(utilization_cap=0.1)
                    assert acked["previous_cap"] == pytest.approx(0.25)
                    assert acked["utilization_cap"] == pytest.approx(0.1)
                    # The worker now enforces the lower lease: a stream
                    # demanding ~7.5 of utilization cannot fit under 0.1.
                    decision = await client.admit(0.0005, 60_000.0)
                    assert not decision["admitted"]
                    health = await client.healthz()
                    assert health["shard_id"] == "w0"
                    assert health["worker_pid"] == os.getpid()
                    assert health["utilization_cap"] == pytest.approx(0.1)
                    assert "cache_errors" in health
            finally:
                await server.drain_and_stop()
            return True

        assert asyncio.run(main())


# -- the subprocess pool ---------------------------------------------------------


class TestWorkerPool:
    def test_spawn_kill_restart_drain(self, tmp_path):
        config = ClusterConfig(
            n_workers=2,
            utilization_cap=0.6,
            runtime_dir=str(tmp_path),
            restart_backoff_s=0.05,
            service=ServiceConfig(port=0, drain_grace_s=1.0),
        )
        pool = WorkerPool(config)
        pool.start(timeout_s=30)
        try:
            running = pool.running()
            assert set(running) == {"w0", "w1"}
            ports = {port for _, port in running.values()}
            assert len(ports) == 2
            # SIGKILL one worker; poll must observe the death and, after
            # the backoff, respawn it leaseless.
            pool.kill("w0", hard=True)
            died = started = False
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                for event in pool.poll():
                    died = died or event[:2] == ("died", "w0")
                    started = started or event[:2] == ("started", "w0")
                if started:
                    break
                time.sleep(0.05)
            assert died and started
            new_pid, new_port = pool.running()["w0"]
            assert new_pid != running["w0"][0]
            assert pool.workers["w0"].initial_cap == 0.0
        finally:
            pool.drain(grace_s=5.0)
        assert all(
            handle.process.poll() is not None
            for handle in pool.workers.values()
        )


# -- disk-cache contention across processes --------------------------------------


def _hammer_cache(directory: str, key: str, worker_index: int) -> None:
    cache = ResultCache(directory=directory)
    for round_number in range(200):
        cache.put(key, {"verdict": True, "round": round_number}, "admission")
        cache.get(key, "admission")


class TestCacheContention:
    def test_concurrent_same_key_writes_never_corrupt(self, tmp_path):
        """Two processes hammering one prefix key must never corrupt it.

        This is the cluster's shared-cache regime: two workers computing
        the same prefix-keyed verdict write the same path concurrently.
        Atomic temp-file + rename means a reader sees either the old or
        the new complete record — never a torn one.
        """
        directory = str(tmp_path)
        key = "ab" + "0" * 14  # shared prefix shard ab/
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer_cache, args=(directory, key, i))
            for i in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        fresh = ResultCache(directory=directory)
        payload = fresh.get(key, "admission")
        assert isinstance(payload, dict) and payload["verdict"] is True
        # And the on-disk record is a complete, valid JSON document.
        path = fresh._path(key, "admission")
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["key"] == key

    def test_corrupt_entry_counts_and_recovers(self, tmp_path):
        metrics.reset()
        cache = ResultCache(directory=str(tmp_path))
        key = "cd" + "1" * 14
        cache.put(key, {"verdict": False}, "admission")
        path = cache._path(key, "admission")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"key": "cd111", "payl')  # torn write
        fresh = ResultCache(directory=str(tmp_path))
        assert fresh.get(key, "admission") is None  # miss, not garbage
        snap = metrics.snapshot()
        assert snap["cache.admission.errors"]["value"] == 1.0
        assert not os.path.exists(path)  # dropped for recompute
