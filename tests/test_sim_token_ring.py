"""Shared ring plumbing: geometry, message records, station queues."""

import pytest

from repro.errors import SimulationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring
from repro.sim.token_ring import (
    PendingMessage,
    RingGeometry,
    StationQueue,
    build_station_queues,
)
from repro.units import mbps


@pytest.fixture
def geometry() -> RingGeometry:
    return RingGeometry(ieee_802_5_ring(mbps(10), n_stations=10))


class TestGeometry:
    def test_hops_downstream(self, geometry):
        assert geometry.hops(2, 5) == 3

    def test_hops_wrap_around(self, geometry):
        assert geometry.hops(8, 2) == 4

    def test_hops_same_station(self, geometry):
        assert geometry.hops(3, 3) == 0

    def test_hops_range_check(self, geometry):
        with pytest.raises(SimulationError):
            geometry.hops(0, 10)

    def test_zero_hop_walk_is_free(self, geometry):
        assert geometry.token_walk_time(4, 4) == 0.0

    def test_full_lap_costs_theta(self, geometry):
        """n-1 hops + 1 hop = full lap; walking to the predecessor and one
        more hop should sum to Θ (one walk + one token emission each)."""
        ring = geometry.ring
        lap_via_hops = geometry.token_walk_time(0, 9) + geometry.token_walk_time(9, 0)
        # Two journeys pay the token emission twice; one full lap pays once.
        assert lap_via_hops == pytest.approx(ring.walk_time + 2 * ring.token_time)

    def test_walk_time_proportional_to_hops(self, geometry):
        one = geometry.token_walk_time(0, 1)
        three = geometry.token_walk_time(0, 3)
        ring = geometry.ring
        assert three - one == pytest.approx(2 * ring.walk_time / 10)


class TestPendingMessage:
    def make(self, payload=1000.0) -> PendingMessage:
        return PendingMessage(
            stream_index=0,
            station=2,
            arrival_time=1.0,
            deadline=1.5,
            payload_bits=payload,
            remaining_bits=payload,
            priority=3,
        )

    def test_not_complete_initially(self):
        assert not self.make().complete

    def test_consume_partial(self):
        message = self.make()
        message.consume(400)
        assert message.remaining_bits == 600
        assert not message.complete

    def test_consume_to_completion(self):
        message = self.make()
        message.consume(1000)
        assert message.complete

    def test_consume_clamps_at_zero(self):
        message = self.make()
        message.consume(5000)
        assert message.remaining_bits == 0.0

    def test_consume_rejects_negative(self):
        with pytest.raises(SimulationError):
            self.make().consume(-1)

    def test_zero_payload_complete(self):
        assert self.make(payload=0.0).complete


class TestStationQueue:
    def test_push_and_head(self):
        queue = StationQueue(station=2)
        message = PendingMessage(0, 2, 0.0, 1.0, 100, 100, 0)
        queue.push(message)
        assert queue.head() is message
        assert len(queue) == 1

    def test_push_wrong_station_rejected(self):
        queue = StationQueue(station=2)
        with pytest.raises(SimulationError):
            queue.push(PendingMessage(0, 3, 0.0, 1.0, 100, 100, 0))

    def test_fifo_order(self):
        queue = StationQueue(station=0)
        first = PendingMessage(0, 0, 0.0, 1.0, 100, 100, 0)
        second = PendingMessage(0, 0, 0.5, 1.5, 100, 100, 0)
        queue.push(first)
        queue.push(second)
        assert queue.head() is first

    def test_pop_complete_only_when_done(self):
        queue = StationQueue(station=0)
        message = PendingMessage(0, 0, 0.0, 1.0, 100, 100, 0)
        queue.push(message)
        assert queue.pop_complete() is None
        message.consume(100)
        assert queue.pop_complete() is message
        assert len(queue) == 0

    def test_backlog(self):
        queue = StationQueue(station=0)
        queue.push(PendingMessage(0, 0, 0.0, 1.0, 100, 100, 0))
        queue.push(PendingMessage(0, 0, 0.0, 1.0, 200, 150, 0))
        assert queue.backlog_bits == 250

    def test_empty_queue_head_none(self):
        assert StationQueue(station=0).head() is None


class TestBuildQueues:
    def test_one_queue_per_station(self):
        message_set = MessageSet(
            [SynchronousStream(period_s=0.1, payload_bits=10, station=1)]
        )
        queues = build_station_queues(message_set, 4)
        assert [q.station for q in queues] == [0, 1, 2, 3]

    def test_rejects_station_overflow(self):
        message_set = MessageSet(
            [SynchronousStream(period_s=0.1, payload_bits=10, station=9)]
        )
        with pytest.raises(SimulationError):
            build_station_queues(message_set, 4)
