"""Tracing primitives: spans, fan-out groups, sampling, sinks.

The load-bearing properties: sampling is deterministic (systematic, not
random — the ``admission_tracing_equiv`` fuzz property depends on being
able to reason about which requests are traced), the no-trace path
allocates nothing, and a :class:`SpanGroup` child is one *shared* node
(same ``span_id``) in every member trace — the marker for amortized
batch work.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.errors import ConfigurationError
from repro.obs import tracing
from repro.obs.tracing import TRACE_SCHEMA_VERSION, Span, SpanGroup, Tracer


class TestSpan:
    def test_child_nesting_and_serialization(self):
        root = Span("request", {"method": "POST"}, trace_id="t1")
        child = root.child("batch", batch_size=3)
        grand = child.child("engine")
        grand.duration_s = 0.25

        doc = root.trace_dict()
        assert doc["schema_version"] == TRACE_SCHEMA_VERSION
        assert doc["trace_id"] == "t1"
        assert doc["name"] == "request"
        assert doc["attrs"] == {"method": "POST"}
        (batch,) = doc["spans"]
        assert batch["name"] == "batch"
        assert batch["attrs"] == {"batch_size": 3}
        (engine,) = batch["spans"]
        assert engine["duration_s"] == 0.25
        assert "spans" not in engine  # leaf spans stay flat
        assert json.loads(json.dumps(doc)) == doc

    def test_span_ids_unique_within_a_trace(self):
        root = Span("request")
        ids = {root.span_id}
        for index in range(5):
            ids.add(root.child(f"c{index}").span_id)
        assert len(ids) == 6

    def test_add_accumulates_numeric_attributes(self):
        span = Span("cache")
        span.add({"cache_hits": 1})
        span.add({"cache_hits": 2, "cache_misses": 1})
        assert span.attrs == {"cache_hits": 3, "cache_misses": 1}


class TestSpanGroup:
    def test_child_is_one_shared_node_across_members(self):
        roots = [Span("request", trace_id=f"t{i}") for i in range(3)]
        group = SpanGroup([root.child("batch") for root in roots])
        engine = group.child("engine", candidates=3)
        span_ids = {
            root.children[0].children[0].span_id for root in roots
        }
        assert span_ids == {engine.span_id}

    def test_add_reaches_every_member(self):
        members = [Span("batch"), Span("batch")]
        SpanGroup(members).add({"levels_reused": 4})
        assert all(m.attrs == {"levels_reused": 4} for m in members)


class TestTracerSampling:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(0.0)
        assert [tracer.begin("request") for _ in range(8)] == [None] * 8

    def test_rate_one_always_samples(self):
        tracer = Tracer(1.0)
        spans = [tracer.begin("request") for _ in range(8)]
        assert all(span is not None for span in spans)
        assert len({span.trace_id for span in spans}) == 8

    def test_rate_half_is_systematic_every_second_request(self):
        tracer = Tracer(0.5)
        pattern = [tracer.begin("request") is not None for _ in range(8)]
        assert pattern == [False, True] * 4

    def test_fractional_rate_hits_exact_long_run_fraction(self):
        tracer = Tracer(0.25)
        sampled = sum(
            tracer.begin("request") is not None for _ in range(400)
        )
        assert sampled == 100

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            Tracer(1.5)
        with pytest.raises(ConfigurationError):
            Tracer(-0.1)
        with pytest.raises(ConfigurationError):
            Tracer(1.0, buffer_size=0)
        with pytest.raises(ConfigurationError):
            Tracer(1.0, slow_threshold_s=-1.0)


class TestTracerSinks:
    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(1.0, buffer_size=3)
        for index in range(5):
            span = tracer.begin("request", index=index)
            tracer.finish(span)
        recent = tracer.recent()
        assert [t["attrs"]["index"] for t in recent] == [2, 3, 4]
        assert [t["attrs"]["index"] for t in tracer.recent(limit=2)] == [3, 4]

    def test_finish_unsampled_is_a_noop(self):
        tracer = Tracer(0.0)
        tracer.finish(None)
        assert tracer.recent() == []

    def test_finish_honors_explicit_duration(self):
        tracer = Tracer(1.0)
        span = tracer.begin("request")
        tracer.finish(span, duration_s=0.125)
        assert tracer.recent()[-1]["duration_s"] == 0.125

    def test_jsonl_sink_appends_one_line_per_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(1.0, jsonl_path=str(path))
        for index in range(3):
            tracer.finish(tracer.begin("request", index=index))
        tracer.close()
        tracer.close()  # idempotent
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        documents = [json.loads(line) for line in lines]
        assert [d["attrs"]["index"] for d in documents] == [0, 1, 2]
        assert all(
            d["schema_version"] == TRACE_SCHEMA_VERSION for d in documents
        )

    def test_slow_requests_log_their_span_tree(self, caplog):
        tracer = Tracer(1.0, slow_threshold_s=0.001)
        span = tracer.begin("request")
        span.child("batch")
        with caplog.at_level(logging.WARNING, logger="repro.obs.tracing"):
            tracer.finish(span, duration_s=0.5)
            tracer.finish(tracer.begin("request"), duration_s=0.0001)
        slow = [r for r in caplog.records if "slow request" in r.message]
        assert len(slow) == 1
        assert slow[0].trace_id == span.trace_id
        assert slow[0].trace["spans"][0]["name"] == "batch"


class TestContextPropagation:
    def test_child_span_is_noop_when_untraced(self):
        assert tracing.current() is None
        with tracing.child_span("engine", candidates=4) as span:
            assert span is None
        tracing.annotate(op="check")  # must not raise
        tracing.add(cache_hits=1)

    def test_child_span_nests_under_installed_root(self):
        root = Span("request", trace_id="t1")
        token = tracing.use(root)
        try:
            with tracing.child_span("engine", candidates=2) as engine:
                assert tracing.current() is engine
                tracing.annotate(policy="exact")
                tracing.add(cache_hits=1)
                tracing.add(cache_hits=1)
                with tracing.child_span("cache"):
                    pass
            assert tracing.current() is root
        finally:
            tracing.release(token)
        assert tracing.current() is None
        assert engine.attrs == {
            "candidates": 2,
            "policy": "exact",
            "cache_hits": 2,
        }
        assert engine.duration_s > 0.0
        assert [c.name for c in root.children] == ["engine"]
        assert [c.name for c in engine.children] == ["cache"]

    def test_group_child_span_shares_one_node(self):
        members = [Span("batch"), Span("batch")]
        token = tracing.use(SpanGroup(members))
        try:
            with tracing.child_span("engine") as engine:
                tracing.add(levels_computed=3)
        finally:
            tracing.release(token)
        assert members[0].children == [engine]
        assert members[1].children == [engine]
        # the add() landed on the shared engine span, once, not per member
        assert engine.attrs == {"levels_computed": 3}
