"""Traffic generation: phasings, priorities, arrival streams."""

import pytest

from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.sim.traffic import ArrivalPhasing, SynchronousTraffic


@pytest.fixture
def workload() -> MessageSet:
    return MessageSet(
        [
            SynchronousStream(period_s=0.030, payload_bits=100, station=0),
            SynchronousStream(period_s=0.010, payload_bits=200, station=1),
            SynchronousStream(period_s=0.020, payload_bits=300, station=2),
        ]
    )


class TestOffsets:
    def test_simultaneous_all_zero(self, workload):
        traffic = SynchronousTraffic(workload, ArrivalPhasing.SIMULTANEOUS)
        assert traffic.offsets() == [0.0, 0.0, 0.0]

    def test_staggered_spread(self, workload):
        traffic = SynchronousTraffic(workload, ArrivalPhasing.STAGGERED)
        offsets = traffic.offsets()
        assert offsets[0] == 0.0
        assert all(0 <= o < p for o, p in zip(offsets, workload.periods))

    def test_random_within_period(self, workload):
        traffic = SynchronousTraffic(workload, ArrivalPhasing.RANDOM, seed=3)
        offsets = traffic.offsets()
        assert all(0 <= o < p for o, p in zip(offsets, workload.periods))

    def test_random_deterministic_per_seed(self, workload):
        a = SynchronousTraffic(workload, ArrivalPhasing.RANDOM, seed=3).offsets()
        b = SynchronousTraffic(workload, ArrivalPhasing.RANDOM, seed=3).offsets()
        assert a == b


class TestPriorities:
    def test_rm_order(self, workload):
        # Periods (30, 10, 20) ms -> priorities (2, 0, 1).
        traffic = SynchronousTraffic(workload)
        assert traffic.priorities() == [2, 0, 1]

    def test_unique(self, workload):
        priorities = SynchronousTraffic(workload).priorities()
        assert sorted(priorities) == [0, 1, 2]

    def test_ties_broken_deterministically(self):
        tied = MessageSet(
            [
                SynchronousStream(period_s=0.01, payload_bits=100, station=0),
                SynchronousStream(period_s=0.01, payload_bits=100, station=1),
            ]
        )
        assert SynchronousTraffic(tied).priorities() == [0, 1]


class TestArrivals:
    def test_counts_match_periods(self, workload):
        traffic = SynchronousTraffic(workload)
        arrivals = traffic.arrivals_until(0.060)
        by_stream = [0, 0, 0]
        for a in arrivals:
            by_stream[a.stream_index] += 1
        assert by_stream == [2, 6, 3]

    def test_sorted_by_time(self, workload):
        arrivals = SynchronousTraffic(workload).arrivals_until(0.1)
        times = [a.arrival_time for a in arrivals]
        assert times == sorted(times)

    def test_deadlines_are_period_ends(self, workload):
        arrivals = SynchronousTraffic(workload).arrivals_until(0.1)
        for a in arrivals:
            period = workload[a.stream_index].period_s
            assert a.deadline == pytest.approx(a.arrival_time + period)

    def test_priority_carried(self, workload):
        arrivals = SynchronousTraffic(workload).arrivals_until(0.02)
        priorities = SynchronousTraffic(workload).priorities()
        for a in arrivals:
            assert a.priority == priorities[a.stream_index]

    def test_rejects_negative_horizon(self, workload):
        with pytest.raises(ConfigurationError):
            SynchronousTraffic(workload).arrivals_until(-1.0)

    def test_empty_horizon(self, workload):
        assert SynchronousTraffic(workload).arrivals_until(0.0) == []

    def test_payload_initialized(self, workload):
        arrivals = SynchronousTraffic(workload).arrivals_until(0.01)
        for a in arrivals:
            assert a.remaining_bits == a.payload_bits
