"""Protocol-faithful 802.5 simulator: levels, stacking, quantization."""

import pytest

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.sim.ieee8025 import (
    IEEE8025Config,
    IEEE8025Simulator,
    assign_service_levels,
)
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(specs) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period), payload_bits=payload, station=i
        )
        for i, (period, payload) in enumerate(specs)
    )


def run_sim(message_set, bandwidth_mbps=10.0, duration=0.5, **config_kwargs):
    ring = ieee_802_5_ring(mbps(bandwidth_mbps), n_stations=len(message_set))
    simulator = IEEE8025Simulator(
        ring, FRAME, message_set, IEEE8025Config(**config_kwargs)
    )
    return simulator.run(duration)


class TestServiceLevels:
    def test_distinct_when_few_streams(self):
        workload = make_set([(20, 100), (40, 100), (60, 100)])
        levels = assign_service_levels(workload, 8)
        assert levels == [7, 6, 5]

    def test_quantized_when_many_streams(self):
        workload = make_set([(20 + 5 * i, 100) for i in range(14)])
        levels = assign_service_levels(workload, 8)
        assert max(levels) == 7
        assert min(levels) >= 1  # level 0 reserved for async
        assert len(set(levels)) == 7  # 14 streams into 7 sync levels

    def test_levels_respect_rm_order(self):
        workload = make_set([(60, 100), (20, 100), (40, 100)])
        levels = assign_service_levels(workload, 8)
        # Shortest period (stream 1) gets the highest level.
        assert levels[1] > levels[2] > levels[0]

    def test_empty_set(self):
        assert assign_service_levels(MessageSet([]), 8) == []

    def test_rejects_too_few_levels(self):
        workload = make_set([(20, 100)])
        with pytest.raises(ConfigurationError):
            assign_service_levels(workload, 1)


class TestBasicOperation:
    def test_light_load_completes(self):
        report = run_sim(make_set([(50, 1000), (100, 2000)]), duration=0.5)
        assert report.total_completed == 15
        assert report.deadline_safe

    def test_rejects_empty_set(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=2)
        with pytest.raises(ConfigurationError):
            IEEE8025Simulator(ring, FRAME, MessageSet([]))

    def test_rejects_nonpositive_duration(self):
        workload = make_set([(50, 1000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=1)
        simulator = IEEE8025Simulator(ring, FRAME, workload)
        with pytest.raises(ConfigurationError):
            simulator.run(0.0)

    def test_medium_fully_used_with_async(self):
        report = run_sim(make_set([(100, 1000)]), duration=0.3)
        occupied = report.sync_busy_time + report.async_busy_time + report.token_time
        assert occupied == pytest.approx(report.duration, rel=0.05)

    def test_idle_parking_without_async(self):
        report = run_sim(
            make_set([(100, 1000)]), duration=0.3, async_saturating=False
        )
        assert report.deadline_safe
        assert report.async_busy_time == 0.0
        # The ring mostly idles: busy time well below wall clock.
        busy = report.sync_busy_time + report.token_time
        assert busy < 0.3 * report.duration


class TestPriorityMechanism:
    def test_urgent_stream_not_starved(self):
        """A 10 ms control loop sharing the ring with a huge low-priority
        transfer keeps meeting deadlines via the reservation field."""
        workload = make_set([(10, 512), (200, 150_000)])
        report = run_sim(workload, duration=1.0)
        assert report.streams[0].missed == 0

    def test_priority_unwind_lets_async_through(self):
        """After sync bursts, stacking stations must lower the token
        priority again or asynchronous traffic would starve forever."""
        workload = make_set([(30, 8000), (50, 8000)])
        report = run_sim(workload, duration=1.0)
        assert report.async_utilization > 0.3

    def test_overload_starves_lowest_level_first(self):
        workload = make_set([(10, 8000), (15, 8000), (20, 8000), (200, 160_000)])
        report = run_sim(workload, bandwidth_mbps=2.0, duration=1.0)
        assert not report.deadline_safe
        assert report.streams[0].missed == 0
        assert report.streams[3].missed > 0

    def test_modified_no_worse(self):
        workload = make_set([(20, 20_000), (40, 40_000), (80, 40_000)])
        std = run_sim(workload, duration=0.8, variant=PDPVariant.STANDARD)
        mod = run_sim(workload, duration=0.8, variant=PDPVariant.MODIFIED)
        assert mod.total_missed <= std.total_missed
        assert mod.token_time <= std.token_time + 1e-9


class TestQuantization:
    def test_more_levels_never_hurt(self):
        """With 16 streams squeezed into few levels, a tight workload
        misses more deadlines than with ample levels."""
        workload = make_set(
            [(20 + 6 * i, 14_000) for i in range(16)]
        )
        coarse = run_sim(
            workload, bandwidth_mbps=10.0, duration=1.0, n_priority_levels=2
        )
        fine = run_sim(
            workload, bandwidth_mbps=10.0, duration=1.0, n_priority_levels=64
        )
        assert fine.total_missed <= coarse.total_missed

    def test_standard_eight_levels_default(self):
        assert IEEE8025Config().n_priority_levels == 8


class TestAgreementWithTheorem:
    @pytest.mark.parametrize("variant", list(PDPVariant))
    def test_comfortable_margin_never_misses(self, variant):
        """Sets at 70% of the analytic breakdown point run clean in the
        faithful simulator with distinct priority levels."""
        workload = make_set([(20, 3000), (40, 8000), (60, 8000), (120, 16_000)])
        ring = ieee_802_5_ring(mbps(16), n_stations=len(workload))
        analysis = PDPAnalysis(ring, FRAME, variant)
        scale, __ = breakdown_scale(workload, analysis, rel_tol=1e-3)
        near = workload.scaled(scale * 0.7)
        simulator = IEEE8025Simulator(
            ring, FRAME, near,
            IEEE8025Config(variant=variant, n_priority_levels=64),
        )
        report = simulator.run(0.6)
        assert report.deadline_safe
        assert report.total_completed > 0
