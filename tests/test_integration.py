"""End-to-end integration scenarios across the whole stack.

Each test tells one complete story the library exists for: configure a
network, pose a workload, get a guarantee, validate it by simulation —
crossing the network/messages/analysis/sim/experiments seams.
"""

import numpy as np
import pytest

from repro import (
    MessageSet,
    PDPAnalysis,
    PDPVariant,
    SynchronousStream,
    TTPAnalysis,
    breakdown_utilization,
    fddi_ring,
    ieee_802_5_ring,
    mbps,
    milliseconds,
    paper_frame_format,
)
from repro.analysis.bounds import pdp_sufficient_test, ttp_sufficient_test
from repro.analysis.asymptotics import pdp_utilization_ceiling
from repro.analysis.breakdown import breakdown_scale
from repro.experiments.config import PaperParameters
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.sim.traffic import ArrivalPhasing
from repro.units import bytes_to_bits


FRAME = paper_frame_format()


def control_workload(n: int = 8) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(20 + 12 * i),
            payload_bits=bytes_to_bits(256 * (1 + i % 3)),
            station=i,
        )
        for i in range(n)
    )


class TestDesignFlowPDP:
    """The factory-cell story: admission, margin, simulation."""

    def test_full_flow(self):
        workload = control_workload()
        bandwidth = mbps(10)
        ring = ieee_802_5_ring(bandwidth, n_stations=len(workload))
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.MODIFIED)

        # 1. Quick admission check, then the exact test.
        quick = pdp_sufficient_test(analysis, workload)
        exact = analysis.analyze(workload)
        assert exact.schedulable
        if quick.admitted:
            assert exact.schedulable  # sufficiency

        # 2. Margin: how much can this workload grow?
        margin = breakdown_utilization(workload, analysis, bandwidth)
        assert margin.saturated
        assert margin.scale > 1.0  # workload sits inside its envelope

        # 3. The ceiling bounds the margin.
        ceiling = pdp_utilization_ceiling(ring, FRAME, PDPVariant.MODIFIED)
        assert margin.utilization <= ceiling + 1e-9

        # 4. Simulation confirms the guarantee adversarially.
        simulator = PDPRingSimulator(
            ring, FRAME, workload,
            PDPSimConfig(
                variant=PDPVariant.MODIFIED,
                phasing=ArrivalPhasing.SIMULTANEOUS,
                token_walk=TokenWalkModel.AVERAGE,
            ),
        )
        report = simulator.run(0.5)
        assert report.deadline_safe
        assert report.total_completed > 0


class TestDesignFlowTTP:
    """The avionics story: TTRT, allocation, simulation, Johnson bound."""

    def test_full_flow(self):
        workload = control_workload()
        bandwidth = mbps(100)
        ring = fddi_ring(bandwidth, n_stations=len(workload))
        analysis = TTPAnalysis(ring, FRAME)

        quick = ttp_sufficient_test(analysis, workload)
        verdict = analysis.analyze(workload)
        assert verdict.schedulable
        if quick.admitted:
            assert verdict.schedulable

        allocation = verdict.allocation
        assert allocation.satisfies_protocol_constraint()
        assert allocation.satisfies_deadline_constraint()
        assert allocation.ttrt_s <= workload.min_period / 2

        simulator = TTPRingSimulator(
            ring, FRAME, workload, allocation, TTPSimConfig()
        )
        report = simulator.run(0.5)
        assert report.deadline_safe
        assert report.max_rotation <= 2 * allocation.ttrt_s + 1e-9


class TestProtocolSelectionStory:
    """The paper's conclusion as an executable statement: for the same
    workload, PDP wins the breakdown comparison at low bandwidth and FDDI
    wins at 250 Mbps.  (On a 10-station ring the crossover sits lower
    than the paper's 100-station 10 Mbps — FDDI's n·F_ovhd penalty is
    small — so the low point is 2 Mbps here.)"""

    def test_crossover(self):
        workload = control_workload(10)
        verdicts = {}
        for bandwidth_mbps in (2.0, 250.0):
            bandwidth = mbps(bandwidth_mbps)
            pdp = PDPAnalysis(
                ieee_802_5_ring(bandwidth, n_stations=10), FRAME,
                PDPVariant.MODIFIED,
            )
            ttp = TTPAnalysis(fddi_ring(bandwidth, n_stations=10), FRAME)
            pdp_margin = breakdown_utilization(workload, pdp, bandwidth, 1e-3)
            ttp_margin = breakdown_utilization(workload, ttp, bandwidth, 1e-3)
            verdicts[bandwidth_mbps] = (
                pdp_margin.utilization, ttp_margin.utilization
            )
        low_pdp, low_ttp = verdicts[2.0]
        high_pdp, high_ttp = verdicts[250.0]
        assert low_pdp > low_ttp
        assert high_ttp > high_pdp


class TestMonteCarloPipeline:
    """Sampling -> saturation -> estimate, end to end, at two scales."""

    @pytest.mark.parametrize("n_stations", [5, 15])
    def test_pipeline(self, n_stations):
        from repro.analysis.montecarlo import average_breakdown_utilization

        params = PaperParameters().scaled_down(n_stations, 5)
        bandwidth = mbps(25)
        estimate = average_breakdown_utilization(
            params.ttp_analysis(25.0),
            params.sampler(),
            bandwidth,
            5,
            np.random.default_rng(0),
        )
        assert estimate.n_sets == 5
        assert 0.0 <= estimate.mean <= 1.0


class TestScaleInvariance:
    """Physical sanity: expressing the same workload at double bandwidth
    with double payloads keeps utilization identical, and schedulability
    verdicts shift only through the latency terms."""

    def test_utilization_invariant(self):
        workload = control_workload()
        doubled = workload.scaled(2.0)
        assert doubled.utilization(mbps(20)) == pytest.approx(
            workload.utilization(mbps(10))
        )

    def test_breakdown_scale_halves_when_payloads_double(self):
        workload = control_workload()
        ring = fddi_ring(mbps(100), n_stations=len(workload))
        analysis = TTPAnalysis(ring, FRAME)
        base = analysis.saturation_scale(workload)
        doubled = analysis.saturation_scale(workload.scaled(2.0))
        assert doubled == pytest.approx(base / 2.0, rel=1e-9)
