"""Workload generators: period distribution algebra and sampler behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.messages.generators import (
    MessageSetSampler,
    PeriodDistribution,
    equal_payload_weights,
    period_proportional_payload_weights,
    uniform_payload_weights,
    uniform_period_bounds,
)


class TestPeriodBounds:
    def test_paper_parameters(self):
        """Mean 100 ms, ratio 10 -> [18.18, 181.8] ms."""
        low, high = uniform_period_bounds(0.1, 10.0)
        assert low == pytest.approx(0.2 / 11)
        assert high == pytest.approx(10 * 0.2 / 11)

    def test_mean_recovered(self):
        low, high = uniform_period_bounds(0.1, 10.0)
        assert (low + high) / 2 == pytest.approx(0.1)

    def test_ratio_recovered(self):
        low, high = uniform_period_bounds(0.25, 7.0)
        assert high / low == pytest.approx(7.0)

    def test_ratio_one_degenerates(self):
        low, high = uniform_period_bounds(0.1, 1.0)
        assert low == high == pytest.approx(0.1)

    def test_rejects_bad_mean(self):
        with pytest.raises(ConfigurationError):
            uniform_period_bounds(0.0, 10.0)

    def test_rejects_ratio_below_one(self):
        with pytest.raises(ConfigurationError):
            uniform_period_bounds(0.1, 0.5)

    @given(
        mean=st.floats(min_value=1e-4, max_value=10.0),
        ratio=st.floats(min_value=1.0, max_value=1e3),
    )
    def test_bounds_always_consistent(self, mean, ratio):
        low, high = uniform_period_bounds(mean, ratio)
        assert 0 < low <= high
        assert (low + high) / 2 == pytest.approx(mean, rel=1e-9)


class TestPeriodDistribution:
    def test_samples_within_bounds(self):
        dist = PeriodDistribution(mean_period_s=0.1, ratio=10.0)
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, 1000)
        low, high = dist.bounds
        assert np.all(samples >= low)
        assert np.all(samples <= high)

    def test_sample_mean_near_target(self):
        dist = PeriodDistribution(mean_period_s=0.1, ratio=10.0)
        samples = dist.sample(np.random.default_rng(1), 20_000)
        assert np.mean(samples) == pytest.approx(0.1, rel=0.02)

    def test_equal_periods_when_ratio_one(self):
        dist = PeriodDistribution(mean_period_s=0.05, ratio=1.0)
        samples = dist.sample(np.random.default_rng(2), 10)
        assert np.all(samples == 0.05)


class TestWeightLaws:
    def test_uniform_weights_positive(self):
        rng = np.random.default_rng(3)
        weights = uniform_payload_weights(rng, np.ones(1000))
        assert np.all(weights > 0)
        assert np.all(weights <= 1)

    def test_equal_weights(self):
        weights = equal_payload_weights(np.random.default_rng(4), np.ones(5))
        assert np.all(weights == 1.0)

    def test_proportional_weights(self):
        periods = np.array([0.01, 0.02, 0.04])
        weights = period_proportional_payload_weights(
            np.random.default_rng(5), periods
        )
        assert np.allclose(weights, periods)


class TestSampler:
    def test_rejects_zero_streams(self):
        with pytest.raises(ConfigurationError):
            MessageSetSampler(
                n_streams=0, periods=PeriodDistribution(0.1, 10.0)
            )

    def test_sample_shape(self, sampler, rng):
        message_set = sampler.sample(rng)
        assert len(message_set) == 8
        assert [s.station for s in message_set] == list(range(8))

    def test_deterministic_given_seed(self, sampler):
        a = sampler.sample(np.random.default_rng(7))
        b = sampler.sample(np.random.default_rng(7))
        assert a == b

    def test_different_seeds_differ(self, sampler):
        a = sampler.sample(np.random.default_rng(7))
        b = sampler.sample(np.random.default_rng(8))
        assert a != b

    def test_sample_many_independent(self, sampler, rng):
        sets = sampler.sample_many(rng, 5)
        assert len(sets) == 5
        assert len({s for s in sets}) == 5  # all distinct

    def test_sample_many_zero(self, sampler, rng):
        assert sampler.sample_many(rng, 0) == []

    def test_reference_payload_scale(self, rng):
        sampler = MessageSetSampler(
            n_streams=50,
            periods=PeriodDistribution(0.1, 10.0),
            reference_payload_bits=1000.0,
        )
        message_set = sampler.sample(rng)
        mean_payload = np.mean(message_set.payloads_bits)
        assert mean_payload == pytest.approx(1000.0, rel=1e-6)

    def test_equal_weight_law(self, rng):
        sampler = MessageSetSampler(
            n_streams=4,
            periods=PeriodDistribution(0.1, 1.0),
            weight_law=equal_payload_weights,
        )
        message_set = sampler.sample(rng)
        assert len(set(message_set.payloads_bits)) == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_all_payloads_positive(self, seed):
        sampler = MessageSetSampler(
            n_streams=16, periods=PeriodDistribution(0.1, 10.0)
        )
        message_set = sampler.sample(np.random.default_rng(seed))
        assert all(p > 0 for p in message_set.payloads_bits)
