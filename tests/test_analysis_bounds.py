"""Sufficient admission bounds: values, soundness against the exact tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bounds import (
    pdp_augmented_utilization,
    pdp_sufficient_test,
    ttp_guaranteed_utilization,
    ttp_sufficient_test,
)
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.messages.message_set import MessageSet
from repro.messages.transforms import set_utilization
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps


FRAME = paper_frame_format()


class TestTTPBound:
    def test_ideal_limit_is_one_third(self):
        """With vanishing overheads the bound approaches 33%."""
        assert ttp_guaranteed_utilization(0.01, 0.0, 0, 0.0) == pytest.approx(1 / 3)

    def test_overheads_reduce_bound(self):
        ideal = ttp_guaranteed_utilization(0.01, 0.0, 0, 0.0)
        loaded = ttp_guaranteed_utilization(0.01, 0.001, 10, 1e-5)
        assert loaded < ideal

    def test_zero_when_overheads_exhaust(self):
        assert ttp_guaranteed_utilization(0.01, 0.02, 0, 0.0) == 0.0

    def test_rejects_bad_ttrt(self):
        with pytest.raises(ConfigurationError):
            ttp_guaranteed_utilization(0.0, 0.0, 0, 0.0)

    def test_rejects_negative_overheads(self):
        with pytest.raises(ConfigurationError):
            ttp_guaranteed_utilization(0.01, -1.0, 0, 0.0)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_soundness(self, seed):
        """Any set below the bound passes Theorem 5.1."""
        rng = np.random.default_rng(seed)
        sampler = MessageSetSampler(
            n_streams=6, periods=PeriodDistribution(0.1, 5.0)
        )
        message_set = sampler.sample(rng)
        bandwidth = mbps(100)
        analysis = TTPAnalysis(fddi_ring(bandwidth, n_stations=6), FRAME)
        report = ttp_sufficient_test(analysis, message_set)
        if report.threshold > 0:
            # Rescale to sit just inside the bound, then re-test.
            inside = set_utilization(
                message_set, bandwidth, report.threshold * 0.99
            )
            inside_report = ttp_sufficient_test(analysis, inside)
            assert inside_report.admitted
            assert analysis.is_schedulable(inside)


class TestPDPBound:
    def make_analysis(self, bandwidth_mbps=10.0):
        return PDPAnalysis(
            ieee_802_5_ring(mbps(bandwidth_mbps), n_stations=6),
            FRAME,
            PDPVariant.MODIFIED,
        )

    def test_empty_set_admitted(self):
        report = pdp_sufficient_test(self.make_analysis(), MessageSet([]))
        assert report.admitted

    def test_augmented_utilization_positive(self, light_set):
        analysis = self.make_analysis()
        augmented = pdp_augmented_utilization(analysis, light_set)
        raw = light_set.utilization(analysis.ring.bandwidth_bps)
        assert augmented > raw

    def test_margin_sign_matches_admission(self, light_set):
        report = pdp_sufficient_test(self.make_analysis(), light_set)
        assert (report.margin >= 0) == report.admitted

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        bandwidth=st.sampled_from([4.0, 16.0, 100.0]),
    )
    def test_soundness(self, seed, bandwidth):
        """An admitted set always passes the exact Theorem 4.1 test."""
        rng = np.random.default_rng(seed)
        sampler = MessageSetSampler(
            n_streams=6, periods=PeriodDistribution(0.1, 5.0)
        )
        message_set = sampler.sample(rng)
        analysis = self.make_analysis(bandwidth)
        report = pdp_sufficient_test(analysis, message_set)
        if report.admitted:
            assert analysis.is_schedulable(message_set)

    def test_not_necessary(self):
        """The bound is strictly sufficient: a harmonic set scaled to just
        inside its exact breakdown point (utilization near 1) is accepted
        by Theorem 4.1 but rejected by the LL-style admission rule."""
        from repro.analysis.breakdown import breakdown_scale
        from repro.messages.stream import SynchronousStream

        analysis = self.make_analysis(10.0)
        harmonic = MessageSet(
            SynchronousStream(
                period_s=0.02 * 2**i, payload_bits=4_000, station=i
            )
            for i in range(4)
        )
        scale, _ = breakdown_scale(harmonic, analysis, rel_tol=1e-4)
        near = harmonic.scaled(scale * 0.999)
        assert analysis.is_schedulable(near)
        assert not pdp_sufficient_test(analysis, near).admitted
