"""Documentation hygiene: every public item carries a docstring.

The deliverable spec requires doc comments on every public item; this
test makes that a regression-checked invariant rather than a hope.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    """Every module in the repro package."""
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    """Every public function/class defined in the module is documented,
    as is every public method of every public class."""
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; checked at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    undocumented.append(
                        f"{module.__name__}.{name}.{attr_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"
