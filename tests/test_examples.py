"""Smoke tests: every example runs clean and prints its key conclusions.

Examples are the library's public face; a refactor that silently breaks
them is a release-blocking regression even if the unit tests stay green.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"

EXPECTED_MARKERS = {
    "admission_control.py": ["admitted", "provably schedulable"],
    "quickstart.py": ["SCHEDULABLE", "timed token (FDDI)"],
    "figure1_reproduction.py": ["shape checks", "PASS"],
    "avionics_bus.py": ["deadline misses: 0", "OK"],
    "factory_cell.py": ["missed 0 deadlines", "frame-size tuning"],
    "protocol_race.py": ["recommendation", "timed token protocol"],
    "space_station.py": ["min bandwidth", "missed 0"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    # The examples import `repro` from src/ without an install; the
    # subprocess needs the path even when pytest itself was launched
    # bare (pytest's own `pythonpath` config does not reach children).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC_DIR), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr}"
    for marker in EXPECTED_MARKERS[script]:
        assert marker in result.stdout, (
            f"{script} output missing {marker!r}:\n{result.stdout[-2000:]}"
        )


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS), (
        "examples/ and the smoke-test table are out of sync"
    )
