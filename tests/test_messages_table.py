"""Columnar StreamTable: lossless round trips, bit-identical columns.

The table is pure performance work — every observable quantity must match
the object path exactly, including on the degenerate sets (n = 1, equal
periods, zero payloads) where sort ties and empty reductions live.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.messages.table import StreamTable
from repro.units import mbps


BW = mbps(10)


def _message_set(periods, payloads, stations=None):
    if stations is None:
        stations = range(len(periods))
    return MessageSet(
        SynchronousStream(period_s=p, payload_bits=c, station=s)
        for p, c, s in zip(periods, payloads, stations)
    )


class TestConstruction:
    def test_rejects_mismatched_columns(self):
        with pytest.raises(MessageSetError):
            StreamTable([0.1, 0.2], [100.0])

    def test_rejects_non_positive_periods(self):
        with pytest.raises(MessageSetError):
            StreamTable([0.1, 0.0], [100.0, 100.0])

    def test_rejects_negative_payloads(self):
        with pytest.raises(MessageSetError):
            StreamTable([0.1, 0.2], [100.0, -1.0])

    def test_rejects_non_finite(self):
        with pytest.raises(MessageSetError):
            StreamTable([0.1, float("inf")], [100.0, 100.0])
        with pytest.raises(MessageSetError):
            StreamTable([0.1, 0.2], [100.0, float("nan")])

    def test_default_stations_enumerate(self):
        table = StreamTable([0.1, 0.2], [64.0, 128.0])
        assert table.stations.tolist() == [0, 1]

    def test_columns_are_readonly(self):
        table = StreamTable([0.1, 0.2], [64.0, 128.0])
        with pytest.raises(ValueError):
            table.periods[0] = 1.0
        with pytest.raises(ValueError):
            table.payloads_bits[0] = 1.0

    def test_is_columnar_marker(self):
        assert StreamTable([0.1], [64.0]).is_columnar
        assert not getattr(_message_set([0.1], [64.0]), "is_columnar", False)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "periods, payloads",
        [
            ([0.125], [1024.0]),  # n = 1
            ([0.1, 0.1, 0.1], [64.0, 64.0, 64.0]),  # equal periods
            ([0.05, 0.2], [0.0, 0.0]),  # zero payloads
            ([0.3, 0.1, 0.2], [10.5, 0.0, 7.25]),
        ],
    )
    def test_degenerate_round_trips(self, periods, payloads):
        message_set = _message_set(periods, payloads)
        table = StreamTable.from_message_set(message_set)
        assert table.to_message_set() == message_set
        assert StreamTable.from_message_set(table.to_message_set()) == table

    def test_round_trip_preserves_stations(self):
        message_set = _message_set([0.2, 0.1], [64.0, 32.0], stations=[7, 3])
        table = StreamTable.from_message_set(message_set)
        assert table.stations.tolist() == [7, 3]
        assert table.to_message_set() == message_set

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=32,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_bit_identical(self, rows):
        """Property: table -> objects -> table loses nothing, bitwise."""
        periods = [p for p, _ in rows]
        payloads = [c for _, c in rows]
        message_set = _message_set(periods, payloads)
        table = StreamTable.from_message_set(message_set)
        assert np.array_equal(table.periods, np.array(periods))
        assert np.array_equal(table.payloads_bits, np.array(payloads))
        back = table.to_message_set()
        assert back == message_set
        assert StreamTable.from_message_set(back) == table

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0.05, 0.1, 0.1, 0.25, 1.0 / 3.0]),
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            ),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_monotonic_matches_object_sort(self, rows):
        """Property: lexsort ordering equals the object tuple sort, even
        with heavy period ties drawn from a tiny catalogue."""
        message_set = _message_set([p for p, _ in rows], [c for _, c in rows])
        table = StreamTable.from_message_set(message_set)
        assert (
            table.rate_monotonic().to_message_set()
            == message_set.rate_monotonic()
        )


class TestSequenceProtocol:
    def test_len_getitem_iter(self):
        message_set = _message_set([0.2, 0.1], [64.0, 32.0])
        table = StreamTable.from_message_set(message_set)
        assert len(table) == 2
        assert table[1] == message_set[1]
        assert list(table) == list(message_set)

    def test_slice_returns_table(self):
        table = StreamTable([0.1, 0.2, 0.3], [1.0, 2.0, 3.0])
        head = table[:2]
        assert isinstance(head, StreamTable)
        assert head == StreamTable([0.1, 0.2], [1.0, 2.0])

    def test_eq_and_hash(self):
        a = StreamTable([0.1, 0.2], [1.0, 2.0])
        b = StreamTable([0.1, 0.2], [1.0, 2.0])
        c = StreamTable([0.1, 0.2], [1.0, 3.0])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestQuantities:
    def test_utilizations_bit_identical_to_object_path(self):
        rng = np.random.default_rng(5)
        periods = rng.uniform(0.01, 1.0, size=50)
        payloads = rng.uniform(0.0, 8000.0, size=50)
        message_set = _message_set(periods, payloads)
        table = StreamTable.from_message_set(message_set)
        expected = np.array([s.utilization(BW) for s in message_set])
        assert np.array_equal(table.utilizations(BW), expected)

    def test_min_max_period(self):
        table = StreamTable([0.3, 0.1, 0.2], [1.0, 1.0, 1.0])
        assert table.min_period == 0.1
        assert table.max_period == 0.3

    def test_scaled(self):
        table = StreamTable([0.1, 0.2], [10.0, 20.0])
        assert table.scaled(2.0) == StreamTable([0.1, 0.2], [20.0, 40.0])
        with pytest.raises(MessageSetError):
            table.scaled(-1.0)

    def test_signature_rows_are_native_scalars(self):
        table = StreamTable([0.1], [64.0])
        ((p, c, s),) = table.signature_rows()
        assert type(p) is float and type(c) is float and type(s) is int

    def test_period_key_distinguishes_period_columns(self):
        a = StreamTable([0.1, 0.2], [1.0, 1.0])
        b = StreamTable([0.1, 0.3], [1.0, 1.0])
        assert a.period_key() != b.period_key()
        assert a.period_key() == StreamTable([0.1, 0.2], [9.0, 9.0]).period_key()
