"""Sharpness experiment: soundness and tightness of the criteria."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.sharpness import sharpness_experiment


@pytest.fixture(scope="module")
def result():
    params = PaperParameters().scaled_down(n_stations=5, monte_carlo_sets=3)
    return sharpness_experiment(params, bandwidth_mbps=16.0, n_sets=3)


class TestSharpness:
    def test_samples_for_both_protocols(self, result):
        protocols = {s.protocol for s in result.samples}
        assert protocols == {"modified-802.5", "fddi"}

    def test_soundness_ratios_at_least_one(self, result):
        """The empirical boundary never sits below the analytic one: the
        criteria are sound under matched simulation."""
        for sample in result.samples:
            assert sample.ratio >= 1.0 - 0.03  # bisection tolerance

    def test_pdp_criterion_is_tight(self, result):
        """Theorem 4.1 against the matched (average token walk) simulator
        is essentially exact."""
        ratios = result.ratios("modified-802.5")
        assert ratios
        assert max(ratios) <= 1.10

    def test_ttp_criterion_nearly_tight(self, result):
        """Theorem 5.1's worst-case token-timing assumptions cost only a
        few percent against simulation."""
        ratios = result.ratios("fddi")
        assert ratios
        assert max(ratios) <= 1.25

    def test_table_renders(self, result):
        table = result.to_table()
        assert "mean ratio" in table

    def test_rejects_zero_sets(self):
        params = PaperParameters().scaled_down(4, 2)
        with pytest.raises(ConfigurationError):
            sharpness_experiment(params, n_sets=0)
