"""Executable documentation: every python block in docs/USAGE.md runs.

The cookbook's snippets share one namespace in document order (later
recipes reuse objects from earlier ones), exactly as a reader pasting
them into a REPL would experience.
"""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs" / "USAGE.md"


def python_blocks() -> list[str]:
    """All ```python fenced blocks, in document order."""
    text = DOCS.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_usage_has_snippets():
    assert len(python_blocks()) >= 6


def test_usage_snippets_execute():
    namespace: dict = {}
    for index, block in enumerate(python_blocks()):
        # `...` placeholders mark elided application logic; make them
        # no-ops so the surrounding control flow still executes.
        code = block.replace("    ...  #", "    pass  #")
        try:
            exec(compile(code, f"USAGE.md block {index}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"USAGE.md block {index} failed: {exc}\n---\n{block}")
