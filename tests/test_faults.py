"""Lossy-medium fault injection: plans, injector, analysis, dispatch.

Pins the package contract end to end:

* :class:`FaultPlan` schedules are deterministic pure functions of the
  configuration (same seed ⇒ same schedule, prefix property, rate bound);
* the :class:`FaultInjector` charges recovery for exactly the consumed
  events;
* loss-rate-zero fault plans are bit-identical to unfaulted runs on both
  scalar simulators;
* the fault-aware analysis reduces exactly to the fault-free theorems at
  an inert budget and only gets stricter as the budget grows;
* the fast-path dispatch refuses fault plans (counted fallback) instead
  of silently ignoring them, and report payloads round-trip the fault
  accounting.
"""

import dataclasses
import math

import pytest

from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.errors import AllocationError, ConfigurationError
from repro.faults import (
    FaultBudget,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultStats,
    fault_aware_breakdown_scale,
    pdp_fault_aware_schedulable,
    pdp_fault_inflations,
    rate_for_loss_fraction,
    ttp_fault_aware_allocation,
    ttp_fault_aware_schedulable,
)
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.obs import metrics
from repro.sim import dispatch
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(specs) -> MessageSet:
    """specs: list of (period_ms, payload_bits)."""
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period), payload_bits=payload, station=i
        )
        for i, (period, payload) in enumerate(specs)
    )


def strip_faults(report):
    """The report with fault accounting removed (for bit-identity checks)."""
    return dataclasses.replace(report, faults=None)


class TestFaultPlan:
    def test_same_configuration_same_schedule(self):
        kwargs = dict(
            seed=42,
            token_loss_rate_hz=30.0,
            corruption_rate_hz=20.0,
            membership_rate_hz=10.0,
        )
        assert FaultPlan(**kwargs).events_until(2.0) == FaultPlan(
            **kwargs
        ).events_until(2.0)

    def test_repeated_calls_identical(self):
        plan = FaultPlan(seed=7, token_loss_rate_hz=50.0)
        assert plan.events_until(1.0) == plan.events_until(1.0)

    def test_prefix_property(self):
        plan = FaultPlan(
            seed=9,
            token_loss_rate_hz=40.0,
            corruption_rate_hz=25.0,
            membership_rate_hz=15.0,
        )
        full = plan.events_until(4.0)
        half = plan.events_until(2.0)
        assert half == [event for event in full if event.time_s < 2.0]

    def test_seed_changes_schedule(self):
        a = FaultPlan(seed=1, token_loss_rate_hz=50.0).events_until(1.0)
        b = FaultPlan(seed=2, token_loss_rate_hz=50.0).events_until(1.0)
        assert a != b

    @pytest.mark.parametrize("rate", [3.0, 17.0, 230.0])
    def test_rate_bound_any_window(self, rate):
        """Gaps >= 1/rate: any window W holds <= floor(W*rate)+1 events."""
        plan = FaultPlan(seed=5, token_loss_rate_hz=rate)
        times = [event.time_s for event in plan.events_until(10.0)]
        assert times, "expected events over 10 s"
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 1.0 / rate for gap in gaps)
        assert all(gap < 2.0 / rate + 1e-12 for gap in gaps)
        for width in (0.1, 0.5, 1.0):
            bound = plan.events_bound(rate, width)
            for start in times:
                inside = sum(1 for t in times if start <= t < start + width)
                assert inside <= bound

    def test_membership_alternates_join_leave(self):
        plan = FaultPlan(seed=3, membership_rate_hz=20.0)
        kinds = [event.kind for event in plan.events_until(2.0)]
        assert len(kinds) >= 4
        expected = [
            FaultKind.STATION_JOIN if i % 2 == 0 else FaultKind.STATION_LEAVE
            for i in range(len(kinds))
        ]
        assert kinds == expected

    def test_zero_rates_inert_and_empty(self):
        plan = FaultPlan(seed=11)
        assert plan.inert
        assert plan.events_until(100.0) == []
        assert not FaultPlan(seed=11, token_loss_rate_hz=1.0).inert

    def test_events_bound_formula(self):
        plan = FaultPlan()
        assert plan.events_bound(10.0, 1.0) == 11
        assert plan.events_bound(10.0, 0.05) == 1
        assert plan.events_bound(0.0, 1.0) == 0
        assert plan.events_bound(10.0, 0.0) == 0

    def test_plan_is_hashable(self):
        plan = FaultPlan(seed=1, token_loss_rate_hz=2.0)
        assert {plan: "ok"}[FaultPlan(seed=1, token_loss_rate_hz=2.0)] == "ok"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"token_loss_rate_hz": -1.0},
            {"corruption_rate_hz": float("nan")},
            {"membership_rate_hz": float("inf")},
            {"recovery_time_s": -0.5},
        ],
    )
    def test_rejects_bad_rates(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_rate_for_loss_fraction(self):
        assert rate_for_loss_fraction(0.05, 1e-3) == pytest.approx(50.0)
        with pytest.raises(ConfigurationError):
            rate_for_loss_fraction(-0.1, 1e-3)
        with pytest.raises(ConfigurationError):
            rate_for_loss_fraction(1.0, 1e-3)
        with pytest.raises(ConfigurationError):
            rate_for_loss_fraction(0.1, 0.0)


class TestFaultInjector:
    def test_ring_stall_consumes_due_events(self):
        plan = FaultPlan(seed=4, token_loss_rate_hz=10.0, recovery_time_s=2e-3)
        injector = FaultInjector(plan, horizon_s=1.0)
        times = [
            event.time_s
            for event in plan.events_until(1.0)
            if event.kind is FaultKind.TOKEN_LOSS
        ]
        due = [t for t in times if t <= 0.5]
        assert due and len(due) < len(times)
        stall = injector.ring_stall(0.5)
        assert stall == pytest.approx(len(due) * 2e-3)
        assert injector.stats.token_losses == len(due)
        assert injector.stats.recovery_time_s == pytest.approx(stall)
        # Already-consumed events are not charged twice.
        assert injector.ring_stall(0.5) == 0.0
        # The remainder arrives with the horizon.
        injector.ring_stall(1.0)
        assert injector.stats.token_losses == len(times)

    def test_membership_counts_separately(self):
        plan = FaultPlan(seed=6, membership_rate_hz=20.0, recovery_time_s=1e-3)
        injector = FaultInjector(plan, horizon_s=1.0)
        injector.ring_stall(1.0)
        assert injector.stats.membership_events > 0
        assert injector.stats.token_losses == 0
        assert injector.stats.ring_events == injector.stats.membership_events

    def test_corrupt_frame_one_at_a_time(self):
        plan = FaultPlan(seed=8, corruption_rate_hz=10.0)
        injector = FaultInjector(plan, horizon_s=1.0)
        n_events = len(plan.events_until(1.0))
        assert n_events >= 2
        consumed = 0
        while injector.corrupt_frame(1.0):
            consumed += 1
        assert consumed == n_events
        assert injector.stats.corrupted_frames == n_events

    def test_record_corrupted_time(self):
        injector = FaultInjector(FaultPlan(), horizon_s=1.0)
        injector.record_corrupted_time(0.25)
        injector.record_corrupted_time(0.5)
        assert injector.stats.corrupted_time_s == pytest.approx(0.75)


class TestZeroRateBitIdentity:
    """A fault plan with every rate at zero must change nothing."""

    def test_pdp(self):
        workload = make_set([(20, 4_000), (50, 16_000), (100, 32_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))

        def run(faults):
            config = PDPSimConfig(collect_responses=True, faults=faults)
            return PDPRingSimulator(ring, FRAME, workload, config).run(0.4)

        baseline = run(None)
        faulted = run(FaultPlan(seed=1234))
        assert baseline.faults is None
        assert faulted.faults == FaultStats()
        assert strip_faults(faulted) == baseline

    def test_ttp(self):
        workload = make_set([(20, 4_000), (50, 16_000), (100, 32_000)])
        ring = fddi_ring(mbps(100), n_stations=len(workload))
        analysis = TTPAnalysis(ring, FRAME)
        allocation = analysis.allocate(workload)

        def run(faults):
            config = TTPSimConfig(collect_responses=True, faults=faults)
            return TTPRingSimulator(
                ring, FRAME, workload, allocation, config
            ).run(0.4)

        baseline = run(None)
        faulted = run(FaultPlan(seed=1234))
        assert faulted.faults == FaultStats()
        assert strip_faults(faulted) == baseline


class TestFaultedRuns:
    def test_pdp_charges_token_losses(self):
        workload = make_set([(20, 4_000), (50, 16_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        plan = FaultPlan(seed=2, token_loss_rate_hz=100.0, recovery_time_s=1e-3)
        config = PDPSimConfig(faults=plan)
        report = PDPRingSimulator(ring, FRAME, workload, config).run(0.4)
        assert report.faults is not None
        assert report.faults.token_losses > 0
        assert report.faults.recovery_time_s > 0.0

    def test_pdp_corruption_wastes_medium_time(self):
        workload = make_set([(20, 4_000), (50, 16_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        plan = FaultPlan(seed=2, corruption_rate_hz=200.0)
        config = PDPSimConfig(faults=plan)
        report = PDPRingSimulator(ring, FRAME, workload, config).run(0.4)
        assert report.faults.corrupted_frames > 0
        assert report.faults.corrupted_time_s > 0.0

    def test_pdp_faulted_run_is_deterministic(self):
        workload = make_set([(20, 4_000), (50, 16_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        plan = FaultPlan(
            seed=3,
            token_loss_rate_hz=50.0,
            corruption_rate_hz=30.0,
            membership_rate_hz=10.0,
        )

        def run():
            config = PDPSimConfig(faults=plan)
            return PDPRingSimulator(ring, FRAME, workload, config).run(0.4)

        assert run() == run()

    def test_ttp_charges_token_losses(self):
        workload = make_set([(20, 4_000), (50, 16_000)])
        ring = fddi_ring(mbps(100), n_stations=len(workload))
        analysis = TTPAnalysis(ring, FRAME)
        allocation = analysis.allocate(workload)
        plan = FaultPlan(seed=2, token_loss_rate_hz=100.0, recovery_time_s=1e-3)
        config = TTPSimConfig(faults=plan)
        report = TTPRingSimulator(
            ring, FRAME, workload, allocation, config
        ).run(0.4)
        assert report.faults.token_losses > 0
        assert report.faults.recovery_time_s > 0.0


class TestFaultBudget:
    def test_from_plan_and_covers(self):
        plan = FaultPlan(
            seed=1,
            token_loss_rate_hz=5.0,
            corruption_rate_hz=2.0,
            membership_rate_hz=1.0,
            recovery_time_s=1e-3,
        )
        budget = FaultBudget.from_plan(plan)
        assert budget.covers(plan)
        assert budget.covers(FaultPlan(seed=99, token_loss_rate_hz=4.0))
        assert not budget.covers(FaultPlan(token_loss_rate_hz=6.0))
        assert not budget.covers(
            FaultPlan(token_loss_rate_hz=5.0, recovery_time_s=2e-3)
        )

    def test_bounds(self):
        budget = FaultBudget(
            token_loss_rate_hz=10.0, membership_rate_hz=5.0,
            corruption_rate_hz=3.0,
        )
        assert budget.ring_events_bound(1.0) == 11 + 6
        assert budget.corruption_bound(1.0) == 4
        assert FaultBudget().ring_events_bound(1.0) == 0
        assert FaultBudget().inert


class TestFaultAwareAnalysis:
    def test_pdp_inert_budget_is_exactly_the_theorem(self, sampler, rng):
        ring = ieee_802_5_ring(mbps(10), n_stations=8)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        budget = FaultBudget()
        for workload in sampler.sample_many(rng, 10):
            assert pdp_fault_aware_schedulable(
                analysis, workload, budget
            ) == analysis.is_schedulable(workload)

    def test_ttp_inert_budget_is_exactly_the_theorem(self, light_set):
        ring = fddi_ring(mbps(100), n_stations=8)
        analysis = TTPAnalysis(ring, FRAME)
        allocation = ttp_fault_aware_allocation(
            analysis, light_set, FaultBudget()
        )
        assert allocation == analysis.allocate(light_set)

    def test_pdp_inflations_positive_and_monotone_in_rate(self, light_set):
        ring = ieee_802_5_ring(mbps(10), n_stations=8)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        ordered = light_set.rate_monotonic()
        low = pdp_fault_inflations(
            analysis, ordered,
            FaultBudget(token_loss_rate_hz=10.0, recovery_time_s=1e-3),
        )
        high = pdp_fault_inflations(
            analysis, ordered,
            FaultBudget(token_loss_rate_hz=100.0, recovery_time_s=1e-3),
        )
        assert (low > 0.0).all()
        assert (high >= low).all()

    def test_acceptance_monotone_in_budget(self, sampler, rng):
        """Accepting at a larger budget implies accepting at a smaller one."""
        ring = ieee_802_5_ring(mbps(10), n_stations=8)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        small = FaultBudget(token_loss_rate_hz=20.0, recovery_time_s=1e-3)
        large = FaultBudget(token_loss_rate_hz=200.0, recovery_time_s=1e-3)
        for workload in sampler.sample_many(rng, 10):
            if pdp_fault_aware_schedulable(analysis, workload, large):
                assert pdp_fault_aware_schedulable(analysis, workload, small)

    def test_ttp_recovery_can_swallow_period(self, light_set):
        ring = fddi_ring(mbps(100), n_stations=8)
        analysis = TTPAnalysis(ring, FRAME)
        budget = FaultBudget(token_loss_rate_hz=1000.0, recovery_time_s=1e-2)
        with pytest.raises(AllocationError):
            ttp_fault_aware_allocation(analysis, light_set, budget)
        assert not ttp_fault_aware_schedulable(analysis, light_set, budget)

    def test_breakdown_scale_zero_when_budget_alone_rejects(self, light_set):
        ring = ieee_802_5_ring(mbps(10), n_stations=8)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        budget = FaultBudget(token_loss_rate_hz=1e5, recovery_time_s=1e-2)

        def accepts(message_set):
            return pdp_fault_aware_schedulable(analysis, message_set, budget)

        assert fault_aware_breakdown_scale(accepts, light_set) == 0.0

    def test_breakdown_scale_non_increasing_in_loss(self, light_set):
        ring = ieee_802_5_ring(mbps(10), n_stations=8)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        scales = []
        for fraction in (0.0, 0.02, 0.1):
            budget = FaultBudget(
                token_loss_rate_hz=(
                    rate_for_loss_fraction(fraction, 1e-3) if fraction else 0.0
                ),
                recovery_time_s=1e-3,
            )
            scales.append(
                fault_aware_breakdown_scale(
                    lambda ms, b=budget: pdp_fault_aware_schedulable(
                        analysis, ms, b
                    ),
                    light_set,
                )
            )
        assert scales[0] > 0.0
        assert scales[0] >= scales[1] >= scales[2]


class TestDispatchRefusal:
    """Fast paths must refuse fault plans, never silently ignore them."""

    def test_pdp_fastpath_reports_fault_injection(self):
        workload = make_set([(20, 4_000)])
        config = PDPSimConfig(faults=FaultPlan(seed=1, token_loss_rate_hz=1.0))
        assert (
            dispatch.pdp_fastpath_unsupported(workload, config)
            == "fault injection"
        )
        assert dispatch.pdp_fastpath_unsupported(workload, PDPSimConfig()) is None

    def test_ttp_fastpath_reports_fault_injection(self):
        config = TTPSimConfig(faults=FaultPlan(seed=1, token_loss_rate_hz=1.0))
        assert dispatch.ttp_fastpath_unsupported(config) == "fault injection"
        assert dispatch.ttp_fastpath_unsupported(TTPSimConfig()) is None

    def test_forced_fast_engine_raises(self):
        workload = make_set([(20, 4_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        config = PDPSimConfig(faults=FaultPlan(seed=1, token_loss_rate_hz=1.0))
        with pytest.raises(ConfigurationError, match="fault injection"):
            dispatch.run_pdp(
                ring, FRAME, workload, config, 0.1, engine="fast"
            )

    def test_auto_engine_counts_fallback_and_injects(self):
        workload = make_set([(20, 4_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        config = PDPSimConfig(
            faults=FaultPlan(seed=1, token_loss_rate_hz=100.0)
        )
        counter = metrics.counter("sim.fastpath.fallbacks")
        before = counter.value
        report = dispatch.run_pdp(
            ring, FRAME, workload, config, 0.2, engine="auto"
        )
        assert counter.value == before + 1
        assert report.faults is not None
        assert report.faults.token_losses > 0

    def test_cached_run_bypasses_cache_for_faulted_runs(self):
        workload = make_set([(20, 4_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        config = PDPSimConfig(
            faults=FaultPlan(seed=1, token_loss_rate_hz=100.0)
        )
        first = dispatch.cached_run_pdp(ring, FRAME, workload, config, 0.2)
        second = dispatch.cached_run_pdp(ring, FRAME, workload, config, 0.2)
        # Both runs recompute (nothing cached), and agree bit for bit —
        # a cache hit would have returned a report with faults=None shape
        # mismatches; the live FaultStats proves the scalar engine ran.
        assert first == second
        assert first.faults is not None
        assert first.faults.token_losses > 0

    def test_payload_round_trips_fault_stats(self):
        workload = make_set([(20, 4_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        config = PDPSimConfig(
            faults=FaultPlan(
                seed=1, token_loss_rate_hz=100.0, corruption_rate_hz=50.0
            )
        )
        report = dispatch.run_pdp(ring, FRAME, workload, config, 0.2)
        assert report.faults.token_losses > 0
        restored = dispatch.report_from_payload(
            dispatch.report_to_payload(report)
        )
        assert restored == report

    def test_payload_missing_faults_key_degrades_to_none(self):
        workload = make_set([(20, 4_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
        report = dispatch.run_pdp(
            ring, FRAME, workload, PDPSimConfig(), 0.2, engine="scalar"
        )
        payload = dispatch.report_to_payload(report)
        del payload["faults"]
        assert dispatch.report_from_payload(payload).faults is None
