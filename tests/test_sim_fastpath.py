"""Fast-path simulators and the engine dispatch (repro.sim.fastpath*).

The contract under test is *bit identity*: on every supported
configuration the event-compressing fast paths must reproduce the scalar
oracles' reports exactly — same busy times, same response samples, same
rotation statistics — so they can replace the oracles anywhere without a
tolerance budget.  Unsupported configurations must either fall back
(``auto``) or refuse loudly (``fast``), never silently approximate.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.analysis.pdp import PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.obs import metrics
from repro.sim import dispatch, fastpath, fastpath_ttp
from repro.sim.dispatch import (
    SimEngine,
    report_from_payload,
    report_to_payload,
    resolve_engine,
    run_pdp,
    run_ttp,
    set_default_engine,
)
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.trace import DeadlineStats, RotationStats, SimulationReport
from repro.sim.traffic import ArrivalPhasing, PoissonAsyncTraffic
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.sim import validate as validate_mod
from repro.units import mbps


@pytest.fixture(autouse=True)
def _reset_default_engine():
    yield
    set_default_engine(None)


def assert_reports_identical(scalar: SimulationReport, fast: SimulationReport):
    assert fast.duration == scalar.duration
    assert fast.sync_busy_time == scalar.sync_busy_time
    assert fast.async_busy_time == scalar.async_busy_time
    assert fast.token_time == scalar.token_time
    assert [vars(s) for s in fast.streams] == [vars(s) for s in scalar.streams]
    assert [vars(r) for r in fast.rotations] == [
        vars(r) for r in scalar.rotations
    ]


def _counter(name: str) -> float:
    return metrics.counter(name).value


# -- PDP bit identity ---------------------------------------------------------


@pytest.mark.parametrize("variant", [PDPVariant.STANDARD, PDPVariant.MODIFIED])
@pytest.mark.parametrize(
    "phasing", [ArrivalPhasing.SIMULTANEOUS, ArrivalPhasing.STAGGERED]
)
@pytest.mark.parametrize("saturating", [True, False])
def test_pdp_fast_matches_scalar(
    harmonic_set, small_ring_802_5, frame, variant, phasing, saturating
):
    config = PDPSimConfig(
        variant=variant,
        phasing=phasing,
        async_saturating=saturating,
        token_walk=TokenWalkModel.ACTUAL,
        collect_responses=True,
    )
    duration = 0.25
    scalar = PDPRingSimulator(
        small_ring_802_5, frame, harmonic_set, config
    ).run(duration)
    fast = fastpath.run_pdp_fast(
        small_ring_802_5, frame, harmonic_set, config, duration
    )
    assert_reports_identical(scalar, fast)


def test_pdp_fast_matches_scalar_average_walk(harmonic_set, small_ring_802_5, frame):
    config = PDPSimConfig(
        variant=PDPVariant.MODIFIED,
        token_walk=TokenWalkModel.AVERAGE,
        collect_responses=True,
    )
    scalar = PDPRingSimulator(small_ring_802_5, frame, harmonic_set, config).run(0.2)
    fast = fastpath.run_pdp_fast(small_ring_802_5, frame, harmonic_set, config, 0.2)
    assert_reports_identical(scalar, fast)


def test_pdp_fast_sparse_idle_gaps(small_ring_802_5, frame):
    # One light stream with a long period: the run is mostly idle, so the
    # fast path must skip the gaps without inventing or losing arrivals.
    sparse = MessageSet(
        [SynchronousStream(period_s=0.05, payload_bits=512, station=2)]
    )
    config = PDPSimConfig(async_saturating=False, collect_responses=True)
    scalar = PDPRingSimulator(small_ring_802_5, frame, sparse, config).run(1.0)
    fast = fastpath.run_pdp_fast(small_ring_802_5, frame, sparse, config, 1.0)
    assert_reports_identical(scalar, fast)


# -- TTP bit identity ---------------------------------------------------------


@pytest.mark.parametrize(
    "phasing", [ArrivalPhasing.SIMULTANEOUS, ArrivalPhasing.STAGGERED]
)
@pytest.mark.parametrize("saturating", [True, False])
def test_ttp_fast_matches_scalar(
    harmonic_set, small_ring_fddi, frame, phasing, saturating
):
    allocation = TTPAnalysis(small_ring_fddi, frame).analyze(harmonic_set).allocation
    assert allocation is not None
    config = TTPSimConfig(
        phasing=phasing, async_saturating=saturating, collect_responses=True
    )
    duration = 0.25
    scalar = TTPRingSimulator(
        small_ring_fddi, frame, harmonic_set, allocation, config
    ).run(duration)
    fast = fastpath_ttp.run_ttp_fast(
        small_ring_fddi, frame, harmonic_set, allocation, config, duration
    )
    assert_reports_identical(scalar, fast)


def test_ttp_fast_sweeps_empty_rotations(small_ring_fddi, frame):
    # A single light stream on a 100 Mbps ring: almost every rotation is
    # empty, which is exactly what the closed-form rotation sweep covers.
    sparse = MessageSet(
        [SynchronousStream(period_s=0.02, payload_bits=4_096, station=0)]
    )
    allocation = TTPAnalysis(small_ring_fddi, frame).analyze(sparse).allocation
    assert allocation is not None
    config = TTPSimConfig(async_saturating=False, collect_responses=True)
    swept_before = _counter("sim.fastpath.ttp.swept")
    scalar = TTPRingSimulator(
        small_ring_fddi, frame, sparse, allocation, config
    ).run(0.5)
    fast = fastpath_ttp.run_ttp_fast(
        small_ring_fddi, frame, sparse, allocation, config, 0.5
    )
    assert_reports_identical(scalar, fast)
    assert _counter("sim.fastpath.ttp.swept") > swept_before


# -- dispatch -----------------------------------------------------------------


def test_resolve_engine_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    assert resolve_engine(None) is SimEngine.AUTO
    monkeypatch.setenv("REPRO_SIM_ENGINE", "fast")
    assert resolve_engine(None) is SimEngine.FAST
    set_default_engine("scalar")  # process default beats the environment
    assert resolve_engine(None) is SimEngine.SCALAR
    assert resolve_engine("auto") is SimEngine.AUTO  # explicit beats both
    assert resolve_engine(SimEngine.FAST) is SimEngine.FAST


def test_resolve_engine_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        resolve_engine("warp")
    with pytest.raises(ConfigurationError):
        set_default_engine("turbo")


def test_auto_falls_back_on_poisson_and_matches_scalar(
    harmonic_set, small_ring_802_5, frame
):
    config = PDPSimConfig(
        async_saturating=False,
        async_poisson=PoissonAsyncTraffic(offered_load=0.1, frame_bits=1_000.0),
    )
    fallbacks = _counter("sim.fastpath.fallbacks")
    auto = run_pdp(small_ring_802_5, frame, harmonic_set, config, 0.1, engine="auto")
    assert _counter("sim.fastpath.fallbacks") == fallbacks + 1
    scalar = PDPRingSimulator(small_ring_802_5, frame, harmonic_set, config).run(0.1)
    assert_reports_identical(scalar, auto)


def test_forced_fast_refuses_poisson(harmonic_set, small_ring_802_5, frame):
    config = PDPSimConfig(
        async_saturating=False,
        async_poisson=PoissonAsyncTraffic(offered_load=0.1, frame_bits=1_000.0),
    )
    with pytest.raises(ConfigurationError, match="Poisson"):
        run_pdp(small_ring_802_5, frame, harmonic_set, config, 0.1, engine="fast")


def test_forced_fast_refuses_shared_stations(small_ring_802_5, frame):
    shared = MessageSet(
        [
            SynchronousStream(period_s=0.02, payload_bits=1_000, station=3),
            SynchronousStream(period_s=0.04, payload_bits=1_000, station=3),
        ]
    )
    with pytest.raises(ConfigurationError, match="multiple streams"):
        run_pdp(small_ring_802_5, frame, shared, PDPSimConfig(), 0.1, engine="fast")
    # auto quietly routes the same workload to the scalar oracle
    report = run_pdp(small_ring_802_5, frame, shared, PDPSimConfig(), 0.1, engine="auto")
    assert report.duration == 0.1


def test_ttp_forced_fast_refuses_poisson(harmonic_set, small_ring_fddi, frame):
    allocation = TTPAnalysis(small_ring_fddi, frame).analyze(harmonic_set).allocation
    config = TTPSimConfig(
        async_saturating=False,
        async_poisson=PoissonAsyncTraffic(offered_load=0.1, frame_bits=1_000.0),
    )
    with pytest.raises(ConfigurationError, match="Poisson"):
        run_ttp(
            small_ring_fddi, frame, harmonic_set, allocation, config, 0.1,
            engine=SimEngine.FAST,
        )


def test_scalar_engine_ignores_fastpath_support(harmonic_set, small_ring_802_5, frame):
    runs = _counter("sim.fastpath.pdp.runs")
    run_pdp(small_ring_802_5, frame, harmonic_set, PDPSimConfig(), 0.05,
            engine="scalar")
    assert _counter("sim.fastpath.pdp.runs") == runs


# -- report serialisation -----------------------------------------------------


def test_report_payload_roundtrip_through_json():
    report = SimulationReport(
        duration=0.5,
        streams=[
            DeadlineStats(
                stream_index=0, completed=3, missed=1,
                max_response=0.011, total_response=0.027,
                responses=[0.009, 0.007, 0.011], sample_limit=10,
            )
        ],
        rotations=[
            RotationStats(
                station=2, count=0, total=0.0,
                maximum=0.0, minimum=float("inf"),
            )
        ],
        sync_busy_time=0.1,
        async_busy_time=0.2,
        token_time=0.05,
    )
    wire = json.loads(json.dumps(report_to_payload(report)))
    rebuilt = report_from_payload(wire)
    assert vars(rebuilt)["duration"] == report.duration
    assert [vars(s) for s in rebuilt.streams] == [vars(s) for s in report.streams]
    assert rebuilt.rotations[0].minimum == float("inf")


# -- seams the mutation smoke relies on --------------------------------------


def test_short_frame_seam_changes_the_report(frame):
    # High bandwidth: Θ exceeds the wire time, so dropping the max(…, Θ)
    # floor on the short last frame must visibly change the report.  This
    # pins the seam the ``pdp_fastpath_short_frame`` mutant patches.
    ring = ieee_802_5_ring(mbps(100), n_stations=8)
    payload = int(frame.info_bits * 1.5)  # guarantees a short last frame
    ms = MessageSet(
        [SynchronousStream(period_s=0.01, payload_bits=payload, station=0)]
    )
    config = PDPSimConfig(collect_responses=True)
    clean = fastpath.run_pdp_fast(ring, frame, ms, config, 0.1)
    original = fastpath._short_frame_occupancy

    def buggy(chunk_bits, overhead_bits, bandwidth_bps, theta):
        return (chunk_bits + overhead_bits) / bandwidth_bps

    fastpath._short_frame_occupancy = buggy
    try:
        mutated = fastpath.run_pdp_fast(ring, frame, ms, config, 0.1)
    finally:
        fastpath._short_frame_occupancy = original
    assert mutated.streams[0].max_response != clean.streams[0].max_response


# -- hyperperiod memoisation --------------------------------------------------


def test_rational_hyperperiod_memoised():
    periods = (0.02, 0.03, 0.05)
    first = validate_mod._rational_hyperperiod(periods)
    assert (periods, 1_000_000) in validate_mod._HYPERPERIOD_MEMO
    assert validate_mod._rational_hyperperiod(periods) == first
    # A different denominator bound is a different computation.
    coarse = validate_mod._rational_hyperperiod(periods, max_denominator=10)
    assert (periods, 10) in validate_mod._HYPERPERIOD_MEMO
    assert validate_mod._rational_hyperperiod(periods, max_denominator=10) == coarse
