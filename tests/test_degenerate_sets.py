"""Degenerate message sets: the boundary populations the fuzzer targets,
pinned as deterministic regression tests for both protocols.

Families (mirroring :data:`repro.verify.generators.CASE_KINDS`):

* one-stream sets on one-station rings (no interference, blocking only);
* all-equal periods (rate-monotonic priority ties);
* sub-frame messages (payloads at or below one info field, down to 1 bit);
* the TTP ``q_i = floor(P_i/TTRT) = 2`` admissibility edge, where the
  local scheme's ``C_i/(q_i - 1)`` divisor bottoms out at 1 and one more
  drop of the quotient makes the set unallocatable.
"""

from __future__ import annotations

import pytest

from repro.analysis.pdp import PDPAnalysis, PDPVariant, pdp_blocking_time
from repro.analysis.ttp import TTPAnalysis, local_scheme_allocation
from repro.errors import AllocationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import (
    fddi_ring,
    ieee_802_5_ring,
    paper_frame_format,
)
from repro.sim.validate import cross_validate_pdp, cross_validate_ttp
from repro.units import mbps


def _set(*streams: tuple[float, float]) -> MessageSet:
    return MessageSet(
        SynchronousStream(period_s=p, payload_bits=c, station=i)
        for i, (p, c) in enumerate(streams)
    )


FRAME = paper_frame_format()


class TestSingleStreamSingleStation:
    """n = 1: no higher-priority interference, blocking/overhead only."""

    def test_pdp_light_single_stream_schedulable_and_simulated(self):
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(16), n_stations=1), FRAME,
            PDPVariant.STANDARD,
        )
        message_set = _set((0.05, 10_000.0))
        assert analysis.is_schedulable(message_set)
        validation = cross_validate_pdp(analysis, message_set)
        assert validation.consistent

    def test_pdp_single_stream_reduces_to_blocking_plus_length(self):
        # With one stream the exact RM test degenerates to
        # C' + B <= P: find the payload knee and check both sides.
        ring = ieee_802_5_ring(mbps(16), n_stations=1)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        blocking = pdp_blocking_time(ring, FRAME)
        period = 0.01
        schedulable = analysis.is_schedulable(_set((period, 100.0)))
        assert schedulable
        # An augmented length beyond P - B must be rejected: pick a
        # payload whose raw transmission time alone exceeds the period.
        too_big = (period + blocking) * mbps(16) * 2
        assert not analysis.is_schedulable(_set((period, too_big)))

    def test_ttp_single_stream_schedulable_and_simulated(self):
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=1), FRAME)
        message_set = _set((0.05, 100_000.0))
        assert analysis.is_schedulable(message_set)
        validation = cross_validate_ttp(analysis, message_set)
        assert validation.consistent

    def test_both_variants_agree_on_single_sub_frame_message(self):
        for variant in PDPVariant:
            analysis = PDPAnalysis(
                ieee_802_5_ring(mbps(4), n_stations=1), FRAME, variant
            )
            assert analysis.is_schedulable(_set((0.02, 1.0)))


class TestEqualPeriods:
    """All-equal periods: every rate-monotonic priority order ties."""

    def test_pdp_equal_periods_schedulable_and_simulated(self):
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(16), n_stations=4), FRAME,
            PDPVariant.STANDARD,
        )
        message_set = _set(*[(0.05, 5_000.0)] * 4)
        assert analysis.is_schedulable(message_set)
        assert cross_validate_pdp(analysis, message_set).consistent

    def test_pdp_verdict_invariant_under_stream_order(self):
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(16), n_stations=3), FRAME,
            PDPVariant.STANDARD,
        )
        payloads = (9_000.0, 1_000.0, 4_000.0)
        for rotation in range(3):
            rotated = payloads[rotation:] + payloads[:rotation]
            message_set = _set(*[(0.03, c) for c in rotated])
            assert analysis.is_schedulable(message_set)

    def test_ttp_equal_periods_equal_budgets(self):
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=4), FRAME)
        message_set = _set(*[(0.04, 50_000.0)] * 4)
        allocation = analysis.allocate(message_set)
        assert len(set(allocation.token_visits)) == 1
        assert len(set(allocation.bandwidths_s)) == 1
        assert analysis.is_schedulable(message_set)
        assert cross_validate_ttp(analysis, message_set).consistent


class TestSubFrameMessages:
    """Payloads at or below one info field: K_i = 1, L_i = 0 territory."""

    @pytest.mark.parametrize("payload", [1.0, 100.0, FRAME.info_bits])
    def test_pdp_sub_frame_payloads(self, payload):
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(16), n_stations=3), FRAME,
            PDPVariant.STANDARD,
        )
        message_set = _set((0.02, payload), (0.03, payload), (0.05, payload))
        assert analysis.is_schedulable(message_set)
        assert cross_validate_pdp(analysis, message_set).consistent

    def test_ttp_sub_frame_payloads(self):
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=3), FRAME)
        message_set = _set((0.02, 1.0), (0.03, 100.0), (0.05, 512.0))
        assert analysis.is_schedulable(message_set)
        assert cross_validate_ttp(analysis, message_set).consistent

    def test_exactly_one_info_field_is_one_frame(self):
        split = FRAME.split(FRAME.info_bits)
        assert split.total_frames == 1
        assert split.full_frames == 1


class TestTTPQuotientEdge:
    """The q_i = 2 admissibility edge of the local allocation scheme."""

    BANDWIDTH = mbps(100)

    def _ring(self):
        return fddi_ring(self.BANDWIDTH, n_stations=1)

    def test_q2_exact_multiple_is_admissible(self):
        # P = 2·TTRT exactly: the relative snap must deliver q = 2 and
        # the allocation h = C/(2-1) + F_ovhd must come out finite.
        analysis = TTPAnalysis(self._ring(), FRAME)
        ttrt = 0.01
        message_set = _set((2 * ttrt, 10_000.0))
        allocation = analysis.allocate(message_set, ttrt_s=ttrt)
        assert allocation.token_visits == (2,)
        assert analysis.is_schedulable(message_set, ttrt_s=ttrt)

    def test_below_q2_raises_allocation_error(self):
        analysis = TTPAnalysis(self._ring(), FRAME)
        ttrt = 0.01
        message_set = _set((1.999 * ttrt, 10_000.0))
        with pytest.raises(AllocationError):
            analysis.allocate(message_set, ttrt_s=ttrt)
        assert not analysis.is_schedulable(message_set, ttrt_s=ttrt)

    def test_q2_budget_divisor_is_one(self):
        # At q = 2 the guaranteed time per period is (q-1)·H = 1·H, so
        # the whole message must fit in a single token visit's budget.
        ttrt = 0.01
        payload_bits = 10_000.0
        message_set = _set((2 * ttrt, payload_bits))
        allocation = local_scheme_allocation(
            message_set, ttrt, self.BANDWIDTH,
            frame_overhead_time_s=0.0, delta_s=0.0,
        )
        assert allocation.bandwidths_s[0] == pytest.approx(
            payload_bits / self.BANDWIDTH
        )

    def test_q2_edge_survives_float_hostile_ttrt(self):
        # An irrational-looking TTRT whose doubled value round-trips
        # through P/TTRT just below 2.0 in floats: the relative snap
        # must still admit the exact multiple.
        analysis = TTPAnalysis(self._ring(), FRAME)
        ttrt = 0.0030000000000000001
        message_set = _set((2 * ttrt, 1_000.0))
        allocation = analysis.allocate(message_set, ttrt_s=ttrt)
        assert allocation.token_visits == (2,)
