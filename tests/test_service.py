"""Admission service: wire protocol, micro-batching, backpressure, clients.

The load-bearing property is bit-identity: every decision served over
HTTP — batched, cached, or concurrent — must equal the decision a direct
:class:`AdmissionController` call would have produced.  The batcher tests
pin that under randomized interleavings; the server tests pin the
transport semantics (429 shedding, 503 draining, typed faults).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionOp,
    AdmissionPolicy,
    OpFault,
    ReleaseOutcome,
)
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ReproError,
    ServiceError,
)
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.obs import metrics
from repro.obs.benchjson import summarize_benchmark_json
from repro.service import (
    AdmissionServer,
    AsyncServiceClient,
    Backoff,
    MicroBatcher,
    QueueFullError,
    ServiceClient,
    ServiceConfig,
    build_controller,
)
from repro.service.loadgen import (
    LoadConfig,
    bench_document,
    run_against_spawned_server,
)
from repro.service.protocol import (
    WIRE_SCHEMA_VERSION,
    decision_to_wire,
    fault_status,
    load_body,
    parse_release_body,
    parse_stream_body,
)
from repro.service.ratelimit import ClientRateLimiter, TokenBucket
from repro.units import mbps

FRAME = paper_frame_format()


def make_controller(n=8, policy=AdmissionPolicy.EXACT, cache_namespace=None):
    analysis = PDPAnalysis(
        ieee_802_5_ring(mbps(16), n_stations=n), FRAME, PDPVariant.MODIFIED
    )
    return AdmissionController(analysis, policy, cache_namespace=cache_namespace)


def issue_directly(controller, op):
    """One op against the direct-call API, faults captured like the batch."""
    try:
        if op.kind == "check":
            return controller.check(op.period_s, op.payload_bits)
        if op.kind == "admit":
            return controller.request(op.period_s, op.payload_bits)
        return controller.release(op.stream_id, idempotent=op.idempotent)
    except ReproError as exc:
        return OpFault(type(exc).__name__, str(exc))


# -- wire protocol --------------------------------------------------------------


class TestProtocol:
    def test_config_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(protocol="atm")

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(policy="optimistic")

    def test_config_rejects_degenerate_limits(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(batch_max=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(batch_window_s=-0.001)

    def test_build_controller_both_protocols(self):
        pdp = build_controller(ServiceConfig(protocol="pdp", n_stations=8))
        ttp = build_controller(ServiceConfig(protocol="ttp", n_stations=8))
        assert pdp.analysis.ring.n_stations == 8
        assert ttp.analysis.ring.n_stations == 8
        assert pdp.policy is AdmissionPolicy.EXACT

    def test_load_body_rejects_malformed_json(self):
        with pytest.raises(ServiceError):
            load_body(b"{not json")
        with pytest.raises(ServiceError):
            load_body(b"[1, 2, 3]")
        assert load_body(b"") == {}

    def test_parse_stream_body_requires_numbers(self):
        assert parse_stream_body(
            {"period_s": 0.032, "payload_bits": 512}
        ) == (0.032, 512.0)
        with pytest.raises(ServiceError):
            parse_stream_body({"period_s": "fast", "payload_bits": 512})
        with pytest.raises(ServiceError):
            parse_stream_body({"period_s": True, "payload_bits": 512})
        with pytest.raises(ServiceError):
            parse_stream_body({"payload_bits": 512})

    def test_parse_release_body_typing(self):
        assert parse_release_body({"stream_id": 3}) == (3, False)
        assert parse_release_body(
            {"stream_id": 3, "idempotent": True}
        ) == (3, True)
        with pytest.raises(ServiceError):
            parse_release_body({"stream_id": True})
        with pytest.raises(ServiceError):
            parse_release_body({"stream_id": 3, "idempotent": 1})

    def test_fault_status_maps_admission_errors_to_404(self):
        assert fault_status(OpFault("AdmissionError", "gone")) == 404
        assert fault_status(OpFault("MessageSetError", "bad")) == 422

    def test_decision_round_trips_every_field(self):
        controller = make_controller()
        decision = controller.check(0.032, 512.0)
        wire = decision_to_wire(decision)
        assert wire["schema_version"] == WIRE_SCHEMA_VERSION
        for field in (
            "admitted", "stream_id", "station", "reason", "tested_by",
            "utilization_after",
        ):
            assert wire[field] == getattr(decision, field)


# -- rate limiting --------------------------------------------------------------


class TestRateLimiter:
    def test_bucket_burst_then_refill(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0, now=0.0)
        assert bucket.try_acquire(0.0) == 0.0
        assert bucket.try_acquire(0.0) == 0.0
        wait = bucket.try_acquire(0.0)
        assert wait == pytest.approx(0.1)
        assert bucket.try_acquire(0.0 + wait) == 0.0

    def test_disabled_limiter_always_grants(self):
        limiter = ClientRateLimiter(rate_per_s=0.0)
        assert not limiter.enabled
        assert all(limiter.check("c", float(t)) == 0.0 for t in range(100))

    def test_clients_are_independent(self):
        limiter = ClientRateLimiter(rate_per_s=1.0, burst=1.0)
        assert limiter.check("a", 0.0) == 0.0
        assert limiter.check("a", 0.0) > 0.0
        assert limiter.check("b", 0.0) == 0.0

    def test_lru_eviction_resets_idle_clients(self):
        limiter = ClientRateLimiter(rate_per_s=1.0, burst=1.0, max_clients=2)
        assert limiter.check("a", 0.0) == 0.0
        assert limiter.check("b", 0.0) == 0.0
        assert limiter.check("c", 0.0) == 0.0  # evicts "a"
        assert limiter.check("a", 0.0) == 0.0  # fresh bucket again


# -- micro-batcher --------------------------------------------------------------


_PERIODS = (0.008, 0.016, 0.032, 0.064)


def _decode_ops(encoded):
    ops = []
    for kind, period_idx, payload_step, stream_id, idempotent in encoded:
        if kind == 2:
            ops.append(AdmissionOp.release(stream_id, idempotent=idempotent))
        else:
            op = AdmissionOp.admit if kind == 1 else AdmissionOp.check
            ops.append(op(_PERIODS[period_idx], 64.0 * payload_step))
    return ops


class TestMicroBatcher:
    def run_batched(self, ops, **batcher_kwargs):
        controller = make_controller()

        async def go():
            batcher = MicroBatcher(controller, **batcher_kwargs)
            batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(op) for op in ops)
            )
            await batcher.drain()
            return results

        return asyncio.run(go())

    @settings(max_examples=25, deadline=None)
    @given(
        encoded=st.lists(
            st.tuples(
                st.integers(0, 2),
                st.integers(0, len(_PERIODS) - 1),
                st.integers(1, 64),
                st.integers(1, 10),
                st.booleans(),
            ),
            max_size=12,
        ),
        batch_max=st.sampled_from([1, 3, 8, 64]),
    )
    def test_bit_identical_to_sequential(self, encoded, batch_max):
        """Any interleaving, any batch size: results equal direct calls."""
        ops = _decode_ops(encoded)
        batched = self.run_batched(
            ops, batch_window_s=0.001, batch_max=batch_max, queue_limit=256
        )
        sequential_controller = make_controller()
        expected = [issue_directly(sequential_controller, op) for op in ops]
        assert batched == expected

    def test_queue_full_sheds_with_retry_hint(self):
        controller = make_controller()
        shed_before = metrics.counter("service.shed").value

        async def go():
            batcher = MicroBatcher(
                controller, batch_window_s=0.0, batch_max=1, queue_limit=4
            )
            batcher.start()
            gate = threading.Event()
            blocker = asyncio.ensure_future(batcher.run_on_worker(gate.wait))
            await asyncio.sleep(0.02)  # worker thread now parked on the gate
            op = AdmissionOp.check(0.032, 512.0)
            head = asyncio.ensure_future(batcher.submit(op))
            await asyncio.sleep(0.02)  # dispatcher took it, stuck behind gate
            backlog = [
                asyncio.ensure_future(batcher.submit(op)) for _ in range(4)
            ]
            await asyncio.sleep(0)  # all four enqueue: queue is now full
            with pytest.raises(QueueFullError) as err:
                await batcher.submit(op)
            assert err.value.retry_after_s > 0
            gate.set()
            results = await asyncio.gather(head, *backlog)
            await blocker
            await batcher.drain()
            return results

        results = asyncio.run(go())
        # Shed request was never evaluated; everything accepted was answered.
        assert len(results) == 5
        assert all(isinstance(r, AdmissionDecision) for r in results)
        assert metrics.counter("service.shed").value == shed_before + 1

    def test_drain_answers_everything_then_refuses(self):
        controller = make_controller()

        async def go():
            batcher = MicroBatcher(
                controller, batch_window_s=0.05, batch_max=128, queue_limit=256
            )
            batcher.start()
            op = AdmissionOp.check(0.032, 512.0)
            tasks = [
                asyncio.ensure_future(batcher.submit(op)) for _ in range(32)
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            await batcher.drain()
            results = await asyncio.gather(*tasks)
            assert len(results) == 32
            assert all(isinstance(r, AdmissionDecision) for r in results)
            with pytest.raises(ServiceError):
                await batcher.submit(op)

        asyncio.run(go())

    def test_results_identical_with_cache_on_and_off(self):
        ops = [AdmissionOp.check(0.032, 512.0) for _ in range(6)]
        ops += [AdmissionOp.admit(0.016, 256.0), AdmissionOp.check(0.032, 512.0)]

        def run_with(namespace):
            controller = make_controller(cache_namespace=namespace)

            async def go():
                batcher = MicroBatcher(controller, batch_window_s=0.001)
                batcher.start()
                results = await asyncio.gather(
                    *(batcher.submit(op) for op in ops)
                )
                await batcher.drain()
                return results

            return asyncio.run(go())

        assert run_with(None) == run_with("admission")


# -- server end to end ----------------------------------------------------------


class _ServerThread:
    """Run an :class:`AdmissionServer` on its own loop in a thread, so
    blocking clients can be exercised from the test thread."""

    def __init__(self, config: ServiceConfig, controller=None):
        self._config = config
        self._controller = controller
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: AdmissionServer | None = None

    def __enter__(self) -> "AdmissionServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server failed to start"
        return self.server

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)

    def _run(self) -> None:
        async def main():
            self.server = AdmissionServer(self._config, self._controller)
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            await self.server.start()
            self._ready.set()
            await self._stop.wait()
            await self.server.drain_and_stop()

        asyncio.run(main())


class _SlowController:
    """Delegates to a real controller, but every batch takes ``delay_s`` —
    long enough for the intake queue to fill under concurrent load."""

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def process_batch(self, ops):
        time.sleep(self._delay_s)
        return self._inner.process_batch(ops)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestServer:
    def test_sync_client_full_tour(self):
        config = ServiceConfig(port=0, n_stations=8, policy="hybrid")
        with _ServerThread(config) as server:
            with ServiceClient(port=server.port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["admitted"] == 0

                decision = client.check(0.032, 512.0)
                assert decision["admitted"] is True
                assert decision["stream_id"] is None

                admitted = client.admit(0.032, 512.0)
                assert admitted["admitted"] is True
                assert admitted["stream_id"] == 1
                assert client.healthz()["admitted"] == 1

                report = client.breakdown()
                assert report["streams"] == 1
                assert report["scale"] > 1.0

                released = client.release(admitted["stream_id"])
                assert released == {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "released": True,
                    "stream_id": 1,
                }
                with pytest.raises(AdmissionError):
                    client.release(admitted["stream_id"])
                again = client.release(admitted["stream_id"], idempotent=True)
                assert again["released"] is False

                snap = client.metrics()["metrics"]
                assert snap["service.requests"]["value"] >= 5
                assert all(
                    name.startswith(
                        (
                            "service.",
                            "cache.admission.",
                            "admission.incremental.",
                            "trace.",
                        )
                    )
                    for name in snap
                )

    def test_http_error_paths(self):
        config = ServiceConfig(port=0, n_stations=8)
        with _ServerThread(config) as server:
            with ServiceClient(port=server.port) as client:
                status, payload, _ = client.request("GET", "/nope")
                assert status == 404
                status, payload, _ = client.request("GET", "/v1/admit")
                assert status == 405
                status, payload, _ = client.request(
                    "POST", "/v1/check", {"period_s": "soon"}
                )
                assert status == 400
                status, payload, _ = client.request(
                    "POST", "/v1/check", {"period_s": -1.0, "payload_bits": 64}
                )
                assert status == 422  # library-level MessageSetError
                status, payload, _ = client.request(
                    "POST", "/v1/release", {"stream_id": 99}
                )
                assert status == 404
                assert payload["error"] == "AdmissionError"

    def test_server_decisions_match_direct_controller(self):
        """The wire answer equals a direct controller call, field for field."""
        config = ServiceConfig(port=0, n_stations=8, policy="exact")
        twin = build_controller(config)
        script = [
            ("check", 0.032, 512.0),
            ("admit", 0.016, 1024.0),
            ("check", 0.008, 64.0),
            ("admit", 0.008, 30_000.0),  # heavy: may be rejected
            ("check", 0.064, 128.0),
        ]

        async def go():
            server = AdmissionServer(ServiceConfig(**{**config.__dict__}))
            await server.start()
            try:
                async with AsyncServiceClient(port=server.port) as client:
                    answers = []
                    for kind, period_s, payload_bits in script:
                        call = client.check if kind == "check" else client.admit
                        answers.append(await call(period_s, payload_bits))
                    return answers
            finally:
                await server.drain_and_stop()

        answers = asyncio.run(go())
        for (kind, period_s, payload_bits), got in zip(script, answers):
            op = (
                AdmissionOp.check(period_s, payload_bits)
                if kind == "check"
                else AdmissionOp.admit(period_s, payload_bits)
            )
            want = decision_to_wire(issue_directly(twin, op))
            assert got == want

    def test_overload_sheds_and_recovers(self):
        inner = make_controller(policy=AdmissionPolicy.SUFFICIENT)
        config = ServiceConfig(
            port=0, queue_limit=2, batch_max=1, batch_window_s=0.0
        )
        controller = _SlowController(inner, delay_s=0.05)

        async def one_request(port, index):
            async with AsyncServiceClient(
                port=port, client_id=f"flood-{index}"
            ) as client:
                try:
                    return await client.check(0.032, 512.0)
                except Backoff as exc:
                    return exc

        async def go():
            server = AdmissionServer(config, controller)
            await server.start()
            try:
                outcomes = await asyncio.gather(
                    *(one_request(server.port, i) for i in range(16))
                )
                async with AsyncServiceClient(port=server.port) as client:
                    health = await client.healthz()
            finally:
                await server.drain_and_stop()
            return outcomes, health

        outcomes, health = asyncio.run(go())
        shed = [o for o in outcomes if isinstance(o, Backoff)]
        served = [o for o in outcomes if not isinstance(o, Backoff)]
        assert len(shed) + len(served) == 16
        assert shed, "overload never shed despite queue_limit=2"
        assert all(o.status == 429 and o.retry_after_s > 0 for o in shed)
        assert all(o["admitted"] is True for o in served)
        assert health["status"] == "ok"  # survived the flood, still serving

    def test_drain_returns_503_then_stops(self):
        config = ServiceConfig(port=0, n_stations=8)

        async def go():
            server = AdmissionServer(config)
            await server.start()
            async with AsyncServiceClient(port=server.port) as client:
                assert (await client.check(0.032, 512.0))["admitted"] is True
                drain = asyncio.ensure_future(server.drain_and_stop())
                await asyncio.sleep(0)  # drain flag is set synchronously
                with pytest.raises(Backoff) as err:
                    await client.check(0.032, 512.0)
                assert err.value.status == 503
                assert (await client.healthz())["status"] == "draining"
                await drain

        asyncio.run(go())

    def test_per_client_rate_limit(self):
        config = ServiceConfig(
            port=0, rate_limit_rps=0.5, rate_limit_burst=1.0
        )

        async def go():
            server = AdmissionServer(config)
            await server.start()
            try:
                async with AsyncServiceClient(
                    port=server.port, client_id="greedy"
                ) as client:
                    assert (await client.check(0.032, 512.0))["admitted"]
                    with pytest.raises(Backoff) as err:
                        await client.check(0.032, 512.0)
                    assert err.value.status == 429
                    assert err.value.retry_after_s > 0
                async with AsyncServiceClient(
                    port=server.port, client_id="patient"
                ) as other:
                    assert (await other.check(0.032, 512.0))["admitted"]
            finally:
                await server.drain_and_stop()

        asyncio.run(go())


# -- load generator -------------------------------------------------------------


class TestLoadgen:
    def test_spawned_run_and_bench_document(self):
        service_config = ServiceConfig(port=0, n_stations=8, policy="exact")
        load_config = LoadConfig(duration_s=0.8, workers=4, seed=11)
        report, summary = asyncio.run(
            run_against_spawned_server(service_config, load_config)
        )
        assert report.requests > 0
        assert report.errors == 0
        assert report.shed == 0
        assert report.throughput_rps > 0
        assert set(report.latency_s) == {
            "mean", "p50", "p90", "p99", "p999", "max",
        }
        assert report.latency_s["p50"] <= report.latency_s["p99"]
        assert report.latency_s["p99"] <= report.latency_s["p999"]
        assert summary["metrics"]["service.batches"]["value"] > 0

        document = bench_document(
            report, config=load_config, server_summary=summary
        )
        # Already in canary form: the summarizer must pass it through.
        assert summarize_benchmark_json(document) is document
        stats = document["benchmarks"][0]["stats"]
        assert stats["rounds"] == len(report.latencies)
        assert stats["ops"] == pytest.approx(report.throughput_rps)

    def test_workload_is_seed_deterministic(self):
        from repro.service.loadgen import _catalogue

        a = _catalogue(LoadConfig(seed=3, catalogue_size=16))
        b = _catalogue(LoadConfig(seed=3, catalogue_size=16))
        c = _catalogue(LoadConfig(seed=4, catalogue_size=16))
        assert a == b
        assert a != c


# -- controller concurrency -----------------------------------------------------


class TestControllerConcurrency:
    def test_threaded_admit_release_keeps_invariants(self):
        controller = make_controller(n=8, policy=AdmissionPolicy.SUFFICIENT)
        n_stations = controller.analysis.ring.n_stations
        errors: list[Exception] = []

        def hammer(worker: int):
            mine: list[int] = []
            try:
                for i in range(30):
                    if i % 3 == 2 and mine:
                        controller.release(mine.pop())
                    else:
                        decision = controller.request(0.032, 64.0)
                        if decision.admitted:
                            mine.append(decision.stream_id)
                for stream_id in mine:
                    controller.release(stream_id)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert controller.admitted_count == 0
        # Every station handed back exactly once: the next 8 admits fill
        # the ring with 8 distinct stations.
        stations = [
            controller.request(0.032, 64.0).station for _ in range(n_stations)
        ]
        assert sorted(stations) == list(range(n_stations))
        assert not controller.request(0.032, 64.0).admitted

    def test_double_release_never_double_frees(self):
        controller = make_controller(n=1)
        decision = controller.request(0.032, 64.0)
        assert controller.release(decision.stream_id).released
        with pytest.raises(AdmissionError):
            controller.release(decision.stream_id)
        outcome = controller.release(decision.stream_id, idempotent=True)
        assert outcome == ReleaseOutcome(released=False, stream_id=1)
        # The single station must have been freed exactly once.
        assert controller.request(0.032, 64.0).admitted
        assert not controller.request(0.032, 64.0).admitted
