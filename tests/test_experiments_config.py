"""PaperParameters: defaults, factories, variations."""

import pytest

from repro.analysis.pdp import PDPVariant
from repro.analysis.ttrt import HalfMinPeriodTTRT
from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.units import mbps


class TestDefaults:
    def test_paper_values(self):
        params = PaperParameters()
        assert params.n_stations == 100
        assert params.station_spacing_m == 100.0
        assert params.velocity_factor == 0.75
        assert params.frame_payload_bytes == 64.0
        assert params.frame_overhead_bits == 112.0
        assert params.mean_period_s == 0.100
        assert params.period_ratio == 10.0

    def test_rejects_zero_sets(self):
        with pytest.raises(ConfigurationError):
            PaperParameters(monte_carlo_sets=0)


class TestFactories:
    def test_frame_format(self):
        frame = PaperParameters().frame_format()
        assert frame.info_bits == 512.0
        assert frame.overhead_bits == 112.0

    def test_rings_have_standard_delays(self):
        params = PaperParameters()
        assert params.pdp_ring(10).station_bit_delay == 4.0
        assert params.ttp_ring(10).station_bit_delay == 75.0

    def test_rings_carry_bandwidth(self):
        assert PaperParameters().pdp_ring(16).bandwidth_bps == mbps(16)

    def test_pdp_analysis(self):
        analysis = PaperParameters().pdp_analysis(10, PDPVariant.MODIFIED)
        assert analysis.variant is PDPVariant.MODIFIED

    def test_ttp_analysis_custom_policy(self):
        analysis = PaperParameters().ttp_analysis(100, HalfMinPeriodTTRT())
        assert isinstance(analysis.ttrt_policy, HalfMinPeriodTTRT)

    def test_sampler_matches_stations(self):
        params = PaperParameters().scaled_down(12, 5)
        assert params.sampler().n_streams == 12

    def test_period_distribution(self):
        bounds = PaperParameters().period_distribution().bounds
        assert bounds[0] == pytest.approx(0.2 / 11)


class TestVariations:
    def test_scaled_down(self):
        params = PaperParameters().scaled_down(10, 3)
        assert params.n_stations == 10
        assert params.monte_carlo_sets == 3
        assert params.mean_period_s == 0.100  # untouched

    def test_with_periods(self):
        params = PaperParameters().with_periods(0.05, 4.0)
        assert params.mean_period_s == 0.05
        assert params.period_ratio == 4.0

    def test_with_frame(self):
        params = PaperParameters().with_frame(128)
        assert params.frame_payload_bytes == 128
        assert params.frame_overhead_bits == 112.0

    def test_with_frame_custom_overhead(self):
        params = PaperParameters().with_frame(128, overhead_bits=200)
        assert params.frame_overhead_bits == 200.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PaperParameters().n_stations = 5
