"""Scale benchmark: columnar throughput + streaming MC efficiency canary.

Exercises :mod:`repro.experiments.scale_bench` at toy sizes — the committed
``BENCH_scale.json`` numbers come from ``make bench-scale``; these tests pin
the machinery (determinism, document schema, eval accounting), not the
performance claims themselves (the verify scale guard does that at real
sizes).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import PaperParameters
from repro.experiments.scale_bench import (
    ScaleBenchResult,
    run_scale_bench,
    scale_bench_document,
)
from repro.obs.benchjson import BENCH_SCHEMA_VERSION


@pytest.fixture(scope="module")
def result():
    return run_scale_bench(
        PaperParameters(),
        n_streams=4000,
        baseline_streams=64,
        distinct_periods=16,
        bandwidth_mbps=10.0,
        mc_streams=6,
        mc_eps=0.02,
        mc_chunk_sets=8,
        mc_min_chunks=2,
        mc_max_sets=512,
        mc_strata=4,
    )


class TestRunScaleBench:
    def test_pipelines_produce_real_verdicts(self, result):
        """Both pipelines must run the full exact analyses: real boolean
        verdicts and a finite TTP saturation scale.  (At thousands of
        stations the TTP scale is legitimately 0.0 — per-station frame
        overheads alone exceed TTRT − δ — which is exactly the regime the
        paper's Figure 1 tails show, so only finiteness is pinned.)"""
        assert result.n_streams == 4000
        assert result.baseline_streams == 64
        assert isinstance(result.columnar_schedulable, bool)
        assert isinstance(result.object_schedulable, bool)
        assert 0.0 <= result.columnar_ttp_scale < float("inf")
        assert 0.0 < result.object_ttp_scale < float("inf")

    def test_throughput_fields_consistent(self, result):
        assert result.columnar_seconds > 0 and result.object_seconds > 0
        assert result.columnar_streams_per_sec == pytest.approx(
            result.n_streams / result.columnar_seconds
        )
        assert result.speedup == pytest.approx(
            result.columnar_streams_per_sec / result.object_streams_per_sec
        )

    def test_mc_estimates_converged_and_agree(self, result):
        assert result.naive.converged and result.vr.converged
        assert result.naive.eps == result.vr.eps == 0.02
        assert result.vr.evaluations <= result.naive.evaluations
        assert result.mc_eval_ratio == pytest.approx(
            result.naive.evaluations / result.vr.evaluations
        )
        tolerance = result.naive.half_width + result.vr.half_width
        assert abs(result.naive.mean - result.vr.mean) <= tolerance

    def test_deterministic_given_parameters(self, result):
        twin = run_scale_bench(
            PaperParameters(),
            n_streams=4000,
            baseline_streams=64,
            distinct_periods=16,
            bandwidth_mbps=10.0,
            mc_streams=6,
            mc_eps=0.02,
            mc_chunk_sets=8,
            mc_min_chunks=2,
            mc_max_sets=512,
            mc_strata=4,
        )
        assert twin.columnar_schedulable == result.columnar_schedulable
        assert twin.columnar_ttp_scale == result.columnar_ttp_scale
        assert twin.object_ttp_scale == result.object_ttp_scale
        assert twin.naive.chunk_means == result.naive.chunk_means
        assert twin.vr.chunk_means == result.vr.chunk_means

    def test_summary_mentions_headlines(self, result):
        text = result.summary()
        assert "speedup" in text and "mc ratio" in text


class TestDocument:
    def test_schema_shape(self, result):
        doc = scale_bench_document(result)
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        names = [b["name"] for b in doc["benchmarks"]]
        assert names == [
            f"columnar_analyze_{result.n_streams}",
            f"object_analyze_{result.baseline_streams}",
            "mc_streaming_naive",
            "mc_streaming_vr",
        ]
        for bench in doc["benchmarks"]:
            stats = bench["stats"]
            assert stats["ops"] == pytest.approx(1.0 / stats["mean"])
            assert bench["group"] in ("scale", "mc")

    def test_guarded_extra_info_present(self, result):
        """The verify scale guard reads these fields from the committed
        document; losing them must fail tests, not the guard at HEAD."""
        doc = scale_bench_document(result)
        by_name = {b["name"]: b for b in doc["benchmarks"]}
        columnar = by_name[f"columnar_analyze_{result.n_streams}"]
        assert columnar["extra_info"]["speedup_vs_object"] == pytest.approx(
            result.speedup
        )
        assert columnar["extra_info"]["streams_per_sec"] > 0
        vr = by_name["mc_streaming_vr"]
        assert vr["extra_info"]["eval_ratio_vs_naive"] == pytest.approx(
            result.mc_eval_ratio
        )
        naive = by_name["mc_streaming_naive"]
        assert naive["extra_info"]["evaluations"] == result.naive.evaluations

    def test_document_is_json_serialisable(self, result):
        doc = scale_bench_document(result)
        parsed = json.loads(json.dumps(doc))
        assert parsed["benchmarks"][0]["group"] == "scale"

    def test_result_is_frozen(self, result):
        assert isinstance(result, ScaleBenchResult)
        with pytest.raises(AttributeError):
            result.n_streams = 1
