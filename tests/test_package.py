"""Package-level hygiene: exports, error hierarchy, version, CLI runner."""

import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_catchable_as_base(self):
        from repro.messages.stream import SynchronousStream

        with pytest.raises(errors.ReproError):
            SynchronousStream(period_s=-1.0, payload_bits=0)

    def test_simulation_error_distinct_from_config(self):
        assert not issubclass(errors.SimulationError, errors.ConfigurationError)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_analysis_exports_resolve(self):
        from repro import analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_sim_exports_resolve(self):
        from repro import sim

        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_experiments_exports_resolve(self):
        from repro import experiments

        for name in experiments.__all__:
            assert hasattr(experiments, name), name

    def test_network_exports_resolve(self):
        from repro import network

        for name in network.__all__:
            assert hasattr(network, name), name

    def test_messages_exports_resolve(self):
        from repro import messages

        for name in messages.__all__:
            assert hasattr(messages, name), name


class TestRunnerCLI:
    def run_cli(self, *args: str, cwd=None) -> subprocess.CompletedProcess:
        # cwd keeps default-location artifacts (manifest.json) out of the
        # repository checkout; an absolute src path on PYTHONPATH keeps
        # the package importable from any working directory.
        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", *args],
            capture_output=True,
            text=True,
            timeout=600,
            cwd=cwd,
            env=env,
        )

    def test_help(self):
        result = self.run_cli("--help")
        assert result.returncode == 0
        assert "figure1" in result.stdout

    def test_rejects_unknown_experiment(self):
        result = self.run_cli("nonsense")
        assert result.returncode != 0

    def test_tiny_figure1_run(self, tmp_path):
        csv_path = tmp_path / "fig1.csv"
        result = self.run_cli(
            "figure1", "--stations", "5", "--sets", "2", "--csv", str(csv_path)
        )
        assert result.returncode == 0, result.stderr
        assert "shape checks" in result.stdout
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("bandwidth_mbps")

    def test_tiny_sba_run(self, tmp_path):
        result = self.run_cli("sba", "--stations", "5", "--sets", "2",
                              "--bandwidth", "100", cwd=str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert "local" in result.stdout
        assert (tmp_path / "manifest.json").exists()

    def test_tiny_report_run(self, tmp_path):
        out = tmp_path / "report.md"
        result = self.run_cli(
            "report", "--stations", "5", "--sets", "2", "--out", str(out),
            cwd=str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        assert "## Figure 1" in text
        assert "## Crossover frontier" in text

    def test_main_importable(self):
        from repro.experiments.runner import main

        assert callable(main)
