"""Graceful interruption: partial manifests, signal routing, exit codes.

An interrupted run must still account for itself — the runner writes its
manifest (flagged ``extra.interrupted``) and exits 130, and
:func:`repro.experiments.parallel.parallel_map` folds the finished
cells' observability into the parent before re-raising.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.experiments import parallel, runner
from repro.obs import metrics, timing


class TestSigtermRouting:
    def test_sigterm_becomes_keyboard_interrupt(self):
        previous = parallel._sigterm_as_interrupt()
        assert previous is not None  # installed from the main thread
        try:
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_merge_completed_folds_only_finished_cells(self):
        class FakeFuture:
            def __init__(self, payload=None, cancelled=False):
                self._payload = payload
                self._cancelled = cancelled

            def done(self):
                return True

            def cancelled(self):
                return self._cancelled

            def exception(self):
                return None

            def result(self):
                return self._payload

        before = metrics.counter("interrupt_test.cells").value
        snap = {"interrupt_test.cells": {"type": "counter", "value": 2.0}}
        parallel._merge_completed(
            [FakeFuture((None, snap, {})), FakeFuture(cancelled=True)]
        )
        assert metrics.counter("interrupt_test.cells").value == before + 2.0


class TestRunnerInterrupt:
    def test_interrupted_run_still_writes_manifest(self, tmp_path, monkeypatch):
        manifest_path = tmp_path / "manifest.json"

        def explode(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner, "ttrt_sweep", explode)
        code = runner.main(
            [
                "ttrt",
                "--fast",
                "--quiet",
                "--log-level",
                "error",
                "--manifest",
                str(manifest_path),
            ]
        )
        assert code == 130
        document = json.loads(manifest_path.read_text())
        assert document["extra"] == {"interrupted": True}
        assert document["command"] == "ttrt"
        assert "runner/ttrt" in document["spans"]

    def test_clean_run_is_not_flagged(self, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        code = runner.main(
            [
                "loadgen",
                "--spawn",
                "--duration",
                "0.4",
                "--load-workers",
                "2",
                "--quiet",
                "--log-level",
                "error",
                "--bench-json",
                str(tmp_path / "BENCH_service.json"),
                "--manifest",
                str(manifest_path),
            ]
        )
        assert code == 0
        document = json.loads(manifest_path.read_text())
        assert "interrupted" not in document.get("extra", {})
        assert "loadgen" in document["extra"]
        assert document["extra"]["loadgen"]["errors"] == 0
        bench = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert bench["schema_version"] == 2
        assert bench["benchmarks"][0]["group"] == "service"
