"""The loss-sweep experiment: table shape, monotone degradation, canary."""

import json

from repro.experiments.loss_sweep import (
    DEFAULT_LOSS_FRACTIONS,
    DEFAULT_RECOVERY_S,
    loss_bench_document,
    loss_figure,
    loss_sweep,
)
from repro.obs.benchjson import BENCH_SCHEMA_VERSION

FRACTIONS = (0.0, 0.01, 0.05)


def run_small(fast_params, jobs=1):
    return loss_sweep(
        fast_params.scaled_down(n_stations=8, monte_carlo_sets=4),
        16.0,
        loss_fractions=FRACTIONS,
        recovery_time_s=1e-3,
        jobs=jobs,
    )


class TestLossSweep:
    def test_table_shape_and_axis(self, fast_params):
        result, cell_seconds = run_small(fast_params)
        assert len(result.rows) == len(FRACTIONS)
        assert [row[0] for row in result.rows] == list(FRACTIONS)
        # The rate axis is loss_fraction / recovery_time.
        assert [row[1] for row in result.rows] == [0.0, 10.0, 50.0]
        assert set(cell_seconds) == {
            (fraction, protocol)
            for fraction in FRACTIONS
            for protocol in ("pdp", "ttp")
        }

    def test_breakdown_positive_and_monotone_non_increasing(self, fast_params):
        result, _ = run_small(fast_params)
        for column in ("IEEE 802.5", "FDDI"):
            values = [float(v) for v in result.column(column)]
            assert values[0] > 0.0, "fault-free baseline must be schedulable"
            assert all(
                a >= b - 1e-9 for a, b in zip(values, values[1:])
            ), (column, values)

    def test_deterministic_across_jobs(self, fast_params):
        sequential, _ = run_small(fast_params, jobs=1)
        parallel, _ = run_small(fast_params, jobs=2)
        assert sequential.rows == parallel.rows

    def test_figure_renders(self, fast_params):
        result, _ = run_small(fast_params)
        figure = loss_figure(result)
        assert "breakdown utilization vs loss fraction" in figure
        assert "IEEE 802.5" in figure and "FDDI" in figure

    def test_default_fractions_include_baseline(self):
        assert DEFAULT_LOSS_FRACTIONS[0] == 0.0
        assert all(
            a < b
            for a, b in zip(DEFAULT_LOSS_FRACTIONS, DEFAULT_LOSS_FRACTIONS[1:])
        )
        assert DEFAULT_RECOVERY_S > 0.0


class TestLossBenchDocument:
    def test_document_shape_and_json_clean(self, fast_params):
        params = fast_params.scaled_down(n_stations=8, monte_carlo_sets=4)
        result, cell_seconds = loss_sweep(
            params, 16.0, loss_fractions=FRACTIONS, recovery_time_s=1e-3
        )
        document = loss_bench_document(
            result, cell_seconds, params, 16.0, 1e-3
        )
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        assert len(document["benchmarks"]) == 2 * len(FRACTIONS)
        json.dumps(document)  # must be JSON-serializable as-is
        for bench in document["benchmarks"]:
            assert bench["group"] == "loss"
            assert bench["stats"]["rounds"] == 1
            assert bench["stats"]["total"] >= 0.0
            assert 0.0 <= bench["extra_info"]["mean_breakdown_utilization"]
            assert bench["params"]["protocol"] in ("pdp", "ttp")

    def test_document_matches_table(self, fast_params):
        params = fast_params.scaled_down(n_stations=8, monte_carlo_sets=4)
        result, cell_seconds = loss_sweep(
            params, 16.0, loss_fractions=FRACTIONS, recovery_time_s=1e-3
        )
        document = loss_bench_document(
            result, cell_seconds, params, 16.0, 1e-3
        )
        by_name = {bench["name"]: bench for bench in document["benchmarks"]}
        for row in result.rows:
            fraction = row[0]
            assert by_name[f"pdp_loss_{fraction:g}"]["extra_info"][
                "mean_breakdown_utilization"
            ] == float(row[2])
            assert by_name[f"ttp_loss_{fraction:g}"]["extra_info"][
                "mean_breakdown_utilization"
            ] == float(row[4])
