"""SBA scheme library: equation (7) fixed point, scheme algebra, searches."""

import pytest

from repro.analysis.sba import (
    ALL_SCHEMES,
    EqualPartitionScheme,
    FullLengthScheme,
    LocalScheme,
    NormalizedProportionalScheme,
    ProportionalScheme,
    allocation_schedulable,
    augmented_length_fixed_point,
    sba_breakdown_scale,
)
from repro.analysis.ttp import local_scheme_allocation
from repro.errors import AllocationError, ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.units import mbps


BW = 1e6
FOVHD = 112e-6
DELTA = 5e-4
TTRT = 0.010


def make_set(payloads=(2000, 3000), periods=(0.050, 0.100)) -> MessageSet:
    return MessageSet(
        SynchronousStream(period_s=p, payload_bits=c, station=i)
        for i, (c, p) in enumerate(zip(payloads, periods))
    )


class TestFixedPoint:
    def test_zero_payload(self):
        assert augmented_length_fixed_point(0.0, 0.01, 0.001) == 0.0

    def test_no_overhead(self):
        assert augmented_length_fixed_point(0.005, 0.01, 0.0) == 0.005

    def test_single_frame(self):
        # C = 4 ms fits one h = 10 ms visit: C' = C + F_ovhd.
        assert augmented_length_fixed_point(0.004, 0.010, 0.0005) == pytest.approx(
            0.0045
        )

    def test_two_frames(self):
        # C = 15 ms, h = 10 ms: C' = 15 + 2*0.5 = 16 ms (2 visits).
        assert augmented_length_fixed_point(0.015, 0.010, 0.0005) == pytest.approx(
            0.016
        )

    def test_overhead_pushes_extra_frame(self):
        # C = 9.8 ms, h = 10, F_ovhd = 0.5: C+1 frame = 10.3 > 10 -> 2 frames
        # -> C' = 9.8 + 1.0 = 10.8.
        assert augmented_length_fixed_point(0.0098, 0.010, 0.0005) == pytest.approx(
            0.0108
        )

    def test_budget_below_overhead_is_infinite(self):
        assert augmented_length_fixed_point(0.001, 0.0004, 0.0005) == float("inf")

    def test_rejects_negative_payload(self):
        with pytest.raises(ConfigurationError):
            augmented_length_fixed_point(-1.0, 0.01, 0.001)


class TestLocalScheme:
    def test_matches_ttp_module(self):
        message_set = make_set()
        from_scheme = LocalScheme().allocate(message_set, TTRT, BW, FOVHD, DELTA)
        direct = local_scheme_allocation(message_set, TTRT, BW, FOVHD, DELTA)
        assert from_scheme.bandwidths_s == direct.bandwidths_s

    def test_schedulable_when_light(self):
        alloc = LocalScheme().allocate(make_set(), TTRT, BW, FOVHD, DELTA)
        assert allocation_schedulable(alloc)


class TestFullLengthScheme:
    def test_budget_is_whole_message(self):
        alloc = FullLengthScheme().allocate(make_set(), TTRT, BW, FOVHD, DELTA)
        assert alloc.bandwidths_s[0] == pytest.approx(0.002 + FOVHD)

    def test_zero_payload_gets_zero(self):
        alloc = FullLengthScheme().allocate(
            make_set(payloads=(0, 1000)), TTRT, BW, FOVHD, DELTA
        )
        assert alloc.bandwidths_s[0] == 0.0

    def test_deadline_ok_when_q_at_least_two(self):
        alloc = FullLengthScheme().allocate(make_set(), TTRT, BW, FOVHD, DELTA)
        assert alloc.satisfies_deadline_constraint()


class TestProportionalScheme:
    def test_budget_formula(self):
        alloc = ProportionalScheme().allocate(make_set(), TTRT, BW, FOVHD, DELTA)
        # h_0 = (C/P) * TTRT = (0.002/0.050)*0.010 = 0.0004.
        assert alloc.bandwidths_s[0] == pytest.approx(0.0004)

    def test_small_loads_fail_deadline(self):
        """The classic pathology: tiny h_i cannot carry frame overhead."""
        tiny = make_set(payloads=(20, 30))
        alloc = ProportionalScheme().allocate(tiny, TTRT, BW, FOVHD, DELTA)
        assert not alloc.satisfies_deadline_constraint()

    def test_deadline_unsatisfiable_for_any_positive_load(self):
        """Under the worst-case availability bound X_i = (q_i - 1) h_i the
        proportional scheme can never guarantee a deadline: since
        (q_i - 1)·TTRT < P_i, the allocation h_i = U_i·TTRT provides
        X_i < C_i — the literature's 'worst-case achievable utilization 0'
        result for this scheme."""
        scheme = ProportionalScheme()
        for scale in (0.001, 0.1, 1.0, 10.0):
            alloc = scheme.allocate(
                make_set().scaled(scale), TTRT, BW, FOVHD, DELTA
            )
            assert not alloc.satisfies_deadline_constraint()

    def test_breakdown_scale_is_zero(self):
        """Consequence: its breakdown scale is 0 on any positive workload."""
        assert (
            sba_breakdown_scale(
                ProportionalScheme(), make_set(), TTRT, BW, FOVHD, DELTA
            )
            == 0.0
        )


class TestNormalizedProportionalScheme:
    def test_fills_budget_exactly(self):
        alloc = NormalizedProportionalScheme().allocate(
            make_set(), TTRT, BW, FOVHD, DELTA
        )
        assert alloc.total_bandwidth_s == pytest.approx(TTRT - DELTA)
        assert alloc.satisfies_protocol_constraint()

    def test_rejects_zero_utilization(self):
        with pytest.raises(AllocationError):
            NormalizedProportionalScheme().allocate(
                make_set(payloads=(0, 0)), TTRT, BW, FOVHD, DELTA
            )

    def test_rejects_no_budget(self):
        with pytest.raises(AllocationError):
            NormalizedProportionalScheme().allocate(
                make_set(), 0.0004, BW, FOVHD, 0.0005
            )


class TestEqualPartitionScheme:
    def test_even_split(self):
        alloc = EqualPartitionScheme().allocate(make_set(), TTRT, BW, FOVHD, DELTA)
        share = (TTRT - DELTA) / 2
        assert alloc.bandwidths_s == (pytest.approx(share), pytest.approx(share))

    def test_protocol_constraint_by_construction(self):
        alloc = EqualPartitionScheme().allocate(make_set(), TTRT, BW, FOVHD, DELTA)
        assert alloc.satisfies_protocol_constraint()


class TestBreakdownScale:
    def test_local_scheme_positive(self):
        scale = sba_breakdown_scale(
            LocalScheme(), make_set(), TTRT, BW, FOVHD, DELTA
        )
        assert scale > 0

    def test_scale_is_feasible_boundary(self):
        scheme = LocalScheme()
        message_set = make_set()
        scale = sba_breakdown_scale(scheme, message_set, TTRT, BW, FOVHD, DELTA)
        at_boundary = scheme.allocate(
            message_set.scaled(scale * 0.999), TTRT, BW, FOVHD, DELTA
        )
        assert allocation_schedulable(at_boundary)

    def test_zero_payload_set(self):
        assert (
            sba_breakdown_scale(
                LocalScheme(), make_set(payloads=(0, 0)), TTRT, BW, FOVHD, DELTA
            )
            == 0.0
        )

    def test_all_schemes_produce_finite_scales(self):
        message_set = make_set()
        for scheme in ALL_SCHEMES:
            scale = sba_breakdown_scale(
                scheme, message_set, TTRT, BW, FOVHD, DELTA
            )
            assert scale >= 0.0
            assert scale != float("inf")

    def test_local_beats_equal_partition_on_skewed_load(self):
        """Unequal demands waste the equal split; the local scheme adapts."""
        skewed = make_set(payloads=(500, 40_000), periods=(0.050, 0.100))
        local = sba_breakdown_scale(LocalScheme(), skewed, TTRT, BW, FOVHD, DELTA)
        equal = sba_breakdown_scale(
            EqualPartitionScheme(), skewed, TTRT, BW, FOVHD, DELTA
        )
        assert local >= equal
