"""Streaming Monte Carlo estimator: stopping rule, determinism, VR modes.

The streaming estimator's contract is that it *is* the fixed-N estimator
with a stopping rule bolted on: plain-mode chunk ``k`` consumes the sample
stream of ``default_rng([seed, k])`` bit-identically, the estimate is
independent of ``jobs``, and the variance-reduction modes (stratified
periods, antithetic twins) change sampling layout, never the estimand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    average_breakdown_utilization,
    streaming_average_breakdown_utilization,
)
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps


BW = mbps(10)

#: Loose bisection tolerance: these tests compare estimators against each
#: other, not against the paper's figures, so the search can stop early.
REL_TOL = 1e-3


@pytest.fixture
def sampler():
    return MessageSetSampler(
        n_streams=6, periods=PeriodDistribution(mean_period_s=0.1, ratio=10.0)
    )


@pytest.fixture
def pdp_analysis():
    return PDPAnalysis(
        ieee_802_5_ring(BW, n_stations=6),
        paper_frame_format(),
        PDPVariant.STANDARD,
    )


@pytest.fixture
def ttp_analysis():
    return TTPAnalysis(fddi_ring(BW, n_stations=6), paper_frame_format())


def _stream(analysis, sampler, **kwargs):
    kwargs.setdefault("rel_tol", REL_TOL)
    return streaming_average_breakdown_utilization(
        analysis, sampler, BW, **kwargs
    )


class TestFixedNEquivalence:
    def test_plain_chunks_bit_identical_to_fixed_n(self, pdp_analysis, sampler):
        """Chunk k of a plain streaming run equals a fixed-N run seeded
        ``[seed, k]`` — the property that makes naive-streaming
        evaluation counts comparable to fixed-N requirements."""
        streaming = _stream(
            pdp_analysis,
            sampler,
            seed=42,
            eps=1e9,
            chunk_sets=5,
            min_chunks=3,
            max_sets=15,
        )
        assert streaming.n_chunks == 3
        for k in range(3):
            fixed = average_breakdown_utilization(
                pdp_analysis,
                sampler,
                BW,
                5,
                np.random.default_rng([42, k]),
                rel_tol=REL_TOL,
            )
            assert streaming.chunk_means[k] == fixed.mean

    def test_mean_is_mean_of_chunk_means(self, ttp_analysis, sampler):
        estimate = _stream(
            ttp_analysis, sampler, seed=7, eps=1e9, chunk_sets=4, min_chunks=4
        )
        assert estimate.mean == pytest.approx(
            np.mean(estimate.chunk_means), abs=1e-15
        )


class TestStoppingRule:
    def test_stops_when_ci_reached(self, ttp_analysis, sampler):
        estimate = _stream(
            ttp_analysis,
            sampler,
            seed=0,
            eps=0.02,
            chunk_sets=8,
            min_chunks=2,
            max_sets=4096,
        )
        assert estimate.converged
        assert estimate.half_width <= 0.02
        assert estimate.evaluations < 4096

    def test_tighter_eps_needs_more_evaluations(self, ttp_analysis, sampler):
        loose = _stream(
            ttp_analysis, sampler, seed=1, eps=0.05, chunk_sets=4, max_sets=2048
        )
        tight = _stream(
            ttp_analysis, sampler, seed=1, eps=0.005, chunk_sets=4, max_sets=2048
        )
        assert tight.evaluations > loose.evaluations

    def test_hard_cap_respected(self, ttp_analysis, sampler):
        estimate = _stream(
            ttp_analysis,
            sampler,
            seed=2,
            eps=1e-9,
            chunk_sets=4,
            min_chunks=2,
            max_sets=24,
        )
        assert not estimate.converged
        assert estimate.evaluations == 24

    def test_min_chunks_enforced(self, ttp_analysis, sampler):
        estimate = _stream(
            ttp_analysis, sampler, seed=3, eps=1e9, chunk_sets=4, min_chunks=5
        )
        assert estimate.n_chunks == 5


class TestDeterminism:
    def test_same_seed_same_estimate(self, ttp_analysis, sampler):
        a = _stream(ttp_analysis, sampler, seed=9, eps=0.02, chunk_sets=8)
        b = _stream(ttp_analysis, sampler, seed=9, eps=0.02, chunk_sets=8)
        assert a == b

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_jobs_do_not_change_the_estimate(self, ttp_analysis, sampler, jobs):
        """Workers compute chunks speculatively; the folded result must be
        bit-identical to the inline run for every jobs value."""
        inline = _stream(
            ttp_analysis, sampler, seed=11, eps=0.02, chunk_sets=8, jobs=1
        )
        parallel = _stream(
            ttp_analysis, sampler, seed=11, eps=0.02, chunk_sets=8, jobs=jobs
        )
        assert inline == parallel

    def test_tuple_seed_accepted(self, ttp_analysis, sampler):
        a = _stream(ttp_analysis, sampler, seed=(5, 6), eps=1e9, chunk_sets=4)
        b = _stream(ttp_analysis, sampler, seed=(5, 6), eps=1e9, chunk_sets=4)
        assert a == b


class TestVarianceReduction:
    def test_stratified_mean_agrees_with_plain(self, ttp_analysis, sampler):
        plain = _stream(
            ttp_analysis,
            sampler,
            seed=21,
            eps=1e-12,
            chunk_sets=16,
            max_sets=256,
        )
        stratified = _stream(
            ttp_analysis,
            sampler,
            seed=22,
            eps=1e-12,
            chunk_sets=16,
            max_sets=256,
            strata=8,
        )
        combined = float(np.hypot(plain.stderr, stratified.stderr))
        assert abs(plain.mean - stratified.mean) <= 6.0 * combined

    def test_antithetic_mean_agrees_with_plain(self, ttp_analysis, sampler):
        plain = _stream(
            ttp_analysis,
            sampler,
            seed=31,
            eps=1e-12,
            chunk_sets=16,
            max_sets=256,
        )
        antithetic = _stream(
            ttp_analysis,
            sampler,
            seed=32,
            eps=1e-12,
            chunk_sets=16,
            max_sets=256,
            antithetic=True,
        )
        combined = float(np.hypot(plain.stderr, antithetic.stderr))
        assert abs(plain.mean - antithetic.mean) <= 6.0 * combined

    def test_stratification_reduces_ttp_chunk_variance(self, ttp_analysis):
        """TTP breakdown utilization is smooth in the periods, so Latin
        hypercube stratification must shrink the chunk-mean spread."""
        wide = MessageSetSampler(
            n_streams=4,
            periods=PeriodDistribution(mean_period_s=0.1, ratio=30.0),
        )
        plain = _stream(
            ttp_analysis,
            wide,
            seed=40,
            eps=1e-12,
            chunk_sets=16,
            max_sets=512,
        )
        stratified = _stream(
            ttp_analysis,
            wide,
            seed=40,
            eps=1e-12,
            chunk_sets=16,
            max_sets=512,
            strata=16,
        )
        assert np.std(stratified.chunk_means) < np.std(plain.chunk_means)


class TestValidation:
    def test_rejects_bad_parameters(self, ttp_analysis, sampler):
        with pytest.raises(ConfigurationError):
            _stream(ttp_analysis, sampler, seed=0, eps=0.0)
        with pytest.raises(ConfigurationError):
            _stream(ttp_analysis, sampler, seed=0, z=0.0)
        with pytest.raises(ConfigurationError):
            _stream(ttp_analysis, sampler, seed=0, chunk_sets=0)
        with pytest.raises(ConfigurationError):
            _stream(ttp_analysis, sampler, seed=0, min_chunks=1)
        with pytest.raises(ConfigurationError):
            _stream(ttp_analysis, sampler, seed=0, chunk_sets=8, max_sets=4)
