"""Theorem 4.1: augmented lengths, blocking, and the PDP schedulability test.

The hand-computed cases use synthetic rings with zero propagation distance
so that ``Θ`` is an exact rational number of bit-times.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pdp import (
    PDPAnalysis,
    PDPVariant,
    pdp_augmented_length,
    pdp_blocking_time,
)
from repro.analysis.rm import response_time_analysis
from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.units import mbps


def make_ring(latency_bits_per_station: float, bandwidth: float = 1e6) -> RingNetwork:
    """A 4-station ring with zero propagation: Θ is exactly rational."""
    return RingNetwork(
        n_stations=4,
        station_spacing_m=0.0,
        station_bit_delay=latency_bits_per_station,
        token_bits=24.0,
        bandwidth_bps=bandwidth,
        velocity_factor=0.75,
    )


FRAME = FrameFormat(info_bits=512, overhead_bits=112)
US = 1e-6  # one microsecond at 1 Mbps == one bit-time


class TestBlocking:
    def test_low_bandwidth_frame_dominates(self):
        ring = make_ring(25.0)  # Θ = 124 bit-times < F = 624
        assert pdp_blocking_time(ring, FRAME) == pytest.approx(2 * 624 * US)

    def test_high_latency_theta_dominates(self):
        ring = make_ring(200.0)  # Θ = 824 bit-times > F = 624
        assert pdp_blocking_time(ring, FRAME) == pytest.approx(2 * 824 * US)


class TestAugmentedLengthLowBandwidth:
    """F > Θ regime: ring with Θ = 124 µs, F = 624 µs at 1 Mbps."""

    RING = make_ring(25.0)

    def test_zero_payload_is_free(self):
        for variant in PDPVariant:
            assert pdp_augmented_length(0.0, self.RING, FRAME, variant) == 0.0

    def test_standard_two_frames(self):
        # 1000 bits: L=1, K=2; last chunk = 1000-512+112 = 600 bits > Θ.
        # C' = 1*624 + 2*(124/2) + 600 = 1348 µs.
        value = pdp_augmented_length(1000.0, self.RING, FRAME, PDPVariant.STANDARD)
        assert value == pytest.approx(1348 * US)

    def test_modified_two_frames(self):
        # Token paid once: C' = 624 + 62 + 600 = 1286 µs.
        value = pdp_augmented_length(1000.0, self.RING, FRAME, PDPVariant.MODIFIED)
        assert value == pytest.approx(1286 * US)

    def test_tiny_last_chunk_floors_at_theta(self):
        # 513 bits: last chunk = 1+112 = 113 bits < Θ = 124 -> floor at Θ.
        # standard: 624 + 2*62 + 124 = 872 µs.
        value = pdp_augmented_length(513.0, self.RING, FRAME, PDPVariant.STANDARD)
        assert value == pytest.approx(872 * US)

    def test_exact_full_frames_have_no_last_term(self):
        # 1024 bits = exactly 2 frames: standard C' = 2*624 + 2*62 = 1372.
        value = pdp_augmented_length(1024.0, self.RING, FRAME, PDPVariant.STANDARD)
        assert value == pytest.approx(1372 * US)

    def test_single_short_frame(self):
        # 100 bits: L=0, K=1; chunk = 212 > Θ: standard C' = 62 + 212 = 274.
        value = pdp_augmented_length(100.0, self.RING, FRAME, PDPVariant.STANDARD)
        assert value == pytest.approx(274 * US)


class TestAugmentedLengthHighLatency:
    """F <= Θ regime: ring with Θ = 824 µs, F = 624 µs at 1 Mbps."""

    RING = make_ring(200.0)

    def test_standard(self):
        # 1000 bits -> K=2: C' = 2*824 + 2*412 = 2472 µs.
        value = pdp_augmented_length(1000.0, self.RING, FRAME, PDPVariant.STANDARD)
        assert value == pytest.approx(2472 * US)

    def test_modified(self):
        # C' = 2*824 + 412 = 2060 µs.
        value = pdp_augmented_length(1000.0, self.RING, FRAME, PDPVariant.MODIFIED)
        assert value == pytest.approx(2060 * US)

    def test_single_frame_variants_coincide(self):
        # K=1: both variants pay one Θ + Θ/2.
        std = pdp_augmented_length(100.0, self.RING, FRAME, PDPVariant.STANDARD)
        mod = pdp_augmented_length(100.0, self.RING, FRAME, PDPVariant.MODIFIED)
        assert std == pytest.approx(mod) == pytest.approx((824 + 412) * US)


class TestAugmentedLengthProperties:
    def test_rejects_negative_payload(self):
        with pytest.raises(MessageSetError):
            pdp_augmented_length(-1.0, make_ring(25.0), FRAME, PDPVariant.STANDARD)

    @settings(max_examples=150, deadline=None)
    @given(
        payload=st.floats(min_value=0.0, max_value=1e6),
        bump=st.floats(min_value=0.0, max_value=1e5),
        delay=st.floats(min_value=0.0, max_value=500.0),
        bandwidth=st.floats(min_value=1e5, max_value=1e9),
    )
    def test_monotone_in_payload(self, payload, bump, delay, bandwidth):
        """C'_i never decreases as the message grows — the property that
        makes the saturation bisection valid."""
        ring = make_ring(delay, bandwidth)
        for variant in PDPVariant:
            assert pdp_augmented_length(
                payload + bump, ring, FRAME, variant
            ) >= pdp_augmented_length(payload, ring, FRAME, variant) - 1e-15

    @settings(max_examples=100, deadline=None)
    @given(
        payload=st.floats(min_value=1.0, max_value=1e6),
        delay=st.floats(min_value=0.0, max_value=500.0),
        bandwidth=st.floats(min_value=1e5, max_value=1e9),
    )
    def test_modified_never_worse_than_standard(self, payload, delay, bandwidth):
        ring = make_ring(delay, bandwidth)
        std = pdp_augmented_length(payload, ring, FRAME, PDPVariant.STANDARD)
        mod = pdp_augmented_length(payload, ring, FRAME, PDPVariant.MODIFIED)
        assert mod <= std + 1e-15

    @settings(max_examples=100, deadline=None)
    @given(payload=st.floats(min_value=1.0, max_value=1e6))
    def test_augmented_exceeds_raw(self, payload):
        """Overheads only ever add: C'_i >= C_i."""
        ring = make_ring(25.0)
        raw = payload / ring.bandwidth_bps
        assert pdp_augmented_length(
            payload, ring, FRAME, PDPVariant.MODIFIED
        ) >= raw - 1e-15


class TestPDPAnalysis:
    def make_analysis(self, variant=PDPVariant.STANDARD) -> PDPAnalysis:
        return PDPAnalysis(make_ring(25.0), FRAME, variant)

    def make_set(self, payloads, periods) -> MessageSet:
        return MessageSet(
            SynchronousStream(period_s=p, payload_bits=c, station=i)
            for i, (c, p) in enumerate(zip(payloads, periods))
        )

    def test_empty_set_schedulable(self):
        assert self.make_analysis().is_schedulable(MessageSet([]))

    def test_light_set_schedulable(self):
        message_set = self.make_set([500, 500], [0.1, 0.2])
        assert self.make_analysis().is_schedulable(message_set)

    def test_overloaded_set_unschedulable(self):
        message_set = self.make_set([60_000, 60_000], [0.1, 0.1])
        assert not self.make_analysis().is_schedulable(message_set)

    def test_analyze_reports_per_stream(self):
        message_set = self.make_set([500, 500], [0.1, 0.2])
        result = self.make_analysis().analyze(message_set)
        assert result.schedulable
        assert len(result.details) == 2
        assert result.worst_ratio < 1.0
        assert len(result.augmented_lengths) == 2

    def test_analyze_handles_unsorted_input(self):
        """The analysis must RM-sort internally."""
        message_set = self.make_set([500, 500], [0.2, 0.1])
        result = self.make_analysis().analyze(message_set)
        # Details come back in RM order: shortest period first.
        assert result.details[0].critical_point <= result.details[1].critical_point

    def test_matches_manual_rta(self):
        """Theorem 4.1 verdict == RTA over the augmented lengths + blocking."""
        analysis = self.make_analysis(PDPVariant.MODIFIED)
        message_set = self.make_set([2000, 3000, 9000], [0.02, 0.05, 0.1])
        ordered = message_set.rate_monotonic()
        lengths = analysis.augmented_lengths(ordered)
        responses = response_time_analysis(
            list(lengths), list(ordered.periods), analysis.blocking
        )
        rta_ok = all(r <= p for r, p in zip(responses, ordered.periods))
        assert analysis.is_schedulable(message_set) == rta_ok

    def test_with_ring_rebinds_bandwidth(self):
        analysis = self.make_analysis()
        faster = analysis.with_ring(analysis.ring.with_bandwidth(mbps(100)))
        assert faster.ring.bandwidth_bps == mbps(100)
        assert faster.variant == analysis.variant

    def test_cache_is_bounded(self):
        analysis = self.make_analysis()
        for i in range(10):
            message_set = self.make_set([10.0], [0.01 * (i + 1)])
            analysis.is_schedulable(message_set)
        assert len(analysis._test_cache) <= PDPAnalysis._CACHE_SIZE

    def test_modified_schedules_superset_of_standard(self):
        """Anything the standard protocol guarantees, the modified one does."""
        std = self.make_analysis(PDPVariant.STANDARD)
        mod = self.make_analysis(PDPVariant.MODIFIED)
        for scale in (0.5, 1.0, 2.0, 4.0, 8.0):
            message_set = self.make_set(
                [1000 * scale, 2000 * scale], [0.02, 0.05]
            )
            if std.is_schedulable(message_set):
                assert mod.is_schedulable(message_set)
