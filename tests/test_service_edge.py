"""Service edge cases: Retry-After parsing and internal-error accounting.

The client must survive any ``Retry-After`` a proxy could hand it —
missing, malformed, negative, non-finite, oddly cased — without ever
producing a delay that stalls a retry loop forever or poisons its
arithmetic.  The server's route-level catch-all must keep the connection
loop alive *and* leave an audit trail: a warning log carrying the active
trace id plus a ``service.errors.internal`` counter tick.
"""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.obs import metrics
from repro.service import Backoff, ServiceClient
from repro.service.client import (
    _raise_for_status,
    _retry_after_seconds,
    _sanitize_delay,
)
from repro.service.protocol import ServiceConfig

from tests.test_service import _ServerThread


class TestSanitizeDelay:
    @pytest.mark.parametrize("value", [float("nan"), float("inf"), -1.0, -0.001])
    def test_pathological_values_clamp_to_zero(self, value):
        assert _sanitize_delay(value) == 0.0

    @pytest.mark.parametrize("value", [0.0, 0.25, 2.0, 3600.0])
    def test_sane_values_pass_through(self, value):
        assert _sanitize_delay(value) == value


class TestRetryAfterHeader:
    def test_integral_seconds(self):
        assert _retry_after_seconds({"retry-after": "2"}) == 2.0

    @pytest.mark.parametrize(
        "name", ["Retry-After", "RETRY-AFTER", "retry-after", "ReTrY-aFtEr"]
    )
    def test_header_name_case_insensitive(self, name):
        assert _retry_after_seconds({name: "7"}) == 7.0

    def test_fractional_and_padded_forms(self):
        assert _retry_after_seconds({"retry-after": "1.5"}) == 1.5
        assert _retry_after_seconds({"retry-after": " 2 "}) == 2.0

    @pytest.mark.parametrize("raw", ["", "abc", "Fri, 31 Dec 1999 23:59:59 GMT"])
    def test_unparsable_falls_back_to_default(self, raw):
        assert _retry_after_seconds({"retry-after": raw}) == 1.0
        assert _retry_after_seconds({"retry-after": raw}, default=4.0) == 4.0

    @pytest.mark.parametrize("raw", ["-3", "nan", "inf", "-inf"])
    def test_hostile_numeric_forms_clamp_to_zero(self, raw):
        assert _retry_after_seconds({"retry-after": raw}) == 0.0

    def test_missing_header_uses_default(self):
        assert _retry_after_seconds({}) == 1.0
        assert _retry_after_seconds({"content-type": "text/plain"}, 0.5) == 0.5

    def test_non_string_value_is_tolerated(self):
        assert _retry_after_seconds({"retry-after": 3}) == 3.0
        assert _retry_after_seconds({"retry-after": None}) == 1.0


class TestRaiseForStatus:
    def test_2xx_does_not_raise(self):
        _raise_for_status(200, {}, {})
        _raise_for_status(204, {}, {})

    def test_backoff_prefers_payload_hint(self):
        with pytest.raises(Backoff) as err:
            _raise_for_status(
                429, {"retry_after_s": 2.5}, {"retry-after": "9"}
            )
        assert err.value.status == 429
        assert err.value.retry_after_s == 2.5

    def test_backoff_sanitizes_payload_hint(self):
        with pytest.raises(Backoff) as err:
            _raise_for_status(429, {"retry_after_s": -5.0}, {})
        assert err.value.retry_after_s == 0.0

    def test_backoff_falls_back_to_header(self):
        with pytest.raises(Backoff) as err:
            _raise_for_status(503, {}, {"retry-after": "4"})
        assert err.value.status == 503
        assert err.value.retry_after_s == 4.0

    def test_backoff_unparsable_everywhere_uses_default(self):
        with pytest.raises(Backoff) as err:
            _raise_for_status(429, {"retry_after_s": "soon"}, {})
        assert err.value.retry_after_s == 1.0

    def test_admission_404_maps_to_typed_error(self):
        with pytest.raises(AdmissionError):
            _raise_for_status(
                404, {"error": "AdmissionError", "detail": "gone"}, {}
            )

    def test_other_errors_raise_service_error(self):
        with pytest.raises(ServiceError):
            _raise_for_status(500, {"error": "InternalError"}, {})


class TestInternalErrorAccounting:
    def test_unhandled_route_error_counts_and_stays_alive(self):
        config = ServiceConfig(port=0, n_stations=8)
        with _ServerThread(config) as server:
            def boom(query):
                raise RuntimeError("synthetic route failure")

            server._metrics_endpoint = boom
            counter = metrics.counter("service.errors.internal")
            before = counter.value
            with ServiceClient(port=server.port) as client:
                status, payload, _ = client.request("GET", "/metrics")
                assert status == 500
                assert payload["error"] == "InternalError"
                assert "synthetic route failure" in payload["detail"]
                assert counter.value == before + 1
                # The connection loop survived: the next request succeeds.
                assert client.healthz()["status"] == "ok"
