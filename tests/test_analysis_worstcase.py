"""Minimum breakdown utilization: vertex property, the 33% story, search."""

import numpy as np
import pytest

from repro.analysis.bounds import ttp_guaranteed_utilization
from repro.analysis.breakdown import breakdown_utilization
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.analysis.ttrt import FixedTTRT
from repro.analysis.worstcase import (
    pdp_minimum_breakdown,
    ttp_breakdown_of_set,
    ttp_minimum_breakdown,
)
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps


FRAME = paper_frame_format()


class TestTTPWorstCase:
    def test_classic_one_third_with_fixed_ttrt(self):
        """With TTRT fixed at P_min/2 and the period domain reaching past
        3·TTRT, the adversary lands at q = 2 and the minimum breakdown
        approaches the 33% bound (discounted by overheads)."""
        low = 0.020
        ttrt = low / 2
        analysis = TTPAnalysis(
            fddi_ring(mbps(1000), n_stations=4), FRAME, FixedTTRT(ttrt)
        )
        result = ttp_minimum_breakdown(analysis, (low, 0.2), 4, grid_points=800)
        bound = ttp_guaranteed_utilization(
            ttrt, analysis.delta, 4, analysis.frame_overhead_time
        )
        # Above the guarantee (soundness) but within 10% of it (tightness).
        assert result.utilization >= bound - 1e-9
        assert result.utilization <= bound * 1.10

    def test_sqrt_rule_defends_the_worst_case(self):
        """The sqrt rule's small TTRT pushes every period to large q, so
        its minimum breakdown over the same domain is far above 1/3 —
        the run-time payoff of the paper's TTRT heuristic."""
        analysis = TTPAnalysis(fddi_ring(mbps(1000), n_stations=4), FRAME)
        result = ttp_minimum_breakdown(analysis, (0.02, 0.2), 4)
        assert result.utilization > 0.6

    def test_witness_is_reproducible(self):
        """The reported utilization is exactly the witness set's breakdown."""
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=4), FRAME)
        result = ttp_minimum_breakdown(analysis, (0.02, 0.1), 4, grid_points=100)
        assert ttp_breakdown_of_set(analysis, result.message_set) == pytest.approx(
            result.utilization
        )

    def test_minimum_below_random_samples(self):
        """Adversarial minimum lower-bounds breakdowns of sampled sets."""
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=6), FRAME)
        dist = PeriodDistribution(mean_period_s=0.1, ratio=5.0)
        low, high = dist.bounds
        worst = ttp_minimum_breakdown(analysis, (low, high), 6).utilization
        sampler = MessageSetSampler(n_streams=6, periods=dist)
        rng = np.random.default_rng(1)
        for message_set in sampler.sample_many(rng, 10):
            assert ttp_breakdown_of_set(analysis, message_set) >= worst - 1e-9

    def test_rejects_bad_bounds(self):
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=2), FRAME)
        with pytest.raises(ConfigurationError):
            ttp_minimum_breakdown(analysis, (0.1, 0.05), 2)

    def test_rejects_zero_streams(self):
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=2), FRAME)
        with pytest.raises(ConfigurationError):
            ttp_minimum_breakdown(analysis, (0.02, 0.1), 0)


class TestPDPWorstCase:
    def make_analysis(self):
        return PDPAnalysis(
            ieee_802_5_ring(mbps(10), n_stations=5), FRAME, PDPVariant.MODIFIED
        )

    def test_witness_is_valid(self):
        """The search's reported value matches the witness set's actual
        breakdown utilization."""
        analysis = self.make_analysis()
        result = pdp_minimum_breakdown(
            analysis, (0.02, 0.2), 5, restarts=3, iterations=15, rng=0
        )
        check = breakdown_utilization(
            result.message_set, analysis, analysis.ring.bandwidth_bps, 1e-3
        )
        assert check.utilization == pytest.approx(result.utilization, rel=0.02)

    def test_minimum_below_average(self):
        """The adversarial witness must undercut typical random sets."""
        analysis = self.make_analysis()
        result = pdp_minimum_breakdown(
            analysis, (0.02, 0.2), 5, restarts=4, iterations=25, rng=1
        )
        sampler = MessageSetSampler(
            n_streams=5,
            periods=PeriodDistribution(mean_period_s=0.11, ratio=10.0),
        )
        rng = np.random.default_rng(2)
        sampled = [
            breakdown_utilization(
                m, analysis, analysis.ring.bandwidth_bps, 1e-3
            ).utilization
            for m in sampler.sample_many(rng, 8)
        ]
        assert result.utilization <= np.mean(sampled)

    def test_deterministic_given_seed(self):
        analysis = self.make_analysis()
        a = pdp_minimum_breakdown(
            analysis, (0.02, 0.2), 4, restarts=2, iterations=10, rng=7
        )
        b = pdp_minimum_breakdown(
            analysis, (0.02, 0.2), 4, restarts=2, iterations=10, rng=7
        )
        assert a.utilization == b.utilization

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            pdp_minimum_breakdown(self.make_analysis(), (0.0, 0.1), 3)
