"""Reporting helpers: tables, ASCII plots, CSV."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.reporting import ascii_plot, format_csv, format_table, write_csv


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [[1.0, "x"], [2.5, "yy"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # All lines equal width-ish (header padding applied).
        assert "1.0000" in lines[2]

    def test_float_format(self):
        table = format_table(["v"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in table

    def test_nan_rendering(self):
        assert "nan" in format_table(["v"], [[float("nan")]])

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1.0]])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        plot = ascii_plot([1, 2, 3], {"up": [0.1, 0.2, 0.3]}, width=20, height=5)
        assert "*" in plot
        assert "up" in plot

    def test_title(self):
        plot = ascii_plot([1, 2], {"s": [1.0, 2.0]}, title="hello")
        assert plot.startswith("hello")

    def test_log_axis_labels(self):
        plot = ascii_plot([1, 1000], {"s": [0.0, 1.0]}, logx=True)
        assert "1e+03" in plot

    def test_multiple_series_distinct_markers(self):
        plot = ascii_plot(
            [1, 2], {"a": [0.0, 0.1], "b": [1.0, 0.9]}, width=20, height=5
        )
        assert "*" in plot and "o" in plot

    def test_nan_values_skipped(self):
        plot = ascii_plot([1, 2, 3], {"s": [0.1, float("nan"), 0.3]})
        assert plot  # renders without error

    def test_constant_series_handled(self):
        assert ascii_plot([1, 2], {"s": [0.5, 0.5]})

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([], {})

    def test_rejects_all_nan(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([1], {"s": [float("nan")]})


class TestCSV:
    def test_format(self):
        text = format_csv(["a", "b"], [[1.5, "x"], [2.0, "y"]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1.5,x"

    def test_write(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ["v"], [[0.25]])
        assert path.read_text() == "v\n0.25\n"
