"""Property tests for the protocol-faithful 802.5 simulator.

Randomized workloads exercise the priority/reservation/stacking machinery
far beyond the hand-built cases: the protocol invariants (enforced
internally) must never trip, accounting must stay conserved, and the
faithful model must respect the same analytical envelopes as the
abstract one wherever margin exists.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.sim.ieee8025 import (
    IEEE8025Config,
    IEEE8025Simulator,
    assign_service_levels,
)
from repro.sim.traffic import ArrivalPhasing, SynchronousTraffic
from repro.units import mbps


FRAME = paper_frame_format()


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    streams = []
    for i in range(n):
        period = draw(st.floats(min_value=0.02, max_value=0.2))
        payload = draw(st.floats(min_value=100.0, max_value=60_000.0))
        streams.append(
            SynchronousStream(period_s=period, payload_bits=payload, station=i)
        )
    return MessageSet(streams)


class TestLevelAssignmentProperties:
    @settings(max_examples=80, deadline=None)
    @given(workload=workloads(), levels=st.integers(min_value=2, max_value=16))
    def test_levels_in_range_and_monotone(self, workload, levels):
        """Sync levels stay in [1, L-1] and never invert the RM order."""
        assigned = assign_service_levels(workload, levels)
        assert all(1 <= lv <= levels - 1 for lv in assigned)
        ranked = sorted(
            range(len(workload)),
            key=lambda i: (
                workload[i].period_s,
                workload[i].payload_bits,
                workload[i].station,
            ),
        )
        ranked_levels = [assigned[i] for i in ranked]
        assert ranked_levels == sorted(ranked_levels, reverse=True)


class TestSimulatorProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        workload=workloads(),
        phasing=st.sampled_from(list(ArrivalPhasing)),
        variant=st.sampled_from(list(PDPVariant)),
    )
    def test_accounting_conserved(self, workload, phasing, variant):
        """Busy times fill the horizon (saturating async), completions
        never exceed arrivals, and the internal protocol invariants
        (priority-stack bound) never trip."""
        ring = ieee_802_5_ring(mbps(16), n_stations=len(workload))
        simulator = IEEE8025Simulator(
            ring, FRAME, workload,
            IEEE8025Config(variant=variant, phasing=phasing),
        )
        duration = 1.2 * workload.max_period
        report = simulator.run(duration)

        arrivals = len(SynchronousTraffic(workload, phasing).arrivals_until(duration))
        assert report.total_completed <= arrivals
        occupied = (
            report.sync_busy_time + report.async_busy_time + report.token_time
        )
        # The last in-flight frame may straddle the horizon.
        slack = max(FRAME.frame_time(ring.bandwidth_bps), ring.theta)
        assert occupied <= duration + slack
        assert occupied >= 0.9 * duration  # saturating async: no idling

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_margin_sets_stay_clean(self, seed):
        """Random sets at half their analytic breakdown never miss in the
        faithful simulator with ample priority levels."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        workload = MessageSet(
            SynchronousStream(
                period_s=float(rng.uniform(0.03, 0.15)),
                payload_bits=float(rng.uniform(1000, 30_000)),
                station=i,
            )
            for i in range(n)
        )
        ring = ieee_802_5_ring(mbps(16), n_stations=n)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        scale, __ = breakdown_scale(workload, analysis, rel_tol=1e-3)
        if not (0 < scale < float("inf")):
            return
        near = workload.scaled(scale * 0.5)
        simulator = IEEE8025Simulator(
            ring, FRAME, near, IEEE8025Config(n_priority_levels=32)
        )
        report = simulator.run(2.0 * near.max_period)
        assert report.deadline_safe
