"""Analytic ceilings: values, limits, and agreement with Monte Carlo."""

import numpy as np
import pytest

from repro.analysis.asymptotics import (
    ceiling_curves,
    pdp_utilization_ceiling,
    ttp_utilization_ceiling,
)
from repro.analysis.montecarlo import average_breakdown_utilization
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps


FRAME = paper_frame_format()


class TestPDPCeiling:
    def test_low_bandwidth_value(self):
        """F > Θ regime: standard ceiling = F_info / (F + Θ/2)."""
        ring = ieee_802_5_ring(mbps(1), n_stations=10)
        frame_time = FRAME.frame_time(mbps(1))
        assert frame_time > ring.theta
        expected = FRAME.info_time(mbps(1)) / (frame_time + ring.theta / 2)
        value = pdp_utilization_ceiling(ring, FRAME, PDPVariant.STANDARD)
        assert value == pytest.approx(expected)

    def test_high_bandwidth_value(self):
        """Θ > F regime: modified ceiling = F_info / Θ."""
        ring = ieee_802_5_ring(mbps(1000), n_stations=10)
        assert ring.theta > FRAME.frame_time(mbps(1000))
        expected = FRAME.info_time(mbps(1000)) / ring.theta
        value = pdp_utilization_ceiling(ring, FRAME, PDPVariant.MODIFIED)
        assert value == pytest.approx(expected)

    def test_modified_dominates(self):
        for bandwidth in (1, 10, 100, 1000):
            ring = ieee_802_5_ring(mbps(bandwidth), n_stations=10)
            std = pdp_utilization_ceiling(ring, FRAME, PDPVariant.STANDARD)
            mod = pdp_utilization_ceiling(ring, FRAME, PDPVariant.MODIFIED)
            assert mod >= std

    def test_ceiling_collapses_at_high_bandwidth(self):
        """The Figure 1 collapse: ceiling → 0 as bandwidth → ∞."""
        values = [
            pdp_utilization_ceiling(
                ieee_802_5_ring(mbps(b), n_stations=100), FRAME, PDPVariant.MODIFIED
            )
            for b in (100, 1000, 10_000)
        ]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.05

    def test_ceiling_bounds_monte_carlo(self):
        """No sampled breakdown utilization exceeds the analytic ceiling."""
        bandwidth = mbps(100)
        ring = ieee_802_5_ring(bandwidth, n_stations=10)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        sampler = MessageSetSampler(
            n_streams=10, periods=PeriodDistribution(0.1, 10.0)
        )
        estimate = average_breakdown_utilization(
            analysis, sampler, bandwidth, 10, np.random.default_rng(0)
        )
        ceiling = pdp_utilization_ceiling(ring, FRAME, PDPVariant.STANDARD)
        assert max(estimate.samples) <= ceiling + 1e-6


class TestTTPCeiling:
    def test_value(self):
        assert ttp_utilization_ceiling(0.01, 0.001, 10, 1e-5) == pytest.approx(
            1.0 - (0.001 + 10e-5) / 0.01
        )

    def test_clamped_at_zero(self):
        assert ttp_utilization_ceiling(0.001, 0.01, 0, 0.0) == 0.0

    def test_approaches_one(self):
        assert ttp_utilization_ceiling(0.01, 1e-7, 0, 0.0) > 0.99

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            ttp_utilization_ceiling(0.0, 0.0, 0, 0.0)
        with pytest.raises(ConfigurationError):
            ttp_utilization_ceiling(0.01, -1.0, 0, 0.0)


class TestCeilingCurves:
    def test_bundle(self):
        bandwidth = mbps(100)
        curves = ceiling_curves(
            ieee_802_5_ring(bandwidth, n_stations=10),
            fddi_ring(bandwidth, n_stations=10),
            FRAME,
            ttrt_s=0.005,
            n_streams=10,
        )
        assert curves.pdp_modified >= curves.pdp_standard
        assert 0.0 <= curves.ttp <= 1.0

    def test_rejects_mismatched_bandwidths(self):
        with pytest.raises(ConfigurationError):
            ceiling_curves(
                ieee_802_5_ring(mbps(10), n_stations=10),
                fddi_ring(mbps(100), n_stations=10),
                FRAME,
                ttrt_s=0.005,
                n_streams=10,
            )

    def test_figure1_ordering_at_extremes(self):
        """The analytic curves alone already predict Figure 1's endpoints:
        PDP above TTP at 1 Mbps (small ring), TTP above PDP at 1 Gbps."""
        def curves_at(bandwidth_mbps):
            bandwidth = mbps(bandwidth_mbps)
            return ceiling_curves(
                ieee_802_5_ring(bandwidth, n_stations=10),
                fddi_ring(bandwidth, n_stations=10),
                FRAME,
                ttrt_s=0.009,
                n_streams=10,
            )

        low, high = curves_at(1), curves_at(1000)
        assert low.pdp_modified > low.ttp
        assert high.ttp > high.pdp_modified
