"""The content-addressed result cache (repro.cache).

Key stability is the load-bearing property: a key must be a pure function
of the payload values, the schema version, and the code salt — never of
dict ordering, process identity, or hash seeds.  Corruption must never
produce a wrong answer, only a recomputation.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.analysis.breakdown import breakdown_scale, breakdown_scales_batch
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    canonical_json,
    content_key,
)
from repro.cache import keys as cache_keys
from repro.errors import ConfigurationError
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.obs import metrics
from repro.sim.dispatch import cached_run_pdp, cached_run_ttp, run_pdp, run_ttp
from repro.sim.pdp_sim import PDPSimConfig
from repro.sim.ttp_sim import TTPSimConfig
from repro.units import mbps


@pytest.fixture
def disk_cache(tmp_path):
    """Swap the process-wide cache for a disk-backed one, then restore."""
    store = cache_mod.configure(directory=str(tmp_path))
    yield store
    cache_mod.configure(directory=None)


def _counter(name: str) -> float:
    return metrics.counter(name).value


# -- canonical hashing --------------------------------------------------------


def test_canonical_json_ignores_dict_order():
    a = {"zeta": 1, "alpha": [1.5, {"b": 2, "a": 3}]}
    b = {"alpha": [1.5, {"a": 3, "b": 2}], "zeta": 1}
    assert canonical_json(a) == canonical_json(b)
    assert content_key(a) == content_key(b)


def test_canonical_json_floats_roundtrip_exactly():
    value = 0.1 + 0.2  # not 0.3; repr must preserve the exact double
    assert json.loads(canonical_json({"x": value}))["x"] == value
    assert content_key({"x": value}) != content_key({"x": 0.3})


def test_canonical_json_rejects_unserialisable():
    with pytest.raises(ConfigurationError):
        canonical_json({"x": object()})


def test_content_key_stable_across_processes():
    payload = {"streams": [[0.05, 4096.0, 0]], "rel_tol": 1e-4, "kind": "t"}
    here = content_key(payload)
    script = (
        "from repro.cache import content_key;"
        f"print(content_key({payload!r}))"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH"))
        if p
    )
    env["PYTHONHASHSEED"] = "12345"  # must not matter
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, check=True,
    )
    assert out.stdout.strip() == here


def test_schema_version_bump_invalidates_keys(monkeypatch):
    payload = {"kind": "probe"}
    before = content_key(payload)
    monkeypatch.setattr(cache_keys, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
    assert content_key(payload) != before


# -- the store ----------------------------------------------------------------


def test_memory_roundtrip_and_lru_eviction():
    store = ResultCache(max_memory_entries=2)
    store.put("k1", {"v": 1}, namespace="t")
    store.put("k2", {"v": 2}, namespace="t")
    assert store.get("k1", namespace="t") == {"v": 1}  # refreshes k1
    store.put("k3", {"v": 3}, namespace="t")  # evicts k2 (LRU)
    assert store.get("k2", namespace="t") is None
    assert store.get("k1", namespace="t") == {"v": 1}
    assert store.get("k3", namespace="t") == {"v": 3}


def test_disk_roundtrip_across_store_instances(tmp_path):
    writer = ResultCache(directory=str(tmp_path))
    writer.put("deadbeef", {"answer": [1.0, 2]}, namespace="t")
    reader = ResultCache(directory=str(tmp_path))
    assert reader.get("deadbeef", namespace="t") == {"answer": [1.0, 2]}


def test_truncated_disk_entry_is_a_counted_miss(tmp_path):
    writer = ResultCache(directory=str(tmp_path))
    writer.put("cafe01", {"v": 7}, namespace="t")
    (path,) = glob.glob(str(tmp_path / "t" / "*" / "cafe01.json"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"key": "cafe01", "payl')  # truncated mid-record
    errors = _counter("cache.t.errors")
    reader = ResultCache(directory=str(tmp_path))
    assert reader.get("cafe01", namespace="t") is None
    assert _counter("cache.t.errors") == errors + 1
    assert not os.path.exists(path)  # dropped so it cannot re-fire


def test_key_mismatch_disk_entry_is_a_counted_miss(tmp_path):
    store = ResultCache(directory=str(tmp_path))
    store.put("feed01", {"v": 1}, namespace="t")
    (path,) = glob.glob(str(tmp_path / "t" / "*" / "feed01.json"))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"key": "somethingelse", "payload": {"v": 9}}, handle)
    errors = _counter("cache.t.errors")
    fresh = ResultCache(directory=str(tmp_path))
    assert fresh.get("feed01", namespace="t") is None
    assert _counter("cache.t.errors") == errors + 1


# -- cached simulation runs ---------------------------------------------------


def _pdp_inputs(harmonic_set):
    ring = ieee_802_5_ring(mbps(10), n_stations=8)
    frame = paper_frame_format()
    config = PDPSimConfig(variant=PDPVariant.MODIFIED, collect_responses=True)
    return ring, frame, harmonic_set, config, 0.2


def test_cached_run_pdp_replays_bit_identical(harmonic_set, disk_cache):
    ring, frame, ms, config, duration = _pdp_inputs(harmonic_set)
    direct = run_pdp(ring, frame, ms, config, duration)
    misses = _counter("cache.sim.misses")
    first = cached_run_pdp(ring, frame, ms, config, duration)
    assert _counter("cache.sim.misses") == misses + 1
    hits = _counter("cache.sim.hits")
    second = cached_run_pdp(ring, frame, ms, config, duration)
    assert _counter("cache.sim.hits") == hits + 1
    for report in (first, second):
        assert vars(report)["duration"] == direct.duration
        assert report.sync_busy_time == direct.sync_busy_time
        assert report.async_busy_time == direct.async_busy_time
        assert report.token_time == direct.token_time
        assert [vars(s) for s in report.streams] == [
            vars(s) for s in direct.streams
        ]
        assert [vars(r) for r in report.rotations] == [
            vars(r) for r in direct.rotations
        ]


def test_cached_run_pdp_corruption_still_gives_right_answer(
    harmonic_set, disk_cache, tmp_path
):
    ring, frame, ms, config, duration = _pdp_inputs(harmonic_set)
    truth = run_pdp(ring, frame, ms, config, duration)
    cached_run_pdp(ring, frame, ms, config, duration)
    (path,) = glob.glob(str(tmp_path / "sim" / "*" / "*.json"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json at all")
    disk_cache.clear()  # force the disk read
    recovered = cached_run_pdp(ring, frame, ms, config, duration)
    assert [vars(s) for s in recovered.streams] == [
        vars(s) for s in truth.streams
    ]


def test_cached_run_pdp_use_cache_false_bypasses(harmonic_set, disk_cache):
    ring, frame, ms, config, duration = _pdp_inputs(harmonic_set)
    before = (_counter("cache.sim.hits"), _counter("cache.sim.misses"))
    cached_run_pdp(ring, frame, ms, config, duration, use_cache=False)
    assert (_counter("cache.sim.hits"), _counter("cache.sim.misses")) == before


def test_cached_run_ttp_replays_bit_identical(harmonic_set, small_ring_fddi, disk_cache):
    frame = paper_frame_format()
    analysis = TTPAnalysis(small_ring_fddi, frame)
    allocation = analysis.analyze(harmonic_set).allocation
    assert allocation is not None
    config = TTPSimConfig(collect_responses=True)
    direct = run_ttp(small_ring_fddi, frame, harmonic_set, allocation, config, 0.2)
    cached_run_ttp(small_ring_fddi, frame, harmonic_set, allocation, config, 0.2)
    hits = _counter("cache.sim.hits")
    replay = cached_run_ttp(small_ring_fddi, frame, harmonic_set, allocation, config, 0.2)
    assert _counter("cache.sim.hits") == hits + 1
    assert [vars(s) for s in replay.streams] == [vars(s) for s in direct.streams]
    assert [vars(r) for r in replay.rotations] == [vars(r) for r in direct.rotations]


def test_cached_runs_distinguish_duration_and_engine(harmonic_set, disk_cache):
    ring, frame, ms, config, _ = _pdp_inputs(harmonic_set)
    a = cached_run_pdp(ring, frame, ms, config, 0.1)
    b = cached_run_pdp(ring, frame, ms, config, 0.2)
    assert a.duration != b.duration  # distinct keys, not a stale replay


# -- breakdown caching --------------------------------------------------------


def _pdp_analysis():
    return PDPAnalysis(
        ieee_802_5_ring(mbps(16), n_stations=8),
        paper_frame_format(),
        PDPVariant.MODIFIED,
    )


def test_breakdown_cache_needs_a_directory(harmonic_set):
    cache_mod.configure(directory=None)
    try:
        before = (
            _counter("cache.breakdown.hits"), _counter("cache.breakdown.misses")
        )
        breakdown_scale(harmonic_set, _pdp_analysis(), rel_tol=1e-3)
        after = (
            _counter("cache.breakdown.hits"), _counter("cache.breakdown.misses")
        )
        assert after == before
    finally:
        cache_mod.configure(directory=None)


def test_breakdown_scale_cached_roundtrip(harmonic_set, disk_cache):
    analysis = _pdp_analysis()
    first = breakdown_scale(harmonic_set, analysis, rel_tol=1e-3)
    hits = _counter("cache.breakdown.hits")
    second = breakdown_scale(harmonic_set, analysis, rel_tol=1e-3)
    assert second == first
    assert _counter("cache.breakdown.hits") == hits + 1
    # A different tolerance is a different computation, not a hit.
    third = breakdown_scale(harmonic_set, analysis, rel_tol=1e-5)
    assert third[0] != first[0] or third[1] != first[1]


def test_breakdown_batch_partial_miss_merges(sampler, rng, disk_cache, tmp_path):
    analysis = _pdp_analysis()
    sets = [sampler.sample(rng) for _ in range(3)]
    first = breakdown_scales_batch(sets, analysis, rel_tol=1e-3)
    disk_cache.clear()
    files = sorted(glob.glob(str(tmp_path / "breakdown" / "*" / "*.json")))
    os.unlink(files[0])  # one set must recompute, two replay from disk
    merged = breakdown_scales_batch(sets, analysis, rel_tol=1e-3)
    assert merged == first


def test_breakdown_plain_callable_predicate_is_never_cached(
    harmonic_set, disk_cache
):
    analysis = _pdp_analysis()
    before = _counter("cache.breakdown.misses")
    breakdown_scale(harmonic_set, analysis.is_schedulable, rel_tol=1e-3)
    assert _counter("cache.breakdown.misses") == before


def test_ttp_custom_policy_opts_out_of_caching(
    harmonic_set, small_ring_fddi, disk_cache
):
    class WeirdPolicy:  # not a dataclass: no canonical description
        def select(self, message_set, bandwidth_bps, delta_s, overhead_s):
            return min(message_set.periods) / 4.0

    analysis = TTPAnalysis(small_ring_fddi, paper_frame_format(), WeirdPolicy())
    assert analysis.cache_signature() is None
    before = _counter("cache.breakdown.misses")
    breakdown_scale(harmonic_set, analysis, rel_tol=1e-3)
    assert _counter("cache.breakdown.misses") == before


def test_mutation_injection_clears_cached_results(harmonic_set, disk_cache):
    from repro.verify.mutation import inject_mutant

    ring, frame, ms, config, duration = _pdp_inputs(harmonic_set)
    clean = cached_run_pdp(ring, frame, ms, config, duration)
    with inject_mutant("pdp_short_frame_dropped"):
        pass  # entry and exit must both drop the memory layer
    assert len(disk_cache._memory) == 0
    replay = cached_run_pdp(ring, frame, ms, config, duration)
    assert [vars(s) for s in replay.streams] == [vars(s) for s in clean.streams]


# -- numpy payloads (columnar callers) ----------------------------------------


def test_numpy_scalars_key_like_native_values():
    """Columnar callers hand numpy scalars/arrays into key payloads; they
    must hash identically to the native equivalents, not crash or drift."""
    arr_f = np.array([0.1, 0.25])
    arr_i = np.array([3, 4], dtype=np.int32)
    native = {"f": 0.1, "i": 3, "b": True, "v": [0.1, 0.25], "w": [3, 4]}
    numpied = {
        "f": np.float64(0.1),
        "i": np.int32(3),
        "b": np.bool_(True),
        "v": arr_f,
        "w": arr_i,
    }
    assert canonical_json(numpied) == canonical_json(native)
    assert content_key(numpied) == content_key(native)


def test_numpy_float32_coerces_exactly():
    value = np.float32(0.1)
    assert canonical_json({"x": value}) == canonical_json({"x": float(value)})


def test_unserialisable_payload_rejected():
    with pytest.raises(ConfigurationError):
        canonical_json({"x": object()})


def test_table_and_object_twin_share_breakdown_cache_entries(disk_cache):
    """A StreamTable and its object twin must hit the same cache rows —
    the regression that motivated the numpy coercion in the first place."""
    from repro.messages.message_set import MessageSet
    from repro.messages.stream import SynchronousStream
    from repro.messages.table import StreamTable

    analysis = _pdp_analysis()
    message_set = MessageSet(
        SynchronousStream(period_s=p, payload_bits=c, station=s)
        for p, c, s in [(0.1, 800.0, 0), (0.2, 1600.0, 1), (0.4, 800.0, 2)]
    )
    table = StreamTable.from_message_set(message_set)
    assert table.signature_rows() == [
        [s.period_s, s.payload_bits, s.station] for s in message_set
    ]
    before_misses = _counter("cache.breakdown.misses")
    scale_obj, _ = breakdown_scale(message_set, analysis, rel_tol=1e-3)
    assert _counter("cache.breakdown.misses") == before_misses + 1
    before_hits = _counter("cache.breakdown.hits")
    scale_tab, _ = breakdown_scale(table, analysis, rel_tol=1e-3)
    assert _counter("cache.breakdown.hits") == before_hits + 1
    assert scale_tab == scale_obj
