"""Ablation sweeps: structural checks and headline orderings (small scale)."""

import pytest

from repro.experiments.config import PaperParameters
from repro.experiments.sweeps import (
    frame_size_sweep,
    period_sweep,
    ring_size_sweep,
    sba_comparison,
    ttrt_sweep,
)


@pytest.fixture(scope="module")
def params() -> PaperParameters:
    return PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=5)


class TestTTRTSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        small = PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=5)
        return ttrt_sweep(small, bandwidth_mbps=10.0)

    def test_has_policy_rows(self, sweep):
        policies = sweep.column("policy")
        assert "sqrt-rule" in policies
        assert "half-min" in policies
        assert "optimal" in policies

    def test_optimal_dominates_everything(self, sweep):
        utils = dict(zip(sweep.column("policy"), sweep.column("avg breakdown util")))
        best_other = max(v for k, v in utils.items() if k != "optimal")
        assert utils["optimal"] >= best_other - 1e-6

    def test_sqrt_rule_beats_half_min(self, sweep):
        """The paper's Section 5.2 claim: values well below P_min/2 win."""
        utils = dict(zip(sweep.column("policy"), sweep.column("avg breakdown util")))
        assert utils["sqrt-rule"] > utils["half-min"]

    def test_sensitivity_is_visible(self, sweep):
        """Breakdown utilization varies strongly across TTRT values, with an
        interior optimum (Section 5.2's sensitivity claim)."""
        fixed = [
            u
            for p, u in zip(sweep.column("policy"), sweep.column("avg breakdown util"))
            if str(p).startswith("fixed")
        ]
        assert max(fixed) > min(fixed) + 0.1
        peak = fixed.index(max(fixed))
        assert 0 < peak < len(fixed) - 1


class TestFrameSizeSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        small = PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=5)
        return frame_size_sweep(
            small, bandwidth_mbps=10.0, payload_bytes=(16, 64, 256, 1024)
        )

    def test_covers_both_variants(self, sweep):
        variants = set(sweep.column("variant"))
        assert variants == {"ieee-802.5", "modified-802.5"}

    def test_interior_tradeoff_exists(self, sweep):
        """Neither the smallest nor an extreme frame is uniformly best for
        the standard protocol — the Section 4.2 trade-off."""
        rows = [
            (size, util)
            for variant, size, util in zip(
                sweep.column("variant"),
                sweep.column("payload (bytes)"),
                sweep.column("avg breakdown util"),
            )
            if variant == "ieee-802.5"
        ]
        utils = [u for _, u in rows]
        assert max(utils) > utils[0]  # 16 B frames are not optimal


class TestPeriodSweep:
    def test_grid_complete(self, params):
        sweep = period_sweep(
            params, 10.0, mean_periods_s=(0.05, 0.1), ratios=(2.0, 10.0)
        )
        assert len(sweep.rows) == 4

    def test_structural_claims_stable(self, params):
        """The orderings that hold across every period configuration:
        modified always dominates standard, and FDDI benefits from longer
        periods (more rotations to amortize TTRT against)."""
        sweep = period_sweep(
            params, 2.0, mean_periods_s=(0.05, 0.1, 0.2), ratios=(2.0, 10.0)
        )
        for row in sweep.rows:
            __, __, std, mod, __ = row
            assert mod >= std - 1e-6
        for ratio in (2.0, 10.0):
            fddi_by_period = [
                row[4] for row in sweep.rows if row[1] == ratio
            ]
            assert fddi_by_period == sorted(fddi_by_period)

    def test_pdp_wins_low_bandwidth_at_short_periods(self, params):
        """With the paper's ratio of 10 and short-to-moderate mean periods
        the PDP dominates at 2 Mbps even on a small ring."""
        sweep = period_sweep(
            params, 2.0, mean_periods_s=(0.05, 0.1), ratios=(10.0,)
        )
        for row in sweep.rows:
            __, __, std, mod, fddi = row
            assert max(std, mod) > fddi


class TestSBAComparison:
    @pytest.fixture(scope="class")
    def sweep(self):
        small = PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=5)
        return sba_comparison(small, bandwidth_mbps=100.0)

    def test_all_schemes_present(self, sweep):
        names = set(sweep.column("scheme"))
        assert names == {
            "local",
            "full-length",
            "proportional",
            "normalized-proportional",
            "equal-partition",
        }

    def test_proportional_is_zero(self, sweep):
        utils = dict(zip(sweep.column("scheme"), sweep.column("avg breakdown util")))
        assert utils["proportional"] == 0.0

    def test_local_is_competitive(self, sweep):
        """The paper's chosen scheme is at or near the top of the family."""
        utils = dict(zip(sweep.column("scheme"), sweep.column("avg breakdown util")))
        best = max(utils.values())
        assert utils["local"] >= 0.8 * best


class TestRingSizeSweep:
    def test_rows_per_size(self, params):
        sweep = ring_size_sweep(params, 100.0, station_counts=(5, 10))
        assert [row[0] for row in sweep.rows] == [5, 10]

    def test_table_renders(self, params):
        sweep = ring_size_sweep(params, 100.0, station_counts=(5,))
        assert "stations" in sweep.to_table()
