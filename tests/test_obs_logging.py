"""Structured logging: JSONL output, console routing, quiet mode."""

import io
import json
import logging

import pytest

from repro.obs import logging as obslog


@pytest.fixture(autouse=True)
def clean_logging():
    """Tear logging down around every test (and restore loud mode)."""
    obslog.teardown_logging()
    yield
    obslog.teardown_logging()


class TestGetLogger:
    def test_prefixes_library_namespace(self):
        assert obslog.get_logger("analysis.pdp").name == "repro.analysis.pdp"

    def test_keeps_already_prefixed_names(self):
        assert obslog.get_logger("repro.sim").name == "repro.sim"
        assert obslog.get_logger("repro").name == "repro"


class TestSetupLogging:
    def test_human_output_reaches_stream(self):
        stream = io.StringIO()
        obslog.setup_logging(level="info", stream=stream)
        obslog.get_logger("t").info("hello %s", "world")
        assert "hello world" in stream.getvalue()
        assert "repro.t" in stream.getvalue()

    def test_level_threshold(self):
        stream = io.StringIO()
        obslog.setup_logging(level="warning", stream=stream)
        obslog.get_logger("t").info("quiet info")
        obslog.get_logger("t").warning("loud warning")
        assert "quiet info" not in stream.getvalue()
        assert "loud warning" in stream.getvalue()

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            obslog.setup_logging(level="chatty")

    def test_idempotent_reconfiguration(self, tmp_path):
        stream = io.StringIO()
        obslog.setup_logging(level="info", stream=stream)
        obslog.setup_logging(level="info", stream=stream)
        obslog.get_logger("t").info("once")
        # Re-setup must not stack handlers: the line appears exactly once.
        assert stream.getvalue().count("once") == 1

    def test_creates_parent_directory_for_jsonl(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "run.jsonl"
        obslog.setup_logging(level="info", json_path=str(path))
        obslog.get_logger("t").info("x")
        assert path.exists()


class TestJsonlSink:
    def _configured(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obslog.setup_logging(
            level="info", json_path=str(path), stream=io.StringIO()
        )
        return path

    def _records(self, path):
        return [json.loads(line) for line in path.read_text().splitlines()]

    def test_every_line_is_json(self, tmp_path):
        path = self._configured(tmp_path)
        log = obslog.get_logger("t")
        log.info("plain")
        log.warning("formatted %d/%d", 3, 4)
        records = self._records(path)
        assert [r["msg"] for r in records] == ["plain", "formatted 3/4"]
        assert records[0]["level"] == "info"
        assert records[1]["level"] == "warning"
        assert all("ts" in r and "logger" in r for r in records)

    def test_extra_fields_become_structured_keys(self, tmp_path):
        path = self._configured(tmp_path)
        obslog.get_logger("t").info(
            "cell done", extra={"grid": "figure1", "done": 3, "total": 48}
        )
        (record,) = self._records(path)
        assert record["grid"] == "figure1"
        assert record["done"] == 3 and record["total"] == 48

    def test_unserializable_extra_falls_back_to_repr(self, tmp_path):
        path = self._configured(tmp_path)
        obslog.get_logger("t").info("obj", extra={"payload": {1, 2}})
        (record,) = self._records(path)
        assert isinstance(record["payload"], str)

    def test_exception_info_captured(self, tmp_path):
        path = self._configured(tmp_path)
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            obslog.get_logger("t").exception("failed")
        (record,) = self._records(path)
        assert "kaboom" in record["exc"]

    def test_console_mirrors_into_jsonl_only(self, tmp_path, capsys):
        path = self._configured(tmp_path)
        obslog.console("table row", 42)
        out = capsys.readouterr()
        assert "table row 42" in out.out
        assert "table row" not in out.err  # never duplicated to stderr
        (record,) = self._records(path)
        assert record["msg"] == "table row 42"
        assert record["logger"] == obslog.CONSOLE_LOGGER_NAME


class TestConsole:
    def test_console_prints_by_default(self, capsys):
        obslog.console("visible")
        assert "visible" in capsys.readouterr().out

    def test_quiet_suppresses_stdout(self, capsys):
        obslog.setup_logging(level="info", stream=io.StringIO(), quiet=True)
        obslog.console("invisible")
        assert capsys.readouterr().out == ""
        assert obslog.is_quiet()

    def test_teardown_restores_loud_mode(self):
        obslog.setup_logging(level="info", stream=io.StringIO(), quiet=True)
        obslog.teardown_logging()
        assert not obslog.is_quiet()

    def test_console_without_setup_is_just_print(self, capsys):
        # No handlers configured: console degrades to print, no errors.
        obslog.console("bare")
        assert "bare" in capsys.readouterr().out


class TestSilenceByDefault:
    def test_library_logging_silent_without_setup(self, capsys):
        # Without setup_logging the repro logger has no handlers and the
        # stdlib default (WARNING to lastResort) applies only to >=WARNING;
        # INFO progress lines must not leak into unconfigured programs.
        logger = obslog.get_logger("experiments.parallel")
        logger.info("progress line")
        captured = capsys.readouterr()
        assert "progress line" not in captured.out
        assert "progress line" not in captured.err
