"""Incremental admission engine: snapshots, release paths, engine switch.

The bit-identity of incremental decisions against the batch oracle lives
in the fuzz harness (``admission_incremental_equiv`` over randomized
admit/release/check interleavings); these tests pin the parts fuzzing
reaches only by accident — the release-path regressions from the issue
(double release, never-admitted release, admit-after-release staleness),
engine resolution precedence, and the canonical-signature key contract.
"""

import os

import pytest

from repro.admission import AdmissionController, AdmissionPolicy
from repro.admission_incremental import (
    AdmissionEngine,
    IncrementalAdmissionController,
    build_admission_controller,
    resolve_engine,
    set_default_engine,
)
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.cache.keys import chained_prefix_keys, set_signature
from repro.errors import AdmissionError, ConfigurationError
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps, milliseconds

FRAME = paper_frame_format()


def pdp_pair(n=8, bandwidth=16.0, policy=AdmissionPolicy.EXACT):
    """(incremental, scalar-oracle) controllers over identical analyses."""

    def analysis():
        return PDPAnalysis(
            ieee_802_5_ring(mbps(bandwidth), n_stations=n),
            FRAME,
            PDPVariant.MODIFIED,
        )

    return (
        IncrementalAdmissionController(analysis(), policy),
        AdmissionController(analysis(), policy),
    )


def ttp_incremental(n=8, bandwidth=100.0, policy=AdmissionPolicy.EXACT):
    analysis = TTPAnalysis(fddi_ring(mbps(bandwidth), n_stations=n), FRAME)
    return IncrementalAdmissionController(analysis, policy)


class TestReleasePaths:
    """The regressions named in the issue, on the incremental engine."""

    def test_double_release_raises_then_idempotent_noop(self):
        ctrl, _ = pdp_pair()
        decision = ctrl.request(milliseconds(50), 8000)
        assert decision.admitted
        assert ctrl.release(decision.stream_id).released
        with pytest.raises(AdmissionError):
            ctrl.release(decision.stream_id)
        again = ctrl.release(decision.stream_id, idempotent=True)
        assert not again.released  # recorded no-op, state untouched
        assert ctrl.admitted_count == 0

    def test_release_never_admitted_stream(self):
        ctrl, _ = pdp_pair()
        with pytest.raises(AdmissionError):
            ctrl.release(777)
        assert ctrl.release(777, idempotent=True).released is False

    def test_failed_release_does_not_invalidate_snapshot(self):
        ctrl, _ = pdp_pair()
        assert ctrl.request(milliseconds(50), 8000).admitted
        version = ctrl._base_version
        with pytest.raises(AdmissionError):
            ctrl.release(999)
        ctrl.release(999, idempotent=True)
        assert ctrl._base_version == version

    def test_admit_after_release_sees_fresh_snapshot(self):
        """A release must not leave the next admit reading stale levels."""
        ctrl, oracle = pdp_pair(n=4, bandwidth=1.0)
        streams = [(milliseconds(30), 8000.0), (milliseconds(40), 6000.0)]
        ids = []
        for period, bits in streams:
            d, o = ctrl.request(period, bits), oracle.request(period, bits)
            assert d.admitted == o.admitted
            ids.append(d.stream_id)
        # Warm the snapshot, drop a stream, then re-check: the verdict
        # must match a fresh oracle over the reduced population, not the
        # pre-release snapshot.
        probe = (milliseconds(10), 500_000.0)
        assert ctrl.check(*probe).admitted == oracle.check(*probe).admitted
        ctrl.release(ids[0])
        oracle.release(ids[0])
        d, o = ctrl.check(*probe), oracle.check(*probe)
        assert d.admitted == o.admitted
        assert ctrl.request(*probe).admitted == oracle.request(*probe).admitted

    def test_churn_interleaving_matches_oracle(self):
        ctrl, oracle = pdp_pair(n=6, bandwidth=4.0)
        catalogue = [
            (milliseconds(8), 1024.0),
            (milliseconds(16), 4096.0),
            (milliseconds(32), 16384.0),
            (milliseconds(64), 65536.0),
        ]
        live = []
        for step, (period, bits) in enumerate(catalogue * 3):
            d, o = ctrl.request(period, bits), oracle.request(period, bits)
            assert (d.admitted, d.reason) == (o.admitted, o.reason)
            if d.admitted:
                live.append(d.stream_id)
            if step % 2 and live:
                sid = live.pop(0)
                assert ctrl.release(sid).released
                assert oracle.release(sid).released

    def test_ttp_release_then_admit(self):
        ctrl = ttp_incremental(n=4)
        first = ctrl.request(milliseconds(50), 8000)
        assert first.admitted
        second = ctrl.request(milliseconds(100), 4000)
        assert second.admitted
        ctrl.release(first.stream_id)
        with pytest.raises(AdmissionError):
            ctrl.release(first.stream_id)
        assert ctrl.request(milliseconds(50), 8000).admitted


class TestEngineResolution:
    """Explicit arg > process default > environment > auto."""

    def setup_method(self):
        set_default_engine(None)

    def teardown_method(self):
        set_default_engine(None)
        os.environ.pop("REPRO_ADMISSION_ENGINE", None)

    def test_default_is_auto(self):
        assert resolve_engine() is AdmissionEngine.AUTO

    def test_explicit_beats_default_and_env(self):
        set_default_engine("incremental")
        os.environ["REPRO_ADMISSION_ENGINE"] = "incremental"
        assert resolve_engine("scalar") is AdmissionEngine.SCALAR

    def test_process_default_beats_env(self):
        os.environ["REPRO_ADMISSION_ENGINE"] = "incremental"
        set_default_engine("scalar")
        assert resolve_engine() is AdmissionEngine.SCALAR

    def test_env_beats_auto(self):
        os.environ["REPRO_ADMISSION_ENGINE"] = "scalar"
        assert resolve_engine() is AdmissionEngine.SCALAR

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("vectorized")
        with pytest.raises(ConfigurationError):
            set_default_engine("nope")

    def test_build_controller_classes(self):
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(16.0), n_stations=4), FRAME, PDPVariant.MODIFIED
        )
        scalar = build_admission_controller(analysis, engine="scalar")
        assert type(scalar) is AdmissionController
        assert scalar.engine_name == "scalar"
        for engine in ("incremental", "auto", None):
            built = build_admission_controller(analysis, engine=engine)
            assert isinstance(built, IncrementalAdmissionController)
            assert built.engine_name == "incremental"


class TestCanonicalSignatures:
    def test_set_signature_is_permutation_invariant(self):
        pairs = [(0.032, 512.0), (0.008, 1024.0), (0.032, 64.0)]
        assert set_signature(pairs) == set_signature(reversed(list(pairs)))
        assert set_signature(pairs) == [
            [0.008, 1024.0],
            [0.032, 64.0],
            [0.032, 512.0],
        ]

    def test_set_signature_keeps_multiplicity(self):
        once = set_signature([(0.008, 64.0)])
        twice = set_signature([(0.008, 64.0), (0.008, 64.0)])
        assert len(twice) == 2 and twice != once

    def test_chained_prefix_keys_match_prefix_sets(self):
        """Key ``i`` of a chain equals the chain built from the prefix
        alone — a population reached by any history shares its keys."""
        seed = {"admission_level": 1, "signature": "sig"}
        pairs = set_signature([(0.064, 256.0), (0.008, 512.0), (0.016, 64.0)])
        whole = chained_prefix_keys(seed, pairs)
        for i in range(1, len(pairs) + 1):
            assert chained_prefix_keys(seed, pairs[:i]) == whole[:i]

    def test_chained_prefix_keys_separate_seeds_and_pairs(self):
        pairs = set_signature([(0.064, 256.0)])
        a = chained_prefix_keys({"signature": "a"}, pairs)
        b = chained_prefix_keys({"signature": "b"}, pairs)
        assert a != b
        # Field vs record boundaries must not alias: (1.0, 21.0) is not
        # (12.0, 1.0) even though the digit streams could be confused.
        x = chained_prefix_keys({"signature": "a"}, [[1.0, 21.0]])
        y = chained_prefix_keys({"signature": "a"}, [[12.0, 1.0]])
        assert x != y


class TestSnapshotMechanics:
    def test_decision_cache_is_bypassed(self):
        ctrl, _ = pdp_pair()
        assert ctrl._cache_key(object(), object()) is None

    def test_promotion_skips_rebuild_on_admit(self):
        ctrl, _ = pdp_pair()
        assert ctrl.request(milliseconds(50), 8000).admitted
        # The committed candidate's verdicts became the new snapshot:
        # versions agree, so the next decision rebuilds nothing.
        assert ctrl._snap_version == ctrl._base_version
        assert ctrl._pdp_level_ok  # carried over, not cleared

    def test_release_invalidates_lazily(self):
        ctrl, _ = pdp_pair()
        d = ctrl.request(milliseconds(50), 8000)
        ctrl.release(d.stream_id)
        # Bumped but not rebuilt yet …
        assert ctrl._snap_version != ctrl._base_version
        # … and the next decision rebuilds before answering.
        assert ctrl.check(milliseconds(50), 8000).admitted
        assert ctrl._snap_version == ctrl._base_version
