"""Cross-module property tests (hypothesis) — the library's invariants.

Where the per-module tests pin values, these pin *relationships* that must
hold across arbitrary workloads and network configurations:

1. schedulability is monotone in payloads, bandwidth helps TTP, etc.;
2. every analysis agrees with its own closed forms and reports;
3. simulators conserve messages and never complete a message early.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.frames import FrameFormat
from repro.network.standards import fddi_ring, ieee_802_5_ring
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig
from repro.sim.traffic import SynchronousTraffic
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps


FRAME = FrameFormat(info_bits=512, overhead_bits=112)


@st.composite
def workloads(draw, max_streams=6):
    """Random message sets with periods 10–300 ms and mixed payloads."""
    n = draw(st.integers(min_value=1, max_value=max_streams))
    streams = []
    for i in range(n):
        period = draw(st.floats(min_value=0.01, max_value=0.3))
        payload = draw(st.floats(min_value=1.0, max_value=200_000.0))
        streams.append(
            SynchronousStream(period_s=period, payload_bits=payload, station=i)
        )
    return MessageSet(streams)


bandwidths = st.sampled_from([2.0, 10.0, 50.0, 200.0, 1000.0])


class TestSchedulabilityMonotonicity:
    @settings(max_examples=80, deadline=None)
    @given(workload=workloads(), bandwidth=bandwidths,
           variant=st.sampled_from(list(PDPVariant)))
    def test_pdp_shrinking_preserves(self, workload, bandwidth, variant):
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(bandwidth), n_stations=len(workload)),
            FRAME, variant,
        )
        if analysis.is_schedulable(workload):
            assert analysis.is_schedulable(workload.scaled(0.3))

    @settings(max_examples=80, deadline=None)
    @given(workload=workloads(), bandwidth=bandwidths)
    def test_ttp_shrinking_preserves(self, workload, bandwidth):
        analysis = TTPAnalysis(
            fddi_ring(mbps(bandwidth), n_stations=len(workload)), FRAME
        )
        if analysis.is_schedulable(workload):
            assert analysis.is_schedulable(workload.scaled(0.3))

    @settings(max_examples=60, deadline=None)
    @given(workload=workloads())
    def test_ttp_bandwidth_helps(self, workload):
        """A TTP-schedulable set stays schedulable at 10x the bandwidth
        (payloads fixed in bits: higher bandwidth strictly shrinks C_i and
        δ while TTRT selection adapts)."""
        slow = TTPAnalysis(
            fddi_ring(mbps(20), n_stations=len(workload)), FRAME
        )
        fast = TTPAnalysis(
            fddi_ring(mbps(200), n_stations=len(workload)), FRAME
        )
        if slow.is_schedulable(workload):
            assert fast.is_schedulable(workload)

    @settings(max_examples=60, deadline=None)
    @given(workload=workloads(), bandwidth=bandwidths)
    def test_modified_accepts_standard_sets(self, workload, bandwidth):
        ring = ieee_802_5_ring(mbps(bandwidth), n_stations=len(workload))
        std = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        mod = PDPAnalysis(ring, FRAME, PDPVariant.MODIFIED)
        if std.is_schedulable(workload):
            assert mod.is_schedulable(workload)


class TestClosedFormAgreement:
    @settings(max_examples=40, deadline=None)
    @given(workload=workloads(), bandwidth=bandwidths)
    def test_ttp_boundary_is_exact(self, workload, bandwidth):
        """saturation_scale is a true boundary of is_schedulable."""
        analysis = TTPAnalysis(
            fddi_ring(mbps(bandwidth), n_stations=len(workload)), FRAME
        )
        scale = analysis.saturation_scale(workload)
        if scale == 0.0:
            assert not analysis.is_schedulable(workload.scaled(1e-9))
        elif scale != float("inf"):
            assert analysis.is_schedulable(workload.scaled(scale * (1 - 1e-9)))
            assert not analysis.is_schedulable(workload.scaled(scale * (1 + 1e-6)))

    @settings(max_examples=30, deadline=None)
    @given(workload=workloads(max_streams=4), bandwidth=bandwidths,
           variant=st.sampled_from(list(PDPVariant)))
    def test_pdp_breakdown_brackets(self, workload, bandwidth, variant):
        """The bisected PDP breakdown scale is a genuine boundary."""
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(bandwidth), n_stations=len(workload)),
            FRAME, variant,
        )
        scale, _ = breakdown_scale(workload, analysis, rel_tol=1e-4)
        if 0.0 < scale < float("inf"):
            assert analysis.is_schedulable(workload.scaled(scale))
            assert not analysis.is_schedulable(workload.scaled(scale * 1.001))

    @settings(max_examples=40, deadline=None)
    @given(workload=workloads(), bandwidth=bandwidths,
           variant=st.sampled_from(list(PDPVariant)))
    def test_analyze_report_matches_verdict(self, workload, bandwidth, variant):
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(bandwidth), n_stations=len(workload)),
            FRAME, variant,
        )
        result = analysis.analyze(workload)
        assert result.schedulable == analysis.is_schedulable(workload)
        assert result.schedulable == (result.worst_ratio <= 1.0 + 1e-12)


class TestSimulatorConservation:
    @settings(max_examples=15, deadline=None)
    @given(workload=workloads(max_streams=4), seed=st.integers(0, 100))
    def test_pdp_message_accounting(self, workload, seed):
        """Completions never exceed arrivals, and every stream's counters
        are bounded by its own arrival count."""
        ring = ieee_802_5_ring(mbps(50), n_stations=len(workload))
        simulator = PDPRingSimulator(
            ring, FRAME, workload, PDPSimConfig(phasing_seed=seed)
        )
        duration = 2.1 * workload.max_period
        report = simulator.run(duration)
        arrivals = SynchronousTraffic(workload).arrivals_until(duration)
        per_stream_arrivals = [0] * len(workload)
        for arrival in arrivals:
            per_stream_arrivals[arrival.stream_index] += 1
        assert report.total_completed <= len(arrivals)
        for stream_stats, count in zip(report.streams, per_stream_arrivals):
            assert stream_stats.completed <= count
            # missed = late completions + unfinished; both bounded.
            assert stream_stats.missed <= count

    @settings(max_examples=15, deadline=None)
    @given(workload=workloads(max_streams=4))
    def test_ttp_busy_time_bounded(self, workload):
        """Medium accounting never exceeds wall-clock simulated time."""
        ring = fddi_ring(mbps(100), n_stations=len(workload))
        analysis = TTPAnalysis(ring, FRAME)
        result = analysis.analyze(workload)
        if result.allocation is None:
            return
        simulator = TTPRingSimulator(
            ring, FRAME, workload, result.allocation, TTPSimConfig()
        )
        duration = 2.0 * workload.max_period
        report = simulator.run(duration)
        total_busy = (
            report.sync_busy_time + report.async_busy_time + report.token_time
        )
        # The final in-flight transmission may straddle the horizon, so
        # allow one rotation of slack.
        assert total_busy <= duration + result.allocation.ttrt_s + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(workload=workloads(max_streams=4))
    def test_responses_never_negative(self, workload):
        ring = ieee_802_5_ring(mbps(50), n_stations=len(workload))
        simulator = PDPRingSimulator(ring, FRAME, workload, PDPSimConfig())
        report = simulator.run(1.5 * workload.max_period)
        for stream in report.streams:
            assert stream.max_response >= 0.0
            assert stream.total_response >= 0.0
