"""Latency decomposition and the wasted-bandwidth analysis of Section 6.2."""

import pytest

from repro.network.frames import FrameFormat
from repro.network.latency import (
    effective_frame_time,
    latency_breakdown,
    theta_crossover_bandwidth,
    wasted_fraction_high_bandwidth,
    wasted_fraction_low_bandwidth,
)
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.units import mbps


@pytest.fixture
def frame() -> FrameFormat:
    return paper_frame_format()


class TestBreakdown:
    def test_components_sum_to_theta(self, frame):
        ring = ieee_802_5_ring(mbps(10))
        decomposition = latency_breakdown(ring)
        assert decomposition.theta == pytest.approx(
            decomposition.propagation
            + decomposition.station_latency
            + decomposition.token_time
        )

    def test_latency_bits_match_ring(self):
        ring = ieee_802_5_ring(mbps(10))
        assert latency_breakdown(ring).latency_bits == ring.latency_bits


class TestEffectiveFrameTime:
    def test_low_bandwidth_frame_dominates(self, frame):
        ring = ieee_802_5_ring(mbps(1))
        assert effective_frame_time(ring, frame) == pytest.approx(
            frame.frame_time(ring.bandwidth_bps)
        )

    def test_high_bandwidth_theta_dominates(self, frame):
        ring = ieee_802_5_ring(mbps(1000))
        assert effective_frame_time(ring, frame) == pytest.approx(ring.theta)


class TestWastedFractions:
    def test_low_bandwidth_fraction_is_constant(self, frame):
        # F_ovhd / F_info is bandwidth independent.
        assert wasted_fraction_low_bandwidth(frame) == pytest.approx(112 / 512)

    def test_high_bandwidth_fraction_grows(self, frame):
        fractions = [
            wasted_fraction_high_bandwidth(ieee_802_5_ring(mbps(b)), frame)
            for b in (100, 300, 1000)
        ]
        assert fractions == sorted(fractions)

    def test_high_bandwidth_fraction_approaches_one(self, frame):
        ring = ieee_802_5_ring(1e13)
        assert wasted_fraction_high_bandwidth(ring, frame) == pytest.approx(1.0, abs=1e-3)


class TestCrossover:
    def test_crossover_separates_regimes(self, frame):
        """Below the crossover bandwidth F > Θ; above it Θ > F."""
        ring = ieee_802_5_ring(mbps(10))
        crossover = theta_crossover_bandwidth(ring, frame)
        below = ring.with_bandwidth(crossover * 0.5)
        above = ring.with_bandwidth(crossover * 2.0)
        assert frame.frame_time(below.bandwidth_bps) > below.theta
        assert frame.frame_time(above.bandwidth_bps) < above.theta

    def test_crossover_in_plausible_range(self, frame):
        """For the paper's ring the F = Θ handover is in the Mbps decade."""
        ring = ieee_802_5_ring(mbps(10))
        crossover = theta_crossover_bandwidth(ring, frame)
        assert mbps(1) < crossover < mbps(100)

    def test_infinite_when_frame_never_dominates(self):
        # Q (424 latency bits) exceeds the whole frame: always Θ > F.
        ring = ieee_802_5_ring(mbps(10))
        tiny = FrameFormat(info_bits=64, overhead_bits=16)
        assert theta_crossover_bandwidth(ring, tiny) == float("inf")
