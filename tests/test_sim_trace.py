"""Instrumentation records: deadline stats, rotations, reports."""

import pytest

from repro.errors import SimulationError
from repro.sim.trace import DeadlineStats, RotationStats, SimulationReport


class TestDeadlineStats:
    def test_on_time_completion(self):
        stats = DeadlineStats(stream_index=0)
        stats.record_completion(arrival=1.0, deadline=2.0, completion=1.5)
        assert stats.completed == 1
        assert stats.missed == 0
        assert stats.max_response == pytest.approx(0.5)

    def test_late_completion_is_miss(self):
        stats = DeadlineStats(stream_index=0)
        stats.record_completion(arrival=1.0, deadline=2.0, completion=2.5)
        assert stats.completed == 1
        assert stats.missed == 1

    def test_unfinished_is_miss(self):
        stats = DeadlineStats(stream_index=0)
        stats.record_unfinished()
        assert stats.missed == 1
        assert stats.completed == 0

    def test_mean_response(self):
        stats = DeadlineStats(stream_index=0)
        stats.record_completion(0.0, 1.0, 0.2)
        stats.record_completion(1.0, 2.0, 1.6)
        assert stats.mean_response == pytest.approx(0.4)

    def test_mean_response_empty(self):
        assert DeadlineStats(stream_index=0).mean_response == 0.0

    def test_rejects_time_travel(self):
        with pytest.raises(SimulationError):
            DeadlineStats(stream_index=0).record_completion(2.0, 3.0, 1.0)


class TestRotationStats:
    def test_record(self):
        stats = RotationStats(station=0)
        stats.record(0.01)
        stats.record(0.03)
        assert stats.count == 2
        assert stats.mean == pytest.approx(0.02)
        assert stats.maximum == pytest.approx(0.03)
        assert stats.minimum == pytest.approx(0.01)

    def test_empty_mean(self):
        assert RotationStats(station=0).mean == 0.0

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            RotationStats(station=0).record(-0.1)


class TestSimulationReport:
    def make_report(self) -> SimulationReport:
        good = DeadlineStats(stream_index=0)
        good.record_completion(0.0, 1.0, 0.5)
        bad = DeadlineStats(stream_index=1)
        bad.record_completion(0.0, 1.0, 1.5)
        rotation = RotationStats(station=0)
        rotation.record(0.02)
        return SimulationReport(
            duration=10.0,
            streams=[good, bad],
            rotations=[rotation],
            sync_busy_time=4.0,
            async_busy_time=3.0,
            token_time=1.0,
        )

    def test_totals(self):
        report = self.make_report()
        assert report.total_completed == 2
        assert report.total_missed == 1
        assert not report.deadline_safe

    def test_utilizations(self):
        report = self.make_report()
        assert report.sync_utilization == pytest.approx(0.4)
        assert report.async_utilization == pytest.approx(0.3)

    def test_max_rotation(self):
        assert self.make_report().max_rotation == pytest.approx(0.02)

    def test_empty_report_is_safe(self):
        report = SimulationReport(duration=1.0)
        assert report.deadline_safe
        assert report.max_rotation == 0.0
        assert report.sync_utilization == 0.0
