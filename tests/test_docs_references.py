"""Documentation lint: referenced files and modules actually exist.

DESIGN.md, EXPERIMENTS.md, THEORY.md, and README.md point at modules,
tests, and benchmarks by path; refactors must not silently orphan those
references.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "THEORY.md",
    ROOT / "docs" / "USAGE.md",
]

#: Paths that docs may reference before they exist locally (generated).
GENERATED = {"report.md", "figure1.csv", "figure1_full.csv", "out.csv"}


def referenced_paths(text: str) -> set[str]:
    """File-looking references: backticked paths ending in .py or .md."""
    candidates = set()
    for match in re.findall(r"`([A-Za-z0-9_\-./]+\.(?:py|md))`", text):
        candidates.add(match)
    # 'a/b.py::test' style references.
    for match in re.findall(r"`([A-Za-z0-9_\-./]+\.py)::", text):
        candidates.add(match)
    return candidates


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_doc_exists(doc):
    assert doc.exists(), doc

@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_referenced_files_exist(doc):
    text = doc.read_text(encoding="utf-8")
    missing = []
    for path in sorted(referenced_paths(text)):
        name = pathlib.PurePosixPath(path).name
        if name in GENERATED:
            continue
        candidates = [
            ROOT / path,
            ROOT / "src" / "repro" / path,
            ROOT / "src" / path,
            ROOT / "tests" / path,
            ROOT / "benchmarks" / path,
            ROOT / "docs" / path,
        ]
        if not any(c.exists() for c in candidates):
            missing.append(path)
    assert not missing, f"{doc.name} references missing files: {missing}"


def test_module_references_import():
    """`repro.x.y`-style dotted references in the docs import cleanly."""
    import importlib

    pattern = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
    failures = []
    for doc in DOCS:
        for match in pattern.findall(doc.read_text(encoding="utf-8")):
            module = match
            while module:
                try:
                    importlib.import_module(module)
                    break
                except ModuleNotFoundError:
                    # Maybe the last component is an attribute.
                    if "." not in module:
                        failures.append((doc.name, match))
                        break
                    module = module.rsplit(".", 1)[0]
    assert not failures, f"unimportable doc references: {failures}"
