"""TTRT selection: the sqrt rule, feasibility clamps, numeric optimum."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ttrt import (
    FixedTTRT,
    HalfMinPeriodTTRT,
    OptimalTTRT,
    SqrtRuleTTRT,
    half_min_period_ttrt,
    optimal_ttrt,
    sqrt_rule_ttrt,
    ttp_saturation_scale,
)
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream


class TestSqrtRule:
    def test_basic_value(self):
        # sqrt(δ P_min) when well inside the feasible range.
        assert sqrt_rule_ttrt(0.1, 1e-4) == pytest.approx(math.sqrt(1e-5))

    def test_clamped_to_half_min(self):
        # δ = P/2: sqrt(P²/2) = P/sqrt(2) > P/2 -> clamp.
        assert sqrt_rule_ttrt(0.1, 0.05) == pytest.approx(0.05)

    def test_zero_delta_floors_positive(self):
        assert sqrt_rule_ttrt(0.1, 0.0) > 0.0

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            sqrt_rule_ttrt(0.0, 1e-4)

    def test_rejects_negative_delta(self):
        with pytest.raises(ConfigurationError):
            sqrt_rule_ttrt(0.1, -1e-4)

    @given(
        p_min=st.floats(min_value=1e-4, max_value=10.0),
        delta=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_always_feasible(self, p_min, delta):
        ttrt = sqrt_rule_ttrt(p_min, delta)
        assert 0.0 < ttrt <= p_min / 2.0


class TestHalfMinRule:
    def test_value(self):
        assert half_min_period_ttrt(0.2) == pytest.approx(0.1)

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            half_min_period_ttrt(-1.0)


class TestSaturationScaleFunction:
    def test_hand_computed(self):
        # P = (0.1,), TTRT = 0.02 -> q = 5; budget = 0.02 - δ - F_ovhd.
        # demand per rotation = C/(q-1) = 0.004.
        scale = ttp_saturation_scale(
            0.02, [0.1], [0.016], delta=0.001, frame_overhead_time_s=0.0005
        )
        budget = 0.02 - 0.001 - 0.0005
        assert scale == pytest.approx(budget / (0.016 / 4))

    def test_zero_when_infeasible_q(self):
        assert ttp_saturation_scale(0.06, [0.1], [0.01], 0.0, 0.0) == 0.0

    def test_zero_when_no_budget(self):
        assert ttp_saturation_scale(0.02, [0.1], [0.01], 0.05, 0.0) == 0.0

    def test_infinite_for_zero_payloads(self):
        assert ttp_saturation_scale(0.02, [0.1], [0.0], 0.001, 0.0) == float("inf")

    def test_rejects_nonpositive_ttrt(self):
        with pytest.raises(ConfigurationError):
            ttp_saturation_scale(0.0, [0.1], [0.01], 0.0, 0.0)


class TestOptimalTTRT:
    def test_beats_fixed_choices(self):
        """The numeric optimum dominates both standard heuristics."""
        periods = [0.05, 0.08, 0.1, 0.15]
        payloads = [0.002, 0.003, 0.001, 0.004]
        delta, fovhd = 5e-4, 1e-5
        best = optimal_ttrt(periods, payloads, delta, fovhd)
        best_scale = ttp_saturation_scale(best, periods, payloads, delta, fovhd)
        for candidate in (
            sqrt_rule_ttrt(min(periods), delta),
            half_min_period_ttrt(min(periods)),
        ):
            assert best_scale >= ttp_saturation_scale(
                candidate, periods, payloads, delta, fovhd
            ) - 1e-9

    def test_equal_periods_near_sqrt_rule(self):
        """For equal periods the paper derives TTRT* ≈ sqrt(δ·P); the sqrt
        rule must achieve nearly the optimal saturation scale."""
        periods = [0.1] * 8
        payloads = [0.001] * 8
        delta = 2e-4
        fovhd = 0.0
        best = optimal_ttrt(periods, payloads, delta, fovhd)
        best_scale = ttp_saturation_scale(best, periods, payloads, delta, fovhd)
        sqrt_scale = ttp_saturation_scale(
            sqrt_rule_ttrt(0.1, delta), periods, payloads, delta, fovhd
        )
        assert sqrt_scale >= 0.90 * best_scale

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            optimal_ttrt([], [], 0.0, 0.0)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_optimal_is_global_on_grid(self, seed):
        """No grid candidate beats the reported optimum (sanity search)."""
        rng = np.random.default_rng(seed)
        periods = sorted(rng.uniform(0.02, 0.3, size=5))
        payloads = rng.uniform(1e-4, 5e-3, size=5)
        delta = float(rng.uniform(1e-5, 2e-3))
        fovhd = 1e-5
        best = optimal_ttrt(periods, payloads, delta, fovhd)
        best_scale = ttp_saturation_scale(best, periods, payloads, delta, fovhd)
        probes = np.geomspace(min(periods) * 1e-3, min(periods) / 2, 200)
        probe_best = max(
            ttp_saturation_scale(t, periods, payloads, delta, fovhd) for t in probes
        )
        assert best_scale >= probe_best * (1 - 1e-3)


class TestPolicies:
    def make_set(self) -> MessageSet:
        return MessageSet(
            [
                SynchronousStream(period_s=0.08, payload_bits=1000, station=0),
                SynchronousStream(period_s=0.10, payload_bits=2000, station=1),
            ]
        )

    def test_sqrt_policy_uses_total_overhead(self):
        # δ' = δ + n·F_ovhd with n = 2 streams.
        ttrt = SqrtRuleTTRT().select(self.make_set(), 1e6, 1e-4, 1e-5)
        assert ttrt == pytest.approx(sqrt_rule_ttrt(0.08, 1e-4 + 2 * 1e-5))

    def test_half_min_policy(self):
        ttrt = HalfMinPeriodTTRT().select(self.make_set(), 1e6, 1e-4, 1e-5)
        assert ttrt == pytest.approx(0.04)

    def test_fixed_policy(self):
        assert FixedTTRT(0.012).select(self.make_set(), 1e6, 1e-4, 1e-5) == 0.012

    def test_fixed_policy_validates(self):
        with pytest.raises(ConfigurationError):
            FixedTTRT(0.0)

    def test_optimal_policy_scale_invariant(self):
        """Scaling payloads must not move the optimal TTRT choice — the
        property the closed-form saturation scale relies on."""
        policy = OptimalTTRT(grid_points=128)
        base = self.make_set()
        a = policy.select(base, 1e6, 1e-4, 1e-5)
        b = policy.select(base.scaled(7.0), 1e6, 1e-4, 1e-5)
        assert a == pytest.approx(b, rel=1e-6)
