"""Response-time bounds: consistency with the theorems and the simulators."""

import numpy as np
import pytest

from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.response import pdp_response_bounds, ttp_response_bounds
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(specs) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period), payload_bits=payload, station=i
        )
        for i, (period, payload) in enumerate(specs)
    )


class TestPDPBounds:
    def make_analysis(self, n, bandwidth=16.0):
        return PDPAnalysis(
            ieee_802_5_ring(mbps(bandwidth), n_stations=n),
            FRAME,
            PDPVariant.MODIFIED,
        )

    def test_empty_set(self):
        assert pdp_response_bounds(self.make_analysis(1), MessageSet([])) == []

    def test_order_matches_input(self):
        """Bounds come back in the caller's stream order even though the
        computation runs in RM order."""
        workload = make_set([(80, 4000), (20, 2000), (50, 3000)])
        bounds = pdp_response_bounds(self.make_analysis(3), workload)
        assert [b.stream_index for b in bounds] == [0, 1, 2]
        assert [b.period_s for b in bounds] == list(workload.periods)

    def test_highest_priority_fastest(self):
        workload = make_set([(20, 2000), (50, 2000), (80, 2000)])
        bounds = pdp_response_bounds(self.make_analysis(3), workload)
        assert bounds[0].bound_s <= bounds[1].bound_s <= bounds[2].bound_s

    def test_consistent_with_theorem(self):
        """Finite bounds for every stream <=> Theorem 4.1 accepts the set."""
        analysis = self.make_analysis(4)
        for payload in (2000, 200_000, 800_000):
            workload = make_set(
                [(20, payload), (40, payload), (60, payload), (100, payload)]
            )
            bounds = pdp_response_bounds(analysis, workload)
            all_meet = all(b.meets_deadline for b in bounds)
            assert all_meet == analysis.is_schedulable(workload)

    def test_slack_sign(self):
        workload = make_set([(50, 2000)])
        bound = pdp_response_bounds(self.make_analysis(1), workload)[0]
        assert bound.meets_deadline == (bound.slack_s >= 0)

    def test_simulation_respects_bounds(self):
        """Observed worst responses never exceed the analytic bounds."""
        workload = make_set([(20, 4000), (40, 12_000), (80, 30_000)])
        analysis = self.make_analysis(3, bandwidth=10.0)
        bounds = pdp_response_bounds(analysis, workload)
        assert all(b.meets_deadline for b in bounds)
        simulator = PDPRingSimulator(
            analysis.ring,
            FRAME,
            workload,
            PDPSimConfig(
                variant=PDPVariant.MODIFIED,
                token_walk=TokenWalkModel.AVERAGE,
            ),
        )
        report = simulator.run(0.8)
        for stats, bound in zip(report.streams, bounds):
            assert stats.max_response <= bound.bound_s + 1e-9


class TestTTPBounds:
    def make_analysis(self, n, bandwidth=100.0):
        return TTPAnalysis(fddi_ring(mbps(bandwidth), n_stations=n), FRAME)

    def test_empty_set(self):
        assert ttp_response_bounds(self.make_analysis(1), MessageSet([])) == []

    def test_unallocatable_raises(self):
        from repro.analysis.ttrt import FixedTTRT

        analysis = TTPAnalysis(
            fddi_ring(mbps(100), n_stations=1), FRAME, FixedTTRT(0.04)
        )
        with pytest.raises(ConfigurationError):
            ttp_response_bounds(analysis, make_set([(50, 100)]))

    def test_allocation_mismatch_rejected(self):
        analysis = self.make_analysis(2)
        allocation = analysis.allocate(make_set([(50, 1000)]))
        with pytest.raises(ConfigurationError):
            ttp_response_bounds(
                analysis, make_set([(50, 1000), (60, 1000)]), allocation
            )

    def test_local_scheme_meets_deadlines(self):
        """For a Theorem 5.1-accepted set every bound proves its deadline
        within the ``+ h_i`` tail tolerance."""
        workload = make_set([(30, 10_000), (50, 30_000), (90, 50_000)])
        analysis = self.make_analysis(3)
        assert analysis.is_schedulable(workload)
        allocation = analysis.analyze(workload).allocation
        bounds = ttp_response_bounds(analysis, workload, allocation)
        for index, bound in enumerate(bounds):
            assert bound.bound_s <= bound.period_s + allocation.bandwidths_s[index] + 1e-12

    def test_simulation_respects_bounds(self):
        workload = make_set([(30, 10_000), (50, 30_000), (90, 50_000)])
        analysis = self.make_analysis(3)
        allocation = analysis.analyze(workload).allocation
        bounds = ttp_response_bounds(analysis, workload, allocation)
        simulator = TTPRingSimulator(
            analysis.ring, FRAME, workload, allocation, TTPSimConfig()
        )
        report = simulator.run(0.8)
        for stats, bound in zip(report.streams, bounds):
            assert stats.max_response <= bound.bound_s + 1e-9

    def test_random_sets_simulation_under_bound(self):
        """Property over sampled workloads: sim max response <= bound."""
        sampler = MessageSetSampler(
            n_streams=5, periods=PeriodDistribution(0.08, 4.0)
        )
        analysis = self.make_analysis(5)
        for seed in range(4):
            workload = sampler.sample(np.random.default_rng(seed))
            scale = analysis.saturation_scale(workload)
            if not (0 < scale < float("inf")):
                continue
            near = workload.scaled(scale * 0.8)
            allocation = analysis.analyze(near).allocation
            bounds = ttp_response_bounds(analysis, near, allocation)
            simulator = TTPRingSimulator(
                analysis.ring, FRAME, near, allocation, TTPSimConfig()
            )
            report = simulator.run(3.0 * near.max_period)
            for stats, bound in zip(report.streams, bounds):
                assert stats.max_response <= bound.bound_s + 1e-9
