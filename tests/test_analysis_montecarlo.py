"""Monte Carlo estimator: determinism, statistics, degenerate handling."""

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    AverageBreakdownEstimate,
    average_breakdown_utilization,
    breakdown_samples,
)
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps


BW = mbps(100)


@pytest.fixture
def ttp_analysis():
    return TTPAnalysis(fddi_ring(BW, n_stations=8), paper_frame_format())


@pytest.fixture
def pdp_analysis():
    return PDPAnalysis(
        ieee_802_5_ring(mbps(10), n_stations=8),
        paper_frame_format(),
        PDPVariant.MODIFIED,
    )


class TestDeterminism:
    def test_same_seed_same_estimate(self, ttp_analysis, sampler):
        a = average_breakdown_utilization(ttp_analysis, sampler, BW, 10, 42)
        b = average_breakdown_utilization(ttp_analysis, sampler, BW, 10, 42)
        assert a.samples == b.samples

    def test_generator_and_seed_agree(self, ttp_analysis, sampler):
        a = average_breakdown_utilization(
            ttp_analysis, sampler, BW, 5, np.random.default_rng(7)
        )
        b = average_breakdown_utilization(ttp_analysis, sampler, BW, 5, 7)
        assert a.samples == b.samples

    def test_different_seeds_differ(self, ttp_analysis, sampler):
        a = average_breakdown_utilization(ttp_analysis, sampler, BW, 5, 1)
        b = average_breakdown_utilization(ttp_analysis, sampler, BW, 5, 2)
        assert a.samples != b.samples


class TestStatistics:
    def test_estimate_fields(self, ttp_analysis, sampler):
        estimate = average_breakdown_utilization(ttp_analysis, sampler, BW, 20, 0)
        assert estimate.n_sets == 20
        assert 0.0 < estimate.mean < 1.0
        assert estimate.std > 0.0
        assert estimate.stderr == pytest.approx(estimate.std / np.sqrt(20))

    def test_confidence_interval_brackets_mean(self, ttp_analysis, sampler):
        estimate = average_breakdown_utilization(ttp_analysis, sampler, BW, 20, 0)
        low, high = estimate.confidence_interval()
        assert low < estimate.mean < high

    def test_single_sample_has_infinite_stderr(self):
        estimate = AverageBreakdownEstimate(
            mean=0.5, std=0.0, n_sets=1, samples=(0.5,)
        )
        assert estimate.stderr == float("inf")
        assert estimate.confidence_interval() == (float("-inf"), float("inf"))

    def test_breakdown_in_unit_interval(self, ttp_analysis, sampler):
        """Breakdown utilizations can never exceed 1 (capacity)."""
        estimate = average_breakdown_utilization(ttp_analysis, sampler, BW, 20, 3)
        assert all(0.0 <= s <= 1.0 for s in estimate.samples)

    def test_pdp_breakdown_in_unit_interval(self, pdp_analysis, sampler):
        estimate = average_breakdown_utilization(
            pdp_analysis, sampler, mbps(10), 10, 3
        )
        assert all(0.0 <= s <= 1.0 + 1e-3 for s in estimate.samples)


class TestDegenerateHandling:
    def test_always_unschedulable_counts_zeroes(self, sampler, rng):
        samples, degenerate = breakdown_samples(
            lambda m: False, sampler, BW, 5, rng
        )
        assert samples == [0.0] * 5
        assert degenerate == 5

    def test_rejects_zero_sets(self, sampler, rng):
        with pytest.raises(ConfigurationError):
            breakdown_samples(lambda m: True, sampler, BW, 0, rng)

    def test_empty_estimate_when_all_infinite(self, sampler):
        """A predicate that never saturates yields an empty estimate."""
        estimate = average_breakdown_utilization(
            lambda m: True, sampler, BW, 3, 0
        )
        assert estimate.n_sets == 0
        assert estimate.degenerate_sets == 3
        assert estimate.mean == 0.0


class TestScaleZeroDoubleAccounting:
    """The deliberate asymmetry documented on breakdown_samples.

    A scale-0 set is counted in ``degenerate`` *and* appended to
    ``samples`` as exactly 0.0 (it must drag the mean down); a scale-inf
    set is counted in ``degenerate`` only.  Hence
    ``len(samples) + degenerate`` can exceed ``n_sets`` — pinned here so
    the batch rewrite (or any future one) cannot silently change the mean
    semantics.
    """

    @staticmethod
    def _mixed_predicate(message_set):
        # Scaling never changes periods, so sets whose shortest period is
        # below the cutoff are unschedulable at *every* scale (-> scale 0)
        # while the rest saturate at a finite positive scale.
        if min(message_set.periods) < 0.05:
            return False
        return message_set.utilization(BW) <= 0.3

    def test_scale_zero_sets_counted_twice(self, sampler, rng):
        n_sets = 30
        samples, degenerate = breakdown_samples(
            self._mixed_predicate, sampler, BW, n_sets, rng
        )
        # Positive payload laws make scale-inf impossible, so every set
        # contributes a sample; the scale-0 ones are *also* degenerate.
        assert len(samples) == n_sets
        assert degenerate > 0  # the period law makes short periods likely
        assert len(samples) + degenerate > n_sets
        assert samples.count(0.0) == degenerate

    def test_zeros_drag_the_mean_down(self, sampler):
        estimate = average_breakdown_utilization(
            self._mixed_predicate, sampler, BW, 30, 12345
        )
        positive = [s for s in estimate.samples if s > 0.0]
        assert estimate.degenerate_sets > 0
        assert estimate.mean < sum(positive) / len(positive)
        assert estimate.n_sets == 30  # zeros stay in the denominator

    def test_infinite_scale_excluded_from_mean(self, sampler, rng):
        samples, degenerate = breakdown_samples(
            lambda m: True, sampler, BW, 4, rng
        )
        assert samples == []  # inf sets contribute nothing to the mean
        assert degenerate == 4

    def test_batched_path_preserves_accounting(self, pdp_analysis, sampler):
        """The chunked batch path and the scalar path agree sample-for-sample."""
        from repro.analysis import montecarlo

        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        batch = breakdown_samples(pdp_analysis, sampler, mbps(10), 20, rng_a)
        message_sets = sampler.sample_many(rng_b, 20)
        from repro.analysis.breakdown import breakdown_utilization

        scalar_samples, scalar_degenerate = [], 0
        for message_set in message_sets:
            result = breakdown_utilization(
                message_set, pdp_analysis, mbps(10), 1e-4
            )
            if result.scale == float("inf"):
                scalar_degenerate += 1
                continue
            if result.scale == 0.0:
                scalar_degenerate += 1
            scalar_samples.append(result.utilization)
        assert 20 > montecarlo.BATCH_CHUNK_SETS  # the chunk loop is exercised
        assert batch == (scalar_samples, scalar_degenerate)
