"""GroupedExactRMTest: verdict-equal to the dense LSD test, any scale.

The grouped variant aggregates equation (4) over distinct periods (one
matrix column per period group instead of per stream), so its structure is
independent of stream count.  Its contract is *verdict* equality with
:class:`ExactRMTest` on every cost vector — intermediate demands may
differ in the last bits, the accept/reject answer may not.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.rm import ExactRMTest, GroupedExactRMTest
from repro.errors import MessageSetError


def _random_instance(rng, n, catalogue_size):
    catalogue = rng.uniform(0.01, 1.0, size=catalogue_size)
    periods = np.sort(catalogue[rng.integers(0, catalogue_size, size=n)])
    costs = rng.uniform(0.0, 1.2, size=n) * periods / n
    return periods, costs


class TestVerdictEquality:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_tied_catalogues(self, seed):
        rng = np.random.default_rng(seed)
        periods, costs = _random_instance(rng, n=40, catalogue_size=5)
        dense = ExactRMTest(periods)
        grouped = GroupedExactRMTest(periods)
        for blocking in (0.0, 1e-4, 1e-2):
            assert dense.is_schedulable(costs, blocking) == grouped.is_schedulable(
                costs, blocking
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_near_boundary_scales(self, seed):
        """Sweep a load scale through the feasibility boundary: the two
        tests must flip from accept to reject at the same grid step."""
        rng = np.random.default_rng(100 + seed)
        periods, costs = _random_instance(rng, n=24, catalogue_size=4)
        dense = ExactRMTest(periods)
        grouped = GroupedExactRMTest(periods)
        verdicts_dense = [
            dense.is_schedulable(costs * s) for s in np.linspace(0.1, 3.0, 30)
        ]
        verdicts_grouped = [
            grouped.is_schedulable(costs * s) for s in np.linspace(0.1, 3.0, 30)
        ]
        assert verdicts_dense == verdicts_grouped
        assert True in verdicts_dense and False in verdicts_dense

    def test_all_distinct_periods(self):
        rng = np.random.default_rng(7)
        periods = np.sort(rng.uniform(0.01, 1.0, size=12))
        costs = rng.uniform(0.0, 0.02, size=12)
        assert ExactRMTest(periods).is_schedulable(costs) == GroupedExactRMTest(
            periods
        ).is_schedulable(costs)

    def test_single_stream(self):
        assert GroupedExactRMTest([0.5]).is_schedulable([0.4])
        assert not GroupedExactRMTest([0.5]).is_schedulable([0.6])

    def test_all_equal_periods(self):
        periods = [0.1] * 16
        costs = [0.005] * 16
        assert GroupedExactRMTest(periods).is_schedulable(costs)
        assert not GroupedExactRMTest(periods).is_schedulable([0.007] * 16)
        assert ExactRMTest(periods).is_schedulable(costs) is True

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_verdicts_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        m = int(rng.integers(1, 6))
        periods, costs = _random_instance(rng, n=n, catalogue_size=m)
        assert ExactRMTest(periods).is_schedulable(costs) == GroupedExactRMTest(
            periods
        ).is_schedulable(costs)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        periods, _ = _random_instance(rng, n=20, catalogue_size=4)
        grouped = GroupedExactRMTest(periods)
        dense = ExactRMTest(periods)
        batch = rng.uniform(0.0, 0.1, size=(16, 20)) * periods
        got = grouped.is_schedulable_batch(batch, 1e-4)
        assert got.tolist() == [
            dense.is_schedulable(row, 1e-4) for row in batch
        ]
        assert got.tolist() == [
            grouped.is_schedulable(row, 1e-4) for row in batch
        ]


class TestConstruction:
    def test_accepts_unsorted_periods(self):
        """Unlike the dense test, RM priority is derived from the values;
        costs stay aligned with the constructor order."""
        rng = np.random.default_rng(11)
        periods = rng.permutation(
            np.array([0.1, 0.2, 0.1, 0.4, 0.2, 0.4, 0.1, 0.2])
        )
        costs = rng.uniform(0.0, 0.03, size=periods.size)
        order = np.argsort(periods, kind="stable")
        dense = ExactRMTest(periods[order])
        grouped = GroupedExactRMTest(periods)
        assert grouped.is_schedulable(costs) == dense.is_schedulable(costs[order])

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(MessageSetError):
            GroupedExactRMTest([])
        with pytest.raises(MessageSetError):
            GroupedExactRMTest([0.1, -0.2])

    def test_rejects_mis_shaped_costs(self):
        grouped = GroupedExactRMTest([0.1, 0.2])
        with pytest.raises(MessageSetError):
            grouped.is_schedulable([0.01])
        with pytest.raises(MessageSetError):
            grouped.is_schedulable([0.01, -0.01])
        with pytest.raises(MessageSetError):
            grouped.is_schedulable([0.01, 0.01], blocking=-1e-9)

    def test_structure_size_tracks_distinct_periods(self):
        """The point of the grouped test: 10^4 streams over 3 periods cost
        the same structure as 3 streams over 3 periods."""
        small = GroupedExactRMTest([0.1, 0.2, 0.4])
        periods = np.tile([0.1, 0.2, 0.4], 4000)
        big = GroupedExactRMTest(periods)
        assert big._matrix.shape == small._matrix.shape
        costs = np.full(periods.size, 0.4 / periods.size / 3.0)
        assert isinstance(big.is_schedulable(costs), bool)
