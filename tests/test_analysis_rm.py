"""Rate-monotonic substrate: Liu–Layland, LSD exact test, RTA equivalence."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.rm import (
    ExactRMTest,
    hyperbolic_bound_holds,
    liu_layland_bound,
    response_time_analysis,
)
from repro.errors import MessageSetError


class TestLiuLaylandBound:
    def test_single_task(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)

    def test_two_tasks(self):
        assert liu_layland_bound(2) == pytest.approx(2 * (2 ** 0.5 - 1))

    def test_limit_is_ln2(self):
        assert liu_layland_bound(10_000) == pytest.approx(np.log(2), rel=1e-4)

    def test_monotone_decreasing(self):
        bounds = [liu_layland_bound(n) for n in range(1, 20)]
        assert bounds == sorted(bounds, reverse=True)

    def test_rejects_zero(self):
        with pytest.raises(MessageSetError):
            liu_layland_bound(0)


class TestHyperbolicBound:
    def test_single_full_task(self):
        assert hyperbolic_bound_holds([1.0])

    def test_dominates_liu_layland(self):
        # A set at the LL bound lies exactly on the hyperbolic boundary
        # (prod(1+u) == 2); back off a hair to stay clear of float noise.
        for n in (2, 3, 5, 10):
            u = liu_layland_bound(n) / n * (1 - 1e-12)
            assert hyperbolic_bound_holds([u] * n)

    def test_rejects_overload(self):
        assert not hyperbolic_bound_holds([0.8, 0.8])

    def test_rejects_negative_utilization(self):
        with pytest.raises(MessageSetError):
            hyperbolic_bound_holds([-0.1])


class TestExactTestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(MessageSetError):
            ExactRMTest([])

    def test_rejects_unsorted(self):
        with pytest.raises(MessageSetError):
            ExactRMTest([10.0, 5.0])

    def test_rejects_nonpositive_period(self):
        with pytest.raises(MessageSetError):
            ExactRMTest([0.0, 1.0])

    def test_scheduling_points_single_task(self):
        test = ExactRMTest([4.0])
        assert list(test.scheduling_points(0)) == [4.0]

    def test_scheduling_points_classic(self):
        # R_3 for periods (4, 6, 10): multiples of 4 (4, 8), of 6 (6), of
        # 10 (10) up to 10.
        test = ExactRMTest([4.0, 6.0, 10.0])
        assert list(test.scheduling_points(2)) == [4.0, 6.0, 8.0, 10.0]

    def test_n_streams(self):
        assert ExactRMTest([1.0, 2.0]).n_streams == 2


class TestExactTestHandComputed:
    """The classic (C, P) = ((1,2,3), (4,6,10)) example: exactly saturated."""

    def test_schedulable(self):
        test = ExactRMTest([4.0, 6.0, 10.0])
        assert test.is_schedulable([1.0, 2.0, 3.0])

    def test_saturated_lowest_priority(self):
        test = ExactRMTest([4.0, 6.0, 10.0])
        ratio, point = test.stream_load_ratio(2, [1.0, 2.0, 3.0])
        # At t = 10: 3*1 + 2*2 + 3 = 10 -> ratio exactly 1.
        assert ratio == pytest.approx(1.0)
        assert point == 10.0

    def test_any_growth_breaks_it(self):
        test = ExactRMTest([4.0, 6.0, 10.0])
        assert not test.is_schedulable([1.0, 2.0, 3.001])
        assert not test.is_schedulable([1.001, 2.0, 3.0])

    def test_middle_stream_ratio(self):
        test = ExactRMTest([4.0, 6.0, 10.0])
        ratio, point = test.stream_load_ratio(1, [1.0, 2.0, 3.0])
        # At t = 6: 2*1 + 2 = 4 -> 4/6.
        assert ratio == pytest.approx(4.0 / 6.0)
        assert point == 6.0

    def test_blocking_shifts_verdict(self):
        test = ExactRMTest([4.0, 6.0, 10.0])
        # The set is exactly saturated, so any blocking breaks it.
        assert not test.is_schedulable([1.0, 2.0, 3.0], blocking=0.01)

    def test_details_report(self):
        test = ExactRMTest([4.0, 6.0, 10.0])
        details = test.details([1.0, 2.0, 3.0])
        assert [d.schedulable for d in details] == [True, True, True]
        assert details[0].min_load_ratio == pytest.approx(0.25)


class TestExactTestValidation:
    def test_wrong_cost_count(self):
        with pytest.raises(MessageSetError):
            ExactRMTest([1.0, 2.0]).is_schedulable([1.0])

    def test_negative_cost(self):
        with pytest.raises(MessageSetError):
            ExactRMTest([1.0]).is_schedulable([-1.0])

    def test_negative_blocking(self):
        with pytest.raises(MessageSetError):
            ExactRMTest([1.0]).is_schedulable([0.5], blocking=-1.0)

    def test_zero_costs_always_schedulable(self):
        assert ExactRMTest([1.0, 2.0, 3.0]).is_schedulable([0.0, 0.0, 0.0])


class TestResponseTimeAnalysis:
    def test_hand_computed(self):
        responses = response_time_analysis([1.0, 2.0, 3.0], [4.0, 6.0, 10.0])
        assert responses[0] == pytest.approx(1.0)
        assert responses[1] == pytest.approx(3.0)
        assert responses[2] == pytest.approx(10.0)

    def test_blocking_adds(self):
        responses = response_time_analysis([1.0], [4.0], blocking=0.5)
        assert responses[0] == pytest.approx(1.5)

    def test_overload_exceeds_deadline(self):
        responses = response_time_analysis([3.0, 4.0], [4.0, 6.0])
        assert responses[1] > 6.0

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(MessageSetError):
            response_time_analysis([1.0], [4.0, 6.0])

    def test_rejects_unsorted_periods(self):
        with pytest.raises(MessageSetError):
            response_time_analysis([1.0, 1.0], [6.0, 4.0])


@st.composite
def random_task_set(draw):
    """Small random task sets with utilizations spanning the boundary."""
    n = draw(st.integers(min_value=1, max_value=6))
    periods = sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=100.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    target_u = draw(st.floats(min_value=0.1, max_value=1.3))
    shares = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=n, max_size=n
        )
    )
    total = sum(shares)
    costs = [s / total * target_u * p for s, p in zip(shares, periods)]
    blocking = draw(st.floats(min_value=0.0, max_value=5.0))
    return costs, periods, blocking


class TestLSDvsRTA:
    """The two exact characterizations must agree everywhere."""

    @settings(max_examples=200, deadline=None)
    @given(task_set=random_task_set())
    def test_equivalence(self, task_set):
        costs, periods, blocking = task_set
        lsd = ExactRMTest(periods).is_schedulable(costs, blocking)
        responses = response_time_analysis(costs, periods, blocking)
        # On the exact knife edge (a response within one relative ulp-band
        # of its deadline, e.g. C=P=1, B=1e-10) the two formulations may
        # legitimately land on opposite sides of the float boundary; the
        # equivalence claim only binds away from it.
        for r, p in zip(responses, periods):
            assume(abs(r - p) > 1e-9 * p)
        rta = all(r <= p for r, p in zip(responses, periods))
        assert lsd == rta

    @settings(max_examples=100, deadline=None)
    @given(task_set=random_task_set())
    def test_liu_layland_is_sufficient(self, task_set):
        costs, periods, _ = task_set
        utilization = sum(c / p for c, p in zip(costs, periods))
        if utilization <= liu_layland_bound(len(costs)):
            assert ExactRMTest(periods).is_schedulable(costs)

    @settings(max_examples=100, deadline=None)
    @given(task_set=random_task_set())
    def test_monotone_in_costs(self, task_set):
        """Shrinking every cost never breaks schedulability."""
        costs, periods, blocking = task_set
        test = ExactRMTest(periods)
        if test.is_schedulable(costs, blocking):
            smaller = [c * 0.5 for c in costs]
            assert test.is_schedulable(smaller, blocking)

    @settings(max_examples=100, deadline=None)
    @given(task_set=random_task_set())
    def test_utilization_above_one_unschedulable(self, task_set):
        costs, periods, blocking = task_set
        utilization = sum(c / p for c, p in zip(costs, periods))
        if utilization > 1.0 + 1e-9:
            assert not ExactRMTest(periods).is_schedulable(costs, blocking)
