"""Theorem 5.1: local allocation algebra, protocol constraint, saturation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ttp import (
    TTPAnalysis,
    local_scheme_allocation,
    ttp_overhead_delta,
)
from repro.analysis.ttrt import FixedTTRT
from repro.errors import AllocationError, ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.frames import FrameFormat
from repro.network.standards import fddi_ring
from repro.units import mbps, milliseconds


FRAME = FrameFormat(info_bits=512, overhead_bits=112)


def make_set(payloads, periods) -> MessageSet:
    return MessageSet(
        SynchronousStream(period_s=p, payload_bits=c, station=i)
        for i, (c, p) in enumerate(zip(payloads, periods))
    )


class TestOverheadDelta:
    def test_is_theta_plus_async_frame(self):
        ring = fddi_ring(mbps(100), n_stations=8)
        delta = ttp_overhead_delta(ring, 624.0)
        assert delta == pytest.approx(ring.theta + 624.0 / mbps(100))

    def test_rejects_negative_frame(self):
        ring = fddi_ring(mbps(100), n_stations=8)
        with pytest.raises(ConfigurationError):
            ttp_overhead_delta(ring, -1.0)

    def test_delta_shrinks_with_bandwidth(self):
        deltas = [
            ttp_overhead_delta(fddi_ring(mbps(b), n_stations=8), 624.0)
            for b in (10, 100, 1000)
        ]
        assert deltas == sorted(deltas, reverse=True)


class TestLocalAllocation:
    """Hand-checked algebra at 1 Mbps so bits == microseconds."""

    BW = 1e6
    FOVHD = 112e-6  # 112 bits at 1 Mbps
    DELTA = 1e-3

    def test_hand_computed(self):
        # P = (50, 100) ms, TTRT = 10 ms -> q = (5, 10).
        # C = (2000, 3000) bits -> (2, 3) ms.
        # h_1 = 2/4 + 0.112 = 0.612 ms; h_2 = 3/9 + 0.112 ms.
        message_set = make_set([2000, 3000], [0.050, 0.100])
        alloc = local_scheme_allocation(
            message_set, 0.010, self.BW, self.FOVHD, self.DELTA
        )
        assert alloc.token_visits == (5, 10)
        assert alloc.bandwidths_s[0] == pytest.approx(0.002 / 4 + self.FOVHD)
        assert alloc.bandwidths_s[1] == pytest.approx(0.003 / 9 + self.FOVHD)

    def test_augmented_lengths_eq_8(self):
        # C'_i = C_i + (q_i - 1) F_ovhd.
        message_set = make_set([2000, 3000], [0.050, 0.100])
        alloc = local_scheme_allocation(
            message_set, 0.010, self.BW, self.FOVHD, self.DELTA
        )
        assert alloc.augmented_lengths_s[0] == pytest.approx(0.002 + 4 * self.FOVHD)
        assert alloc.augmented_lengths_s[1] == pytest.approx(0.003 + 9 * self.FOVHD)

    def test_deadline_constraint_by_construction(self):
        """X_i = (q_i - 1) h_i >= C'_i holds with equality for the local scheme."""
        message_set = make_set([2000, 3000, 12_000], [0.050, 0.100, 0.220])
        alloc = local_scheme_allocation(
            message_set, 0.010, self.BW, self.FOVHD, self.DELTA
        )
        assert alloc.satisfies_deadline_constraint()
        for i in range(3):
            assert alloc.minimum_available_time(i) == pytest.approx(
                alloc.augmented_lengths_s[i]
            )

    def test_rejects_single_visit_periods(self):
        # P = 15 ms, TTRT = 10 ms -> q = 1 < 2.
        message_set = make_set([100], [0.015])
        with pytest.raises(AllocationError):
            local_scheme_allocation(
                message_set, 0.010, self.BW, self.FOVHD, self.DELTA
            )

    def test_exact_multiple_period(self):
        # P exactly 2*TTRT: q = 2 is acceptable.
        message_set = make_set([1000], [0.020])
        alloc = local_scheme_allocation(
            message_set, 0.010, self.BW, self.FOVHD, self.DELTA
        )
        assert alloc.token_visits == (2,)

    def test_rejects_nonpositive_ttrt(self):
        with pytest.raises(ConfigurationError):
            local_scheme_allocation(
                make_set([100], [0.1]), 0.0, self.BW, self.FOVHD, self.DELTA
            )

    def test_protocol_slack(self):
        message_set = make_set([2000], [0.050])
        alloc = local_scheme_allocation(
            message_set, 0.010, self.BW, self.FOVHD, self.DELTA
        )
        expected_slack = 0.010 - self.DELTA - alloc.total_bandwidth_s
        assert alloc.protocol_slack_s == pytest.approx(expected_slack)
        assert alloc.satisfies_protocol_constraint() == (expected_slack >= 0)


class TestTTPAnalysis:
    def make_analysis(self, bandwidth_mbps=100.0, policy=None) -> TTPAnalysis:
        return TTPAnalysis(
            fddi_ring(mbps(bandwidth_mbps), n_stations=8), FRAME, policy
        )

    def test_empty_set_schedulable(self):
        assert self.make_analysis().is_schedulable(MessageSet([]))

    def test_light_set_schedulable(self):
        message_set = make_set([8000] * 8, [milliseconds(50 + 10 * i) for i in range(8)])
        assert self.make_analysis().is_schedulable(message_set)

    def test_overload_unschedulable(self):
        message_set = make_set(
            [8_000_000] * 8, [milliseconds(50 + 10 * i) for i in range(8)]
        )
        result = self.make_analysis().analyze(message_set)
        assert not result.schedulable
        assert "protocol constraint" in result.reason

    def test_unallocatable_reports_reason(self):
        analysis = self.make_analysis(policy=FixedTTRT(milliseconds(40)))
        message_set = make_set([100], [milliseconds(50)])  # q = 1
        result = analysis.analyze(message_set)
        assert not result.schedulable
        assert result.allocation is None
        assert "floor(P_i/TTRT)" in result.reason

    def test_theorem_lhs_equals_allocation_sum(self):
        """Equation (13) and the Σh_i form are the same algebra."""
        analysis = self.make_analysis()
        message_set = make_set(
            [8000, 12_000, 20_000], [0.040, 0.080, 0.100]
        )
        ttrt = analysis.select_ttrt(message_set)
        lhs = analysis.theorem_lhs(message_set, ttrt)
        alloc = analysis.allocate(message_set, ttrt)
        assert lhs == pytest.approx(alloc.total_bandwidth_s)

    def test_theorem_lhs_infinite_when_infeasible(self):
        analysis = self.make_analysis(policy=FixedTTRT(milliseconds(40)))
        message_set = make_set([100], [milliseconds(50)])
        assert analysis.theorem_lhs(message_set) == float("inf")

    def test_load_ratio_below_one_iff_schedulable(self):
        analysis = self.make_analysis()
        good = make_set([8000] * 4, [0.05, 0.06, 0.07, 0.08])
        result = analysis.analyze(good)
        assert result.schedulable and result.load_ratio <= 1.0

    def test_with_ring(self):
        analysis = self.make_analysis(100.0)
        slower = analysis.with_ring(analysis.ring.with_bandwidth(mbps(10)))
        assert slower.delta > analysis.delta


class TestSaturationScale:
    def test_boundary_is_tight(self):
        """At λ* the set is schedulable; just above it is not."""
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=4), FRAME)
        message_set = make_set(
            [8000, 16_000, 24_000, 32_000], [0.040, 0.060, 0.080, 0.120]
        )
        scale = analysis.saturation_scale(message_set)
        assert scale > 0
        assert analysis.is_schedulable(message_set.scaled(scale * (1 - 1e-9)))
        assert not analysis.is_schedulable(message_set.scaled(scale * (1 + 1e-6)))

    def test_zero_when_overheads_exhaust_budget(self):
        """At 1 Mbps with many stations, n·F_ovhd alone exceeds the TTRT."""
        analysis = TTPAnalysis(fddi_ring(mbps(1), n_stations=100), FRAME)
        message_set = make_set(
            [100] * 100, [0.018 + 0.001 * i for i in range(100)]
        )
        assert analysis.saturation_scale(message_set) == 0.0

    def test_rejects_empty_set(self):
        analysis = TTPAnalysis(fddi_ring(mbps(100), n_stations=4), FRAME)
        with pytest.raises(ConfigurationError):
            analysis.saturation_scale(MessageSet([]))

    @settings(max_examples=50, deadline=None)
    @given(
        seedling=st.integers(min_value=0, max_value=10_000),
        bandwidth=st.sampled_from([10.0, 100.0, 1000.0]),
    )
    def test_matches_bisection(self, seedling, bandwidth):
        """Closed form agrees with generic bisection over is_schedulable."""
        import numpy as np

        from repro.analysis.breakdown import _bisect_scale

        rng = np.random.default_rng(seedling)
        periods = sorted(rng.uniform(0.02, 0.2, size=4))
        payloads = rng.uniform(1000, 50_000, size=4)
        message_set = make_set(payloads, periods)
        analysis = TTPAnalysis(fddi_ring(mbps(bandwidth), n_stations=4), FRAME)
        closed = analysis.saturation_scale(message_set)
        bisected, _ = _bisect_scale(
            message_set, analysis.is_schedulable, rel_tol=1e-6, max_doublings=128
        )
        if closed == 0.0:
            assert bisected == 0.0
        else:
            assert bisected == pytest.approx(closed, rel=1e-4)
