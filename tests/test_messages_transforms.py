"""Message-set transformations: scaling and utilization targeting."""

import pytest

from repro.errors import MessageSetError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.messages.transforms import scale_payloads, set_utilization, with_payloads
from repro.units import mbps


@pytest.fixture
def workload() -> MessageSet:
    return MessageSet(
        [
            SynchronousStream(period_s=0.01, payload_bits=1000, station=0),
            SynchronousStream(period_s=0.02, payload_bits=3000, station=1),
        ]
    )


class TestScalePayloads:
    def test_scales_all(self, workload):
        scaled = scale_payloads(workload, 3.0)
        assert scaled.payloads_bits == (3000, 9000)

    def test_zero_scale(self, workload):
        assert scale_payloads(workload, 0.0).total_payload_bits() == 0


class TestSetUtilization:
    def test_hits_target(self, workload):
        target = 0.42
        adjusted = set_utilization(workload, mbps(1), target)
        assert adjusted.utilization(mbps(1)) == pytest.approx(target)

    def test_preserves_proportions(self, workload):
        adjusted = set_utilization(workload, mbps(1), 0.5)
        ratio_before = workload.payloads_bits[1] / workload.payloads_bits[0]
        ratio_after = adjusted.payloads_bits[1] / adjusted.payloads_bits[0]
        assert ratio_after == pytest.approx(ratio_before)

    def test_zero_target(self, workload):
        assert set_utilization(workload, mbps(1), 0.0).total_payload_bits() == 0

    def test_rejects_negative_target(self, workload):
        with pytest.raises(MessageSetError):
            set_utilization(workload, mbps(1), -0.1)

    def test_rejects_zero_set_positive_target(self, workload):
        empty = workload.scaled(0.0)
        with pytest.raises(MessageSetError):
            set_utilization(empty, mbps(1), 0.5)


class TestWithPayloads:
    def test_replaces(self, workload):
        replaced = with_payloads(workload, [7, 9])
        assert replaced.payloads_bits == (7, 9)
        assert replaced.periods == workload.periods

    def test_length_mismatch_raises(self, workload):
        with pytest.raises(MessageSetError):
            with_payloads(workload, [1, 2, 3])
