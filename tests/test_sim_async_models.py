"""Poisson asynchronous traffic and response-sample collection."""

import pytest

from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError, SimulationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig
from repro.sim.traffic import PoissonAsyncTraffic
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(n=3) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(30 + 20 * i), payload_bits=4000, station=i
        )
        for i in range(n)
    )


class TestPoissonGenerator:
    def test_arrival_rate_matches_load(self):
        traffic = PoissonAsyncTraffic(offered_load=0.4, frame_bits=624, seed=1)
        bandwidth = mbps(10)
        arrivals = traffic.arrivals_until(5.0, 8, bandwidth)
        frame_time = 624 / bandwidth
        measured_load = len(arrivals) * frame_time / 5.0
        assert measured_load == pytest.approx(0.4, rel=0.1)

    def test_sorted_and_bounded(self):
        traffic = PoissonAsyncTraffic(offered_load=0.2, frame_bits=624, seed=2)
        arrivals = traffic.arrivals_until(1.0, 4, mbps(10))
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 1.0 for t in times)
        assert all(0 <= s < 4 for _, s in arrivals)

    def test_zero_load_empty(self):
        traffic = PoissonAsyncTraffic(offered_load=0.0, frame_bits=624)
        assert traffic.arrivals_until(1.0, 4, mbps(10)) == []

    def test_deterministic_per_seed(self):
        a = PoissonAsyncTraffic(0.3, 624, seed=5).arrivals_until(1.0, 4, mbps(10))
        b = PoissonAsyncTraffic(0.3, 624, seed=5).arrivals_until(1.0, 4, mbps(10))
        assert a == b

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            PoissonAsyncTraffic(offered_load=-0.1, frame_bits=624)
        with pytest.raises(ConfigurationError):
            PoissonAsyncTraffic(offered_load=0.1, frame_bits=0)


class TestPDPPoissonMode:
    def test_mutually_exclusive_with_saturating(self):
        with pytest.raises(ConfigurationError):
            PDPSimConfig(
                async_saturating=True,
                async_poisson=PoissonAsyncTraffic(0.2, 624),
            )

    def test_async_utilization_tracks_offered_load(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        simulator = PDPRingSimulator(
            ring, FRAME, make_set(),
            PDPSimConfig(
                async_saturating=False,
                async_poisson=PoissonAsyncTraffic(0.3, 624, seed=3),
            ),
        )
        report = simulator.run(2.0)
        # Light sync load: offered async should nearly all get through.
        assert report.async_utilization == pytest.approx(0.3, abs=0.08)
        assert report.deadline_safe

    def test_lighter_than_saturating(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        poisson = PDPRingSimulator(
            ring, FRAME, make_set(),
            PDPSimConfig(
                async_saturating=False,
                async_poisson=PoissonAsyncTraffic(0.2, 624, seed=3),
            ),
        ).run(1.0)
        saturating = PDPRingSimulator(
            ring, FRAME, make_set(), PDPSimConfig(async_saturating=True)
        ).run(1.0)
        assert poisson.async_utilization < saturating.async_utilization


class TestTTPPoissonMode:
    def build(self, config: TTPSimConfig):
        ring = fddi_ring(mbps(100), n_stations=3)
        workload = make_set()
        analysis = TTPAnalysis(ring, FRAME)
        allocation = analysis.allocate(workload)
        return TTPRingSimulator(ring, FRAME, workload, allocation, config)

    def test_mutually_exclusive_with_saturating(self):
        with pytest.raises(ConfigurationError):
            TTPSimConfig(
                async_saturating=True,
                async_poisson=PoissonAsyncTraffic(0.2, 624),
            )

    def test_async_utilization_tracks_offered_load(self):
        simulator = self.build(
            TTPSimConfig(
                async_saturating=False,
                async_poisson=PoissonAsyncTraffic(0.25, 624, seed=4),
            )
        )
        report = simulator.run(2.0)
        assert report.async_utilization == pytest.approx(0.25, abs=0.06)
        assert report.deadline_safe


class TestResponseCollection:
    def test_pdp_collects_samples(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        simulator = PDPRingSimulator(
            ring, FRAME, make_set(), PDPSimConfig(collect_responses=True)
        )
        report = simulator.run(1.0)
        for stats in report.streams:
            assert len(stats.responses) == stats.completed
            assert stats.response_percentile(100) == pytest.approx(
                stats.max_response
            )
            assert stats.response_percentile(0) <= stats.response_percentile(99)

    def test_collection_off_by_default(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        report = PDPRingSimulator(
            ring, FRAME, make_set(), PDPSimConfig()
        ).run(0.3)
        assert report.streams[0].responses == []
        with pytest.raises(SimulationError):
            report.streams[0].response_percentile(50)

    def test_sample_limit_respected(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        simulator = PDPRingSimulator(
            ring, FRAME, make_set(),
            PDPSimConfig(collect_responses=True, response_sample_limit=5),
        )
        report = simulator.run(2.0)
        for stats in report.streams:
            assert len(stats.responses) <= 5

    def test_ttp_collects_samples(self):
        ring = fddi_ring(mbps(100), n_stations=3)
        workload = make_set()
        analysis = TTPAnalysis(ring, FRAME)
        simulator = TTPRingSimulator(
            ring, FRAME, workload, analysis.allocate(workload),
            TTPSimConfig(collect_responses=True),
        )
        report = simulator.run(1.0)
        assert any(stats.responses for stats in report.streams)

    def test_percentile_validates_range(self):
        from repro.sim.trace import DeadlineStats

        stats = DeadlineStats(stream_index=0, sample_limit=10)
        stats.record_completion(0.0, 1.0, 0.5)
        with pytest.raises(SimulationError):
            stats.response_percentile(101)
