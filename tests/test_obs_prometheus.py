"""Prometheus exposition and bucketed histograms.

Three properties carry the weight: :func:`repro.obs.prometheus.render`
round-trips through :func:`repro.obs.prometheus.parse` (the exposition
is machine-checkable, not eyeballed), bucketed histograms merged across
worker registries equal single-process totals (the ``parallel.py``
contract), and snapshots are atomic — a concurrent reader never sees a
counter/histogram pair torn apart mid-update.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs import prometheus
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    bucket_quantile,
)


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert prometheus.sanitize_name("service.http-errors") == (
            "service_http_errors"
        )

    def test_leading_digit_gets_prefixed(self):
        assert prometheus.sanitize_name("5xx.count") == "_5xx_count"


class TestRender:
    def test_counter_and_gauge_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("service.http_requests").inc(42)
        reg.gauge("service.queue_depth").set(7)
        families = prometheus.parse(prometheus.render(reg.snapshot()))
        requests = families["repro_service_http_requests_total"]
        assert requests["type"] == "counter"
        assert requests["samples"][0]["value"] == 42
        depth = families["repro_service_queue_depth"]
        assert depth["type"] == "gauge"
        assert depth["samples"][0]["value"] == 7

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        families = prometheus.parse(prometheus.render(reg.snapshot()))
        family = families["repro_lat"]
        assert family["type"] == "histogram"
        buckets = {
            s["labels"]["le"]: s["value"]
            for s in family["samples"]
            if s["name"] == "repro_lat_bucket"
        }
        assert buckets == {"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}
        by_name = {s["name"]: s["value"] for s in family["samples"]}
        assert by_name["repro_lat_count"] == 5
        assert by_name["repro_lat_sum"] == pytest.approx(5.605)

    def test_exemplars_attach_to_their_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=(0.01, 0.1))
        hist.observe(0.05, exemplar="abc123")
        text = prometheus.render(reg.snapshot())
        assert '# {trace_id="abc123"} 0.05' in text
        family = prometheus.parse(text)["repro_lat"]
        exemplars = [
            s["exemplar"]
            for s in family["samples"]
            if s["exemplar"] is not None
        ]
        assert exemplars == [
            {"labels": {"trace_id": "abc123"}, "value": 0.05}
        ]
        strict = prometheus.render(reg.snapshot(), exemplars=False)
        assert "trace_id" not in strict
        prometheus.parse(strict)  # still valid without the suffix

    def test_unbucketed_histogram_renders_as_summary(self):
        reg = MetricsRegistry()
        reg.histogram("probe").observe(3.0)
        family = prometheus.parse(prometheus.render(reg.snapshot()))[
            "repro_probe"
        ]
        assert family["type"] == "summary"
        values = {s["name"]: s["value"] for s in family["samples"]}
        assert values == {"repro_probe_sum": 3.0, "repro_probe_count": 1}

    def test_unknown_type_raises_instead_of_skipping(self):
        with pytest.raises(ConfigurationError):
            prometheus.render({"weird": {"type": "mystery", "value": 1}})

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ConfigurationError):
            prometheus.parse("# TYPE broken\n")
        with pytest.raises(ConfigurationError):
            prometheus.parse("{oops} 1\n")

    def test_infinite_values_survive_the_round_trip(self):
        reg = MetricsRegistry()
        reg.gauge("level").set(math.inf)
        family = prometheus.parse(prometheus.render(reg.snapshot()))[
            "repro_level"
        ]
        assert family["samples"][0]["value"] == math.inf


class TestMerge:
    def test_worker_merge_equals_single_process_totals(self):
        """N per-worker registries merged == one registry fed everything."""
        observations = [i * 0.003 for i in range(60)]
        workers = [MetricsRegistry() for _ in range(3)]
        for index, value in enumerate(observations):
            reg = workers[index % 3]
            reg.counter("requests").inc()
            reg.histogram(
                "lat", buckets=DEFAULT_LATENCY_BUCKETS_S
            ).observe(value, exemplar=f"t{index}")

        merged = MetricsRegistry()
        for worker in workers:
            merged.merge(worker.snapshot())

        single = MetricsRegistry()
        for index, value in enumerate(observations):
            single.counter("requests").inc()
            single.histogram(
                "lat", buckets=DEFAULT_LATENCY_BUCKETS_S
            ).observe(value, exemplar=f"t{index}")

        merged_snap = merged.snapshot()
        single_snap = single.snapshot()
        assert merged_snap["requests"] == single_snap["requests"]
        m_lat, s_lat = merged_snap["lat"], single_snap["lat"]
        for key in ("count", "total", "sum_squares", "min", "max"):
            assert m_lat[key] == pytest.approx(s_lat[key])
        assert m_lat["buckets"]["bounds"] == s_lat["buckets"]["bounds"]
        assert m_lat["buckets"]["counts"] == s_lat["buckets"]["counts"]
        # exemplars are last-writer-wins, but land in the same buckets
        assert set(m_lat["buckets"]["exemplars"]) == set(
            s_lat["buckets"]["exemplars"]
        )

    def test_merge_rejects_mismatched_bounds(self):
        left = MetricsRegistry()
        left.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        right = MetricsRegistry()
        right.histogram("lat", buckets=(0.2, 2.0)).observe(0.05)
        with pytest.raises(ConfigurationError):
            left.merge(right.snapshot())

    def test_bounds_cannot_change_once_attached(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.1, 1.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("lat", buckets=(0.2, 2.0))


class TestAtomicSnapshot:
    def test_held_updates_are_never_torn(self):
        """Counter and histogram updated under hold() always agree."""
        reg = MetricsRegistry()
        count = reg.counter("requests")
        lat = reg.histogram("lat", buckets=(0.1, 1.0))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                with reg.hold():
                    count.inc()
                    lat.observe(0.05)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(300):
                snap = reg.snapshot()
                if "requests" not in snap:
                    continue  # nothing written yet
                assert snap["requests"]["value"] == snap["lat"]["count"]
        finally:
            stop.set()
            thread.join(timeout=10.0)


class TestBucketQuantile:
    def test_empty_histogram_has_no_quantile(self):
        assert bucket_quantile((0.1, 1.0), [0, 0, 0], 0.5) is None

    def test_interpolates_within_the_containing_bucket(self):
        # 10 observations in (0.1, 0.2]: the median sits mid-bucket.
        assert bucket_quantile((0.1, 0.2), [0, 10, 0], 0.5) == (
            pytest.approx(0.15)
        )

    def test_first_bucket_interpolates_from_zero(self):
        assert bucket_quantile((0.1, 0.2), [10, 0, 0], 0.5) == (
            pytest.approx(0.05)
        )

    def test_overflow_mass_reports_the_last_bound(self):
        assert bucket_quantile((0.1, 0.2), [0, 0, 5], 0.99) == 0.2

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ConfigurationError):
            bucket_quantile((0.1,), [1, 0], 1.5)
