"""Figure 1 harness: shape assertions at a scaled-down configuration.

This is the headline reproduction test: on a small ring (fast enough for
CI) every qualitative property of the paper's figure must hold.
"""

import pytest

from repro.experiments.config import PaperParameters
from repro.experiments.figure1 import (
    PAPER_BANDWIDTHS_MBPS,
    Figure1Result,
    run_figure1,
)


@pytest.fixture(scope="module")
def figure1() -> Figure1Result:
    params = PaperParameters().scaled_down(n_stations=16, monte_carlo_sets=8)
    return run_figure1(params)


class TestShape:
    def test_all_shape_checks_pass(self, figure1):
        report = figure1.shape_report()
        failures = [name for name, ok in report.items() if not ok]
        assert not failures, f"shape checks failed: {failures}"

    def test_crossover_in_paper_band(self, figure1):
        """The paper locates the handover between 10 and 100 Mbps; accept a
        neighbouring grid point on either side for a small ring."""
        crossover = figure1.crossover_bandwidth()
        assert crossover is not None
        assert 4.0 <= crossover <= 160.0

    def test_pdp_peaks_in_low_mbps_decade(self, figure1):
        assert 1.0 <= figure1.peak_bandwidth("pdp_standard") <= 63.0
        assert 1.0 <= figure1.peak_bandwidth("pdp_modified") <= 100.0

    def test_ttp_high_bandwidth_plateau(self, figure1):
        """FDDI approaches but never exceeds full utilization."""
        ttp = figure1.series("ttp")
        assert 0.8 < ttp[-1] <= 1.0

    def test_pdp_collapses_at_gigabit(self, figure1):
        """Both 802.5 curves fall below 20% of their peak at 1 Gbps."""
        for name in ("pdp_standard", "pdp_modified"):
            series = figure1.series(name)
            assert series[-1] < 0.25 * max(series)

    def test_all_values_are_utilizations(self, figure1):
        for name in ("pdp_standard", "pdp_modified", "ttp"):
            assert all(0.0 <= v <= 1.0 for v in figure1.series(name))


class TestDataset:
    def test_grid_covered(self, figure1):
        assert figure1.bandwidths == list(PAPER_BANDWIDTHS_MBPS)

    def test_rows_align(self, figure1):
        rows = figure1.rows()
        assert len(rows) == len(PAPER_BANDWIDTHS_MBPS)
        assert all(len(r) == len(Figure1Result.CSV_HEADERS) for r in rows)
        assert len(Figure1Result.CSV_HEADERS) == 10

    def test_table_renders(self, figure1):
        table = figure1.to_table()
        assert "BW (Mbps)" in table
        assert "FDDI" in table

    def test_plot_renders(self, figure1):
        plot = figure1.to_ascii_plot()
        assert "Figure 1" in plot

    def test_estimates_carry_uncertainty(self, figure1):
        point = figure1.points[5]
        assert point.pdp_modified.n_sets == 8
        assert point.pdp_modified.stderr >= 0.0


class TestDeterminism:
    def test_same_parameters_same_result(self):
        params = PaperParameters().scaled_down(n_stations=8, monte_carlo_sets=3)
        a = run_figure1(params, bandwidths_mbps=(10.0, 100.0))
        b = run_figure1(params, bandwidths_mbps=(10.0, 100.0))
        assert a.points == b.points

    def test_paired_sampling_across_protocols(self):
        """All protocols at one bandwidth see identical workloads: the same
        seed drives each estimate."""
        params = PaperParameters().scaled_down(n_stations=8, monte_carlo_sets=3)
        result = run_figure1(params, bandwidths_mbps=(100.0,))
        point = result.points[0]
        # Different protocols, same number of non-degenerate samples drawn
        # from the same population (weak but cheap pairing evidence).
        assert point.pdp_standard.n_sets == point.ttp.n_sets


class TestParallelExecution:
    """--jobs N must be a pure performance knob: identical output."""

    def test_jobs_values_give_identical_means(self):
        params = PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=4)
        bandwidths = (2.5, 10.0, 100.0)
        sequential = run_figure1(params, bandwidths_mbps=bandwidths, jobs=1)
        parallel = run_figure1(
            PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=4),
            bandwidths_mbps=bandwidths,
            jobs=2,
        )
        assert sequential.points == parallel.points

    def test_shape_checks_pass_with_parallel_jobs(self):
        params = PaperParameters().scaled_down(n_stations=16, monte_carlo_sets=8)
        report = run_figure1(params, jobs=2).shape_report()
        failures = [name for name, ok in report.items() if not ok]
        assert not failures, f"shape checks failed under --jobs 2: {failures}"

    def test_jobs_zero_means_all_cores(self):
        params = PaperParameters().scaled_down(n_stations=8, monte_carlo_sets=2)
        result = run_figure1(params, bandwidths_mbps=(10.0,), jobs=0)
        assert result.points[0].ttp.n_sets >= 1

    def test_negative_jobs_rejected(self):
        from repro.errors import ConfigurationError

        params = PaperParameters().scaled_down(n_stations=8, monte_carlo_sets=2)
        with pytest.raises(ConfigurationError):
            run_figure1(params, bandwidths_mbps=(10.0, 100.0), jobs=-1)
