"""Standard presets: the constants of the paper's Section 6.2."""

import pytest

from repro.network.standards import (
    FDDI_STATION_BIT_DELAY,
    FDDI_TOKEN_BITS,
    IEEE_802_5_STATION_BIT_DELAY,
    IEEE_802_5_TOKEN_BITS,
    PAPER_FRAME_OVERHEAD_BITS,
    fddi_ring,
    ieee_802_5_ring,
    paper_frame_format,
)
from repro.units import mbps


class TestConstants:
    def test_paper_bit_delays(self):
        assert IEEE_802_5_STATION_BIT_DELAY == 4.0
        assert FDDI_STATION_BIT_DELAY == 75.0

    def test_paper_overhead(self):
        assert PAPER_FRAME_OVERHEAD_BITS == 112.0

    def test_token_lengths(self):
        assert IEEE_802_5_TOKEN_BITS == 24.0
        assert FDDI_TOKEN_BITS == 88.0


class TestPresets:
    def test_802_5_defaults(self):
        ring = ieee_802_5_ring(mbps(4))
        assert ring.n_stations == 100
        assert ring.station_spacing_m == 100.0
        assert ring.station_bit_delay == 4.0
        assert ring.velocity_factor == 0.75
        assert ring.bandwidth_bps == mbps(4)

    def test_fddi_defaults(self):
        ring = fddi_ring(mbps(100))
        assert ring.station_bit_delay == 75.0
        assert ring.token_bits == 88.0

    def test_fddi_has_larger_theta_same_bandwidth(self):
        """FDDI interfaces buffer more bits, so Θ_FDDI > Θ_802.5."""
        assert fddi_ring(mbps(10)).theta > ieee_802_5_ring(mbps(10)).theta

    def test_custom_station_count(self):
        assert ieee_802_5_ring(mbps(10), n_stations=16).n_stations == 16

    def test_frame_format_paper_values(self):
        frame = paper_frame_format()
        assert frame.info_bits == 512.0
        assert frame.overhead_bits == 112.0

    def test_frame_format_custom_payload(self):
        assert paper_frame_format(payload_bytes=128).info_bits == 1024.0

    def test_propagation_magnitude(self):
        """10 km of fiber at 0.75c is ~44.5 µs — the constant P of eq. 14."""
        ring = ieee_802_5_ring(mbps(10))
        assert ring.propagation_delay_s == pytest.approx(44.5e-6, rel=0.01)
