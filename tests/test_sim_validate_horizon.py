"""Horizon selection and invocation-coverage accounting in sim.validate.

Pins two fixes:

* ``default_validation_horizon`` extends the run to whole hyperperiods
  (under a documented cap) instead of a blind ``4 × P_max``, so later
  invocations of long-period streams are exercised under offset phasing.
* The simulators ingest arrivals released after their last processed
  event, so tail-window releases with in-horizon deadlines are accounted
  instead of silently dropped (``expected_invocations`` coverage).
"""

import logging
import math

import pytest

from repro.analysis.pdp import PDPVariant
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.frames import FrameFormat
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim import validate as validate_mod
from repro.sim.validate import (
    HORIZON_CAP_PERIODS,
    _rational_hyperperiod_uncached,
    default_validation_horizon,
    expected_invocations,
)
from repro.units import mbps


def _set(*periods_s: float) -> MessageSet:
    return MessageSet(
        SynchronousStream(period_s=p, payload_bits=800.0, station=i)
        for i, p in enumerate(periods_s)
    )


class TestDefaultValidationHorizon:
    def test_rational_periods_extend_to_hyperperiod(self):
        # Periods 3 ms and 5 ms: hyperperiod 15 ms.  The 4-period minimum
        # (20 ms) rounds up to two hyperperiods plus one P_max of
        # deadline margin.
        horizon = default_validation_horizon(_set(0.003, 0.005))
        assert horizon == pytest.approx(2 * 0.015 + 0.005)

    def test_harmonic_periods_stay_near_minimum(self):
        # Harmonic periods: hyperperiod == P_max, so the horizon is just
        # the requested minimum plus the margin period.
        horizon = default_validation_horizon(_set(0.01, 0.02, 0.04))
        assert horizon == pytest.approx(4 * 0.04 + 0.04)

    def test_coprime_periods_hit_the_cap(self):
        # 97 ms and 101 ms: hyperperiod 9.797 s ≈ 97 P_max, beyond the
        # cap — fall back to the requested minimum.
        message_set = _set(0.097, 0.101)
        horizon = default_validation_horizon(message_set)
        assert horizon == pytest.approx(4 * 0.101)
        assert horizon <= HORIZON_CAP_PERIODS * 0.101

    def test_irrational_float_periods_use_minimum(self):
        # Raw float noise has no small rational hyperperiod.
        message_set = _set(0.0123456789101112, 0.0987654321121314)
        horizon = default_validation_horizon(message_set)
        assert horizon == pytest.approx(4 * 0.0987654321121314)

    def test_min_periods_parameter_scales_the_floor(self):
        message_set = _set(0.003, 0.005)
        assert default_validation_horizon(
            message_set, 10.0
        ) >= 10.0 * 0.005

    def test_never_exceeds_cap(self):
        for periods in [(0.003, 0.005), (0.097, 0.101), (1.0,)]:
            message_set = _set(*periods)
            horizon = default_validation_horizon(message_set, 200.0)
            assert horizon <= HORIZON_CAP_PERIODS * max(periods) + 1e-12


def _first_primes(count: int) -> list[int]:
    primes: list[int] = []
    candidate = 2
    while len(primes) < count:
        if all(candidate % p for p in primes):
            primes.append(candidate)
        candidate += 1
    return primes


class TestHyperperiodOverflow:
    """Regression: pathological co-prime period sets must degrade, not raise.

    The LCM of many prime denominators is an astronomically large integer;
    the old float-arithmetic overflow guard (``denominator * 1e9``) itself
    raised ``OverflowError`` converting it.  The memoized hyperperiod must
    instead bail out to "irrational" and the horizon fall back to the
    minimum-periods floor.
    """

    def test_prime_reciprocal_periods_bail_to_none(self):
        periods = [1.0 / p for p in _first_primes(150)]
        assert _rational_hyperperiod_uncached(periods) is None

    def test_prime_reciprocal_horizon_is_finite_and_capped(self):
        periods = [1.0 / p for p in _first_primes(150)]
        message_set = _set(*periods)
        horizon = default_validation_horizon(message_set)
        assert math.isfinite(horizon)
        assert horizon == pytest.approx(4.0 * max(periods))

    def test_large_but_tractable_lcm_still_resolves(self):
        # Two primes stay far below the big-int bail-out: the exact
        # hyperperiod (1/97 · 1/89 beat = 1 s · lcm ... ) must still be
        # found, not bailed on.
        assert _rational_hyperperiod_uncached([1.0 / 4, 1.0 / 6]) == (
            pytest.approx(0.5)
        )

    def test_near_coprime_cap_warns_once(self, caplog):
        periods = (0.097, 0.101, 0.103)
        message_set = _set(*periods)
        validate_mod._CAP_WARNED.discard(periods)
        with caplog.at_level(logging.WARNING, logger="repro.sim.validate"):
            first = default_validation_horizon(message_set)
            second = default_validation_horizon(message_set)
        warnings = [
            r for r in caplog.records if "validation horizon cap" in r.message
        ]
        assert len(warnings) == 1
        assert warnings[0].hyperperiod_s > warnings[0].cap_s
        assert first == second == pytest.approx(4.0 * 0.103)
        assert first <= HORIZON_CAP_PERIODS * 0.103


class TestExpectedInvocations:
    def test_counts_only_in_horizon_deadlines(self):
        # Period 0.4 over 1.0 s: releases at 0, 0.4, 0.8; deadlines at
        # 0.4, 0.8, 1.2 — only the first two fall inside the run.
        counts = expected_invocations(_set(0.4), 1.0)
        assert counts == (2,)

    def test_exact_fit_release_is_counted(self):
        # Release at 0.8 with deadline exactly at the horizon counts.
        counts = expected_invocations(_set(0.2), 1.0)
        assert counts == (5,)


class TestTailArrivalAccounting:
    """Releases after the simulator's last event must still be accounted.

    With a frame time much longer than a stream's period, the decide/event
    chain advances in coarse steps and its final event can land well
    before the horizon; every release in that tail window used to vanish
    from the accounting (neither completed nor missed).
    """

    def test_pdp_accounts_every_in_horizon_invocation(self):
        ring = ieee_802_5_ring(mbps(16), n_stations=1)
        # A frame whose wire time (0.3125 s at 16 Mb/s) dwarfs the
        # 62.5 ms period: events advance in ~0.3 s steps and the last one
        # lands near 0.5 s, while releases at 0.5625/0.625/0.6875 s all
        # carry deadlines inside the 0.75 s horizon.  All values are
        # exact in binary so the release times accumulate without error.
        frame = FrameFormat(info_bits=5_000_000.0, overhead_bits=112.0)
        message_set = MessageSet(
            [SynchronousStream(period_s=0.0625, payload_bits=8_000_000.0, station=0)]
        )
        simulator = PDPRingSimulator(
            ring,
            frame,
            message_set,
            PDPSimConfig(
                variant=PDPVariant.STANDARD,
                async_saturating=True,
                token_walk=TokenWalkModel.AVERAGE,
            ),
        )
        duration = 0.75
        report = simulator.run(duration)
        (expected,) = expected_invocations(message_set, duration)
        stats = report.streams[0]
        assert expected == 12
        assert stats.completed + stats.missed >= expected

    def test_ttp_cross_validation_coverage_holds(self):
        # End-to-end: the TTP cross validator asserts coverage internally
        # (raises SimulationError on a shortfall), so a clean return is
        # itself the regression check.
        from repro.analysis.ttp import TTPAnalysis
        from repro.network.standards import fddi_ring
        from repro.sim.validate import cross_validate_ttp

        ring = fddi_ring(mbps(100), n_stations=3)
        frame = paper_frame_format()
        message_set = _set(0.02, 0.03, 0.05)
        validation = cross_validate_ttp(TTPAnalysis(ring, frame), message_set)
        assert validation.expected_invocations
        for stats, want in zip(
            validation.report.streams, validation.expected_invocations
        ):
            assert stats.completed + stats.missed >= want
