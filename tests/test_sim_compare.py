"""Fidelity comparison between the two PDP models."""

import pytest

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.sim.compare import compare_pdp_fidelity
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(specs) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(period), payload_bits=payload, station=i
        )
        for i, (period, payload) in enumerate(specs)
    )


class TestFidelityComparison:
    def test_light_load_agreement(self):
        """With margin, both models complete everything deadline-clean."""
        workload = make_set([(40, 4000), (80, 8000), (120, 8000)])
        ring = ieee_802_5_ring(mbps(16), n_stations=3)
        comparison = compare_pdp_fidelity(ring, FRAME, workload, duration_s=0.6)
        assert comparison.verdicts_agree
        assert comparison.abstract.deadline_safe
        assert comparison.faithful.deadline_safe
        assert comparison.miss_gap == 0

    def test_same_completion_counts_when_clean(self):
        workload = make_set([(40, 4000), (80, 8000)])
        ring = ieee_802_5_ring(mbps(16), n_stations=2)
        comparison = compare_pdp_fidelity(ring, FRAME, workload, duration_s=0.8)
        assert (
            comparison.abstract.total_completed
            == comparison.faithful.total_completed
        )

    @pytest.mark.parametrize("variant", list(PDPVariant))
    def test_near_boundary_agreement(self, variant):
        """At 60% of the analytic breakdown both abstractions stay clean."""
        workload = make_set([(25, 5000), (50, 10_000), (100, 20_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        analysis = PDPAnalysis(ring, FRAME, variant)
        scale, __ = breakdown_scale(workload, analysis, rel_tol=1e-3)
        near = workload.scaled(scale * 0.6)
        comparison = compare_pdp_fidelity(
            ring, FRAME, near, variant=variant, duration_s=0.6,
            n_priority_levels=64,
        )
        assert comparison.faithful.deadline_safe
        assert comparison.verdicts_agree

    def test_faithful_responses_not_dramatically_worse(self):
        """The fidelity gap in worst response stays within the analytic
        factor (the faithful model pays at most a full token lap per frame
        where the abstract one pays the hop distance)."""
        workload = make_set([(30, 6000), (60, 12_000), (90, 12_000)])
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        comparison = compare_pdp_fidelity(ring, FRAME, workload, duration_s=0.8)
        assert comparison.worst_response_ratio() < 3.0

    def test_overload_both_miss(self):
        workload = make_set([(10, 30_000), (12, 30_000), (15, 30_000)])
        ring = ieee_802_5_ring(mbps(4), n_stations=3)
        comparison = compare_pdp_fidelity(ring, FRAME, workload, duration_s=0.5)
        assert not comparison.abstract.deadline_safe
        assert not comparison.faithful.deadline_safe
        assert comparison.verdicts_agree
