"""SynchronousStream: validation, derived quantities, transformations."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MessageSetError
from repro.messages.stream import SynchronousStream
from repro.units import mbps, milliseconds


class TestValidation:
    def test_rejects_zero_period(self):
        with pytest.raises(MessageSetError):
            SynchronousStream(period_s=0.0, payload_bits=100)

    def test_rejects_negative_period(self):
        with pytest.raises(MessageSetError):
            SynchronousStream(period_s=-1.0, payload_bits=100)

    def test_rejects_negative_payload(self):
        with pytest.raises(MessageSetError):
            SynchronousStream(period_s=1.0, payload_bits=-1)

    def test_rejects_negative_station(self):
        with pytest.raises(MessageSetError):
            SynchronousStream(period_s=1.0, payload_bits=1, station=-1)

    def test_zero_payload_allowed(self):
        assert SynchronousStream(period_s=1.0, payload_bits=0).payload_bits == 0


class TestDerived:
    def test_payload_time(self):
        stream = SynchronousStream(period_s=0.1, payload_bits=10_000)
        assert stream.payload_time(mbps(10)) == pytest.approx(1e-3)

    def test_utilization(self):
        stream = SynchronousStream(period_s=0.1, payload_bits=10_000)
        assert stream.utilization(mbps(1)) == pytest.approx(0.1)

    def test_rate(self):
        assert SynchronousStream(period_s=0.02, payload_bits=1).rate_hz() == pytest.approx(50.0)


class TestOrdering:
    def test_rm_order_by_period(self):
        fast = SynchronousStream(period_s=milliseconds(10), payload_bits=10)
        slow = SynchronousStream(period_s=milliseconds(20), payload_bits=10)
        assert fast < slow

    def test_tie_break_on_payload_then_station(self):
        a = SynchronousStream(period_s=0.01, payload_bits=10, station=0)
        b = SynchronousStream(period_s=0.01, payload_bits=20, station=0)
        c = SynchronousStream(period_s=0.01, payload_bits=20, station=1)
        assert a < b < c


class TestTransformations:
    def test_scaled(self):
        stream = SynchronousStream(period_s=0.1, payload_bits=100, station=3)
        scaled = stream.scaled(2.5)
        assert scaled.payload_bits == 250
        assert scaled.period_s == 0.1
        assert scaled.station == 3

    def test_scaled_rejects_negative(self):
        with pytest.raises(MessageSetError):
            SynchronousStream(period_s=0.1, payload_bits=100).scaled(-1)

    def test_with_payload(self):
        stream = SynchronousStream(period_s=0.1, payload_bits=100)
        assert stream.with_payload(7).payload_bits == 7

    def test_with_station(self):
        stream = SynchronousStream(period_s=0.1, payload_bits=100, station=0)
        assert stream.with_station(5).station == 5

    def test_original_unchanged(self):
        stream = SynchronousStream(period_s=0.1, payload_bits=100)
        stream.scaled(2.0)
        assert stream.payload_bits == 100

    @given(
        payload=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        factor=st.floats(min_value=0, max_value=1e3, allow_nan=False),
    )
    def test_scaling_utilization_is_linear(self, payload, factor):
        stream = SynchronousStream(period_s=0.05, payload_bits=payload)
        assert stream.scaled(factor).utilization(1e6) == pytest.approx(
            factor * stream.utilization(1e6), rel=1e-9, abs=1e-12
        )
