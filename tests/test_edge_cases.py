"""Edge cases across the whole library: degenerate but legal inputs.

Each case here was chosen because it sits on a boundary the main tests
glide past: zero payloads inside otherwise-normal sets, single-station
rings, equal periods everywhere, overhead-free frames, periods at exact
TTRT multiples, and extreme bandwidths.
"""

import pytest

from repro.analysis.breakdown import breakdown_scale, breakdown_utilization
from repro.analysis.pdp import PDPAnalysis, PDPVariant, pdp_augmented_length
from repro.analysis.rm import ExactRMTest
from repro.analysis.ttp import TTPAnalysis, local_scheme_allocation
from repro.analysis.ttrt import FixedTTRT
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.frames import FrameFormat
from repro.network.ring import RingNetwork
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import kbps, mbps, gbps, milliseconds


FRAME = paper_frame_format()


class TestZeroPayloadStreams:
    def make_mixed(self) -> MessageSet:
        return MessageSet(
            [
                SynchronousStream(period_s=0.02, payload_bits=0, station=0),
                SynchronousStream(period_s=0.05, payload_bits=8000, station=1),
                SynchronousStream(period_s=0.08, payload_bits=0, station=2),
            ]
        )

    def test_pdp_zero_streams_cost_nothing(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        lengths = analysis.augmented_lengths(self.make_mixed())
        assert lengths[0] == 0.0
        assert lengths[2] == 0.0
        assert lengths[1] > 0.0

    def test_pdp_schedulability_ignores_empty_streams(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=3)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.MODIFIED)
        mixed = self.make_mixed()
        only_loaded = MessageSet([mixed[1]])
        assert analysis.is_schedulable(mixed) == analysis.is_schedulable(
            only_loaded
        )

    def test_ttp_zero_streams_still_pay_overhead(self):
        """The local scheme reserves h_i = F_ovhd even for an empty stream
        (its station still gets a frame slot per rotation)."""
        alloc = local_scheme_allocation(
            self.make_mixed(), 0.005, mbps(10), 1e-5, 1e-4
        )
        assert alloc.bandwidths_s[0] == pytest.approx(1e-5)

    def test_breakdown_with_zero_members(self):
        ring = fddi_ring(mbps(100), n_stations=3)
        analysis = TTPAnalysis(ring, FRAME)
        result = breakdown_utilization(
            self.make_mixed(), analysis, mbps(100)
        )
        assert result.saturated


class TestSingleStation:
    def test_pdp_single_stream(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=1)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        workload = MessageSet(
            [SynchronousStream(period_s=0.05, payload_bits=10_000, station=0)]
        )
        assert analysis.is_schedulable(workload)
        details = analysis.analyze(workload).details
        assert len(details) == 1

    def test_ttp_single_stream(self):
        ring = fddi_ring(mbps(100), n_stations=1)
        analysis = TTPAnalysis(ring, FRAME)
        workload = MessageSet(
            [SynchronousStream(period_s=0.05, payload_bits=10_000, station=0)]
        )
        assert analysis.is_schedulable(workload)

    def test_single_station_ring_geometry(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=1)
        assert ring.theta > 0


class TestEqualPeriods:
    def test_exact_test_handles_identical_periods(self):
        test = ExactRMTest([0.05] * 5)
        assert test.is_schedulable([0.009] * 5)
        assert not test.is_schedulable([0.011] * 5)

    def test_full_utilization_boundary(self):
        """Equal periods: schedulable iff sum of costs <= period."""
        test = ExactRMTest([1.0, 1.0, 1.0])
        assert test.is_schedulable([0.4, 0.3, 0.3])
        assert not test.is_schedulable([0.4, 0.3, 0.31])

    def test_ttp_equal_periods(self):
        ring = fddi_ring(mbps(100), n_stations=4)
        analysis = TTPAnalysis(ring, FRAME)
        workload = MessageSet(
            SynchronousStream(period_s=0.05, payload_bits=50_000, station=i)
            for i in range(4)
        )
        assert analysis.is_schedulable(workload)


class TestOverheadFreeFrames:
    FRAME0 = FrameFormat(info_bits=512, overhead_bits=0)

    def test_pdp_augmented_still_floors_at_theta(self):
        """Even with no overhead bits the header-return floor applies."""
        ring = ieee_802_5_ring(mbps(1000), n_stations=10)
        value = pdp_augmented_length(100.0, ring, self.FRAME0, PDPVariant.MODIFIED)
        assert value >= ring.theta

    def test_ttp_no_overhead_theorem(self):
        ring = fddi_ring(mbps(100), n_stations=4)
        analysis = TTPAnalysis(ring, self.FRAME0)
        assert analysis.frame_overhead_time == 0.0
        workload = MessageSet(
            SynchronousStream(period_s=0.05, payload_bits=1000, station=i)
            for i in range(4)
        )
        assert analysis.is_schedulable(workload)


class TestExactTTRTMultiples:
    def test_period_exactly_twice_ttrt(self):
        """P = 2 TTRT gives q = 2, the minimum legal visit count."""
        workload = MessageSet(
            [SynchronousStream(period_s=0.020, payload_bits=1000, station=0)]
        )
        ring = fddi_ring(mbps(100), n_stations=1)
        analysis = TTPAnalysis(ring, FRAME, FixedTTRT(0.010))
        result = analysis.analyze(workload)
        assert result.allocation is not None
        assert result.allocation.token_visits == (2,)

    def test_period_just_below_twice_ttrt(self):
        workload = MessageSet(
            [SynchronousStream(period_s=0.0199, payload_bits=1000, station=0)]
        )
        ring = fddi_ring(mbps(100), n_stations=1)
        analysis = TTPAnalysis(ring, FRAME, FixedTTRT(0.010))
        assert not analysis.is_schedulable(workload)


class TestExtremeBandwidths:
    def make_workload(self, n=4) -> MessageSet:
        return MessageSet(
            SynchronousStream(
                period_s=milliseconds(40 + 20 * i), payload_bits=2000, station=i
            )
            for i in range(n)
        )

    def test_dialup_bandwidth(self):
        """56 kbps: frames take ~11 ms each; the analyses stay coherent."""
        ring = ieee_802_5_ring(kbps(56), n_stations=4)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.MODIFIED)
        result = analysis.analyze(self.make_workload())
        assert result.worst_ratio > 0  # evaluates without blowing up

    def test_terabit_bandwidth(self):
        """At 1 Tbps everything is propagation-dominated; the PDP ceiling
        collapses while the TTP remains viable."""
        bandwidth = gbps(1000)
        pdp = PDPAnalysis(
            ieee_802_5_ring(bandwidth, n_stations=4), FRAME, PDPVariant.MODIFIED
        )
        ttp = TTPAnalysis(fddi_ring(bandwidth, n_stations=4), FRAME)
        workload = self.make_workload()
        pdp_scale, __ = breakdown_scale(workload, pdp, rel_tol=1e-3)
        ttp_scale = ttp.saturation_scale(workload)
        assert ttp_scale > pdp_scale

    def test_theta_dominates_everything_at_terabit(self):
        ring = ieee_802_5_ring(gbps(1000), n_stations=4)
        assert ring.theta == pytest.approx(ring.propagation_delay_s, rel=1e-3)


class TestFractionalPayloads:
    def test_non_integer_bits_accepted(self):
        """Monte Carlo scaling produces fractional bit counts; the whole
        pipeline must treat them smoothly."""
        workload = MessageSet(
            [SynchronousStream(period_s=0.05, payload_bits=1234.5678, station=0)]
        )
        ring = ieee_802_5_ring(mbps(10), n_stations=1)
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
        assert analysis.is_schedulable(workload)
        scale, __ = breakdown_scale(workload, analysis, rel_tol=1e-3)
        assert scale > 1.0


class TestRingWithZeroDistance:
    def test_collocated_stations(self):
        """Zero spacing (a backplane ring): propagation vanishes but the
        bit-delay latency keeps Θ positive."""
        ring = RingNetwork(
            n_stations=8,
            station_spacing_m=0.0,
            station_bit_delay=4.0,
            token_bits=24.0,
            bandwidth_bps=mbps(10),
        )
        assert ring.propagation_delay_s == 0.0
        assert ring.theta > 0.0
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.MODIFIED)
        workload = MessageSet(
            [SynchronousStream(period_s=0.05, payload_bits=8000, station=0)]
        )
        assert analysis.is_schedulable(workload)
