"""The one-shot markdown report generator."""

import pytest

from repro.experiments.config import PaperParameters
from repro.experiments.report import _markdown_table, generate_report


class TestMarkdownTable:
    def test_structure(self):
        table = _markdown_table(["a", "b"], [[1.0, "x"]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1.0000 | x |"

    def test_int_and_str_cells(self):
        table = _markdown_table(["n"], [[3], ["word"]])
        assert "| 3 |" in table
        assert "| word |" in table


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self) -> str:
        params = PaperParameters().scaled_down(n_stations=6, monte_carlo_sets=3)
        return generate_report(params, title="Test report")

    def test_title_and_config(self, report):
        assert report.startswith("# Test report")
        assert "n=6 stations" in report

    def test_all_sections_present(self, report):
        for heading in (
            "## Figure 1",
            "## TTRT sensitivity",
            "## Frame-size trade-off",
            "## Period robustness",
            "## SBA scheme comparison",
            "## Ring-size sensitivity",
            "## Throughput division",
            "## Crossover frontier",
        ):
            assert heading in report, heading

    def test_shape_checks_recorded(self, report):
        assert report.count("PASS — ") + report.count("FAIL — ") == 6

    def test_is_valid_markdown_tables(self, report):
        """Every table row has the same column count as its header."""
        lines = report.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("|---"):
                header_cols = lines[index - 1].count("|")
                probe = index + 1
                while probe < len(lines) and lines[probe].startswith("|"):
                    assert lines[probe].count("|") == header_cols
                    probe += 1

    def test_timing_footer(self, report):
        assert "Generated in" in report
