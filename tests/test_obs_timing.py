"""Hierarchical timing spans: nesting, aggregation, merging, no-op mode."""

import pytest

from repro.obs import timing


@pytest.fixture(autouse=True)
def clean_recorder():
    """Each test starts and ends with an empty global recorder."""
    timing.reset()
    timing.enable()
    yield
    timing.reset()
    timing.enable()


class TestSpanStats:
    def test_record_accumulates(self):
        stats = timing.SpanStats()
        stats.record(1.0)
        stats.record(3.0)
        assert stats.count == 2
        assert stats.total_s == 4.0
        assert stats.min_s == 1.0 and stats.max_s == 3.0

    def test_to_dict_empty(self):
        d = timing.SpanStats().to_dict()
        assert d["count"] == 0
        assert d["min_s"] is None and d["max_s"] is None


class TestSpanRecorder:
    def test_nested_spans_build_paths(self):
        rec = timing.SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        snap = rec.snapshot()
        assert set(snap) == {"outer", "outer/inner"}
        assert snap["outer"]["count"] == 1
        assert snap["outer/inner"]["count"] == 2

    def test_sibling_spans_do_not_nest(self):
        rec = timing.SpanRecorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        assert set(rec.snapshot()) == {"a", "b"}

    def test_inner_time_bounded_by_outer(self):
        rec = timing.SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                sum(range(1000))
        snap = rec.snapshot()
        assert snap["outer/inner"]["total_s"] <= snap["outer"]["total_s"]

    def test_timed_decorator(self):
        rec = timing.SpanRecorder()

        @rec.timed("work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        assert rec.snapshot()["work"]["count"] == 2

    def test_decorator_nests_under_open_span(self):
        rec = timing.SpanRecorder()

        @rec.timed("leaf")
        def leaf():
            return None

        with rec.span("root"):
            leaf()
        assert "root/leaf" in rec.snapshot()

    def test_merge_adds_counts_and_combines_extremes(self):
        a = timing.SpanRecorder()
        b = timing.SpanRecorder()
        with a.span("cell"):
            pass
        with b.span("cell"):
            sum(range(2000))
        merged_min = min(
            a.snapshot()["cell"]["min_s"], b.snapshot()["cell"]["min_s"]
        )
        a.merge(b.snapshot())
        snap = a.snapshot()["cell"]
        assert snap["count"] == 2
        assert snap["min_s"] == merged_min

    def test_merge_skips_empty_entries(self):
        rec = timing.SpanRecorder()
        rec.merge({"ghost": timing.SpanStats().to_dict()})
        assert rec.snapshot() == {}

    def test_disabled_recorder_is_noop(self):
        rec = timing.SpanRecorder(enabled=False)
        with rec.span("x"):
            pass
        assert rec.snapshot() == {}

    def test_reset_clears_spans(self):
        rec = timing.SpanRecorder()
        with rec.span("x"):
            pass
        rec.reset()
        assert rec.snapshot() == {}

    def test_exception_still_recorded(self):
        rec = timing.SpanRecorder()
        with pytest.raises(ValueError):
            with rec.span("risky"):
                raise ValueError("boom")
        assert rec.snapshot()["risky"]["count"] == 1
        # The stack unwound correctly: the next span is top-level again.
        with rec.span("after"):
            pass
        assert "after" in rec.snapshot()


class TestGlobalRecorder:
    def test_module_functions_hit_the_global(self):
        with timing.span("g"):
            pass
        assert "g" in timing.snapshot()

    def test_disable_enable(self):
        timing.disable()
        with timing.span("hidden"):
            pass
        timing.enable()
        assert timing.snapshot() == {}
