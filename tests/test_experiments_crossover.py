"""Crossover frontier: structure and direction."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import PaperParameters
from repro.experiments.crossover import crossover_map


@pytest.fixture(scope="module")
def frontier():
    params = PaperParameters().scaled_down(n_stations=10, monte_carlo_sets=5)
    return crossover_map(params, station_counts=(5, 10, 20))


class TestStructure:
    def test_one_point_per_ring_size(self, frontier):
        assert [p.n_stations for p in frontier.points] == [5, 10, 20]

    def test_table_renders(self, frontier):
        table = frontier.to_table()
        assert "crossover" in table

    def test_frontier_pairs(self, frontier):
        pairs = frontier.frontier()
        assert len(pairs) == 3
        assert pairs[0][0] == 5

    def test_rejects_empty_inputs(self):
        params = PaperParameters().scaled_down(5, 2)
        with pytest.raises(ConfigurationError):
            crossover_map(params, station_counts=())


class TestPhysics:
    def test_crossover_found_everywhere(self, frontier):
        """On the 1–100 Mbps grid TTP always overtakes eventually."""
        for point in frontier.points:
            assert point.crossover_mbps is not None

    def test_crossover_in_low_band(self, frontier):
        """Handover happens in the paper's 1–100 Mbps window."""
        for point in frontier.points:
            assert 1.0 <= point.crossover_mbps <= 100.0

    def test_ttp_actually_wins_at_crossover(self, frontier):
        for point in frontier.points:
            assert point.ttp_at_crossover > point.pdp_at_crossover

    def test_frontier_rises_with_ring_size(self, frontier):
        """At the low-bandwidth end FDDI's n·F_ovhd rotation tax grows
        faster than the PDP's Θ tax, so bigger rings push the handover to
        higher bandwidths."""
        crossings = [p.crossover_mbps for p in frontier.points]
        assert crossings == sorted(crossings)
