"""The benchmark-canary summarizer: schema, idempotence, CLI."""

import json

from repro.obs import benchjson


def _raw_document() -> dict:
    """A miniature raw pytest-benchmark document."""
    return {
        "datetime": "2026-08-06T00:00:00",
        "version": "4.0.0",
        "commit_info": {"id": "abc123", "dirty": False},
        "machine_info": {
            "node": "host",
            "machine": "x86_64",
            "system": "Linux",
            "release": "6.0",
            "python_version": "3.11.7",
            "python_build": ("main", "today"),  # should be dropped
            "cpu": {
                "brand_raw": "TestCPU",
                "count": 8,
                "arch": "X86_64",
                "flags": ["sse", "avx"] * 50,  # should be dropped
            },
        },
        "benchmarks": [
            {
                "group": "figure1",
                "name": "test_bench_point",
                "fullname": "benchmarks/test_bench.py::test_bench_point",
                "params": None,
                "extra_info": {"spans": {"figure1/bw10/ttp": {"count": 1}}},
                "stats": {
                    "min": 0.01,
                    "max": 0.02,
                    "mean": 0.015,
                    "stddev": 0.001,
                    "median": 0.015,
                    "iqr": 0.001,
                    "q1": 0.014,
                    "q3": 0.016,
                    "ops": 66.6,
                    "total": 0.15,
                    "rounds": 10,
                    "iterations": 1,
                    "data": [0.015] * 10_000,  # the bulk to drop
                    "outliers": "1;2",
                },
            }
        ],
    }


class TestSummarize:
    def test_drops_raw_samples_and_cpu_flags(self):
        summary = benchjson.summarize_benchmark_json(_raw_document())
        (bench,) = summary["benchmarks"]
        assert "data" not in bench["stats"]
        assert "outliers" not in bench["stats"]
        assert "flags" not in summary["machine"]["cpu"]
        assert "python_build" not in summary["machine"]

    def test_keeps_tracked_statistics(self):
        summary = benchjson.summarize_benchmark_json(_raw_document())
        (bench,) = summary["benchmarks"]
        assert bench["stats"]["mean"] == 0.015
        assert bench["stats"]["rounds"] == 10
        assert bench["name"] == "test_bench_point"
        assert bench["extra_info"]["spans"]["figure1/bw10/ttp"]["count"] == 1

    def test_keeps_machine_fingerprint(self):
        summary = benchjson.summarize_benchmark_json(_raw_document())
        assert summary["machine"]["system"] == "Linux"
        assert summary["machine"]["cpu"]["brand"] == "TestCPU"
        assert summary["commit_info"]["id"] == "abc123"

    def test_schema_version_stamped(self):
        summary = benchjson.summarize_benchmark_json(_raw_document())
        assert summary["schema_version"] == benchjson.BENCH_SCHEMA_VERSION

    def test_idempotent(self):
        once = benchjson.summarize_benchmark_json(_raw_document())
        twice = benchjson.summarize_benchmark_json(once)
        assert twice is once

    def test_summary_is_much_smaller(self):
        raw = _raw_document()
        summary = benchjson.summarize_benchmark_json(raw)
        assert len(json.dumps(summary)) < len(json.dumps(raw)) / 10


class TestCli:
    def test_in_place_summarization(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_raw_document()))
        assert benchjson.main([str(path)]) == 0
        summary = json.loads(path.read_text())
        assert summary["schema_version"] == benchjson.BENCH_SCHEMA_VERSION
        assert "data" not in summary["benchmarks"][0]["stats"]

    def test_separate_output_path(self, tmp_path):
        src = tmp_path / "raw.json"
        dst = tmp_path / "summary.json"
        src.write_text(json.dumps(_raw_document()))
        assert benchjson.main([str(src), str(dst)]) == 0
        assert json.loads(src.read_text())["version"] == "4.0.0"  # untouched
        assert json.loads(dst.read_text())["schema_version"] == 2

    def test_usage_error(self, capsys):
        assert benchjson.main([]) == 2
        assert "usage" in capsys.readouterr().err
