"""RingNetwork: latency components, Θ, and derivation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.network.ring import RingNetwork
from repro.units import SPEED_OF_LIGHT, mbps


def make_ring(**overrides) -> RingNetwork:
    defaults = dict(
        n_stations=100,
        station_spacing_m=100.0,
        station_bit_delay=4.0,
        token_bits=24.0,
        bandwidth_bps=mbps(10),
        velocity_factor=0.75,
    )
    defaults.update(overrides)
    return RingNetwork(**defaults)


class TestValidation:
    def test_rejects_no_stations(self):
        with pytest.raises(ConfigurationError):
            make_ring(n_stations=0)

    def test_rejects_negative_spacing(self):
        with pytest.raises(ConfigurationError):
            make_ring(station_spacing_m=-1.0)

    def test_rejects_negative_bit_delay(self):
        with pytest.raises(ConfigurationError):
            make_ring(station_bit_delay=-1.0)

    def test_rejects_negative_token(self):
        with pytest.raises(ConfigurationError):
            make_ring(token_bits=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            make_ring(bandwidth_bps=0.0)

    def test_rejects_bad_velocity(self):
        with pytest.raises(ConfigurationError):
            make_ring(velocity_factor=0.0)


class TestGeometry:
    def test_ring_length(self):
        assert make_ring().ring_length_m == 10_000.0

    def test_single_station_ring(self):
        assert make_ring(n_stations=1).ring_length_m == 100.0


class TestLatencyComponents:
    def test_propagation_delay(self):
        ring = make_ring()
        expected = 10_000.0 / (0.75 * SPEED_OF_LIGHT)
        assert ring.propagation_delay_s == pytest.approx(expected)

    def test_station_latency_scales_inverse_bandwidth(self):
        slow = make_ring(bandwidth_bps=mbps(1))
        fast = make_ring(bandwidth_bps=mbps(100))
        assert slow.station_latency_s == pytest.approx(100 * fast.station_latency_s)

    def test_station_latency_value(self):
        # 100 stations x 4 bits at 10 Mbps = 40 microseconds.
        assert make_ring().station_latency_s == pytest.approx(40e-6)

    def test_token_time(self):
        # 24 bits at 10 Mbps = 2.4 microseconds.
        assert make_ring().token_time == pytest.approx(2.4e-6)

    def test_walk_time_is_sum(self):
        ring = make_ring()
        assert ring.walk_time == pytest.approx(
            ring.propagation_delay_s + ring.station_latency_s
        )

    def test_theta_is_walk_plus_token(self):
        ring = make_ring()
        assert ring.theta == pytest.approx(ring.walk_time + ring.token_time)

    def test_latency_bits(self):
        # Q = token + n * per-station delay = 24 + 400.
        assert make_ring().latency_bits == 424.0

    def test_theta_decomposition_eq_14(self):
        """Θ = P + Q / BW — the decomposition behind equation (14)."""
        ring = make_ring()
        assert ring.theta == pytest.approx(
            ring.propagation_delay_s + ring.latency_bits / ring.bandwidth_bps
        )


class TestDerivation:
    def test_with_bandwidth_changes_only_bandwidth(self):
        ring = make_ring()
        faster = ring.with_bandwidth(mbps(100))
        assert faster.bandwidth_bps == mbps(100)
        assert faster.n_stations == ring.n_stations
        assert faster.propagation_delay_s == ring.propagation_delay_s

    def test_with_stations(self):
        bigger = make_ring().with_stations(200)
        assert bigger.n_stations == 200
        assert bigger.ring_length_m == 20_000.0

    def test_transmission_time(self):
        assert make_ring().transmission_time(1000) == pytest.approx(1e-4)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_ring().n_stations = 5


class TestAsymptotics:
    @given(bw=st.floats(min_value=1e5, max_value=1e12))
    def test_theta_bounded_below_by_propagation(self, bw):
        """Θ can never shrink below the propagation delay — the physical
        fact that drives the PDP's high-bandwidth collapse."""
        ring = make_ring(bandwidth_bps=bw)
        assert ring.theta >= ring.propagation_delay_s

    def test_theta_decreases_with_bandwidth(self):
        thetas = [make_ring(bandwidth_bps=mbps(b)).theta for b in (1, 10, 100, 1000)]
        assert thetas == sorted(thetas, reverse=True)

    def test_theta_converges_to_propagation(self):
        ring = make_ring(bandwidth_bps=1e15)
        assert ring.theta == pytest.approx(ring.propagation_delay_s, rel=1e-3)
