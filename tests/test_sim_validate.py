"""Analysis-versus-simulation cross checks over random workloads.

These are the soundness tests of the whole reproduction: for workloads
randomly drawn from the paper's distributions and scaled near the analysis
boundary, a theorem-accepted configuration must never miss a deadline in
adversarial simulation.
"""

import numpy as np
import pytest

from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.analysis.breakdown import breakdown_scale
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.sim.validate import cross_validate_pdp, cross_validate_ttp
from repro.units import mbps


FRAME = paper_frame_format()
SAMPLER = MessageSetSampler(
    n_streams=6, periods=PeriodDistribution(mean_period_s=0.08, ratio=5.0)
)


class TestPDPCrossValidation:
    @pytest.mark.parametrize("variant", list(PDPVariant))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_consistency_near_boundary(self, variant, seed):
        """Scale each random set to 90% of its breakdown point and check the
        simulator confirms the guarantee."""
        rng = np.random.default_rng(seed)
        message_set = SAMPLER.sample(rng)
        ring = ieee_802_5_ring(mbps(16), n_stations=len(message_set))
        analysis = PDPAnalysis(ring, FRAME, variant)
        scale, _ = breakdown_scale(message_set, analysis, rel_tol=1e-3)
        if not (0 < scale < float("inf")):
            pytest.skip("degenerate sample")
        near = message_set.scaled(scale * 0.9)
        validation = cross_validate_pdp(analysis, near, duration_periods=3.0)
        assert validation.analysis_schedulable
        assert validation.consistent
        assert validation.report.deadline_safe

    def test_wildly_unschedulable_sets_miss(self):
        """Far beyond breakdown, the simulator must observe misses (the
        criteria are not vacuously conservative)."""
        rng = np.random.default_rng(7)
        message_set = SAMPLER.sample(rng)
        ring = ieee_802_5_ring(mbps(16), n_stations=len(message_set))
        analysis = PDPAnalysis(ring, FRAME, PDPVariant.MODIFIED)
        scale, _ = breakdown_scale(message_set, analysis, rel_tol=1e-3)
        heavy = message_set.scaled(scale * 3.0)
        validation = cross_validate_pdp(analysis, heavy, duration_periods=3.0)
        assert not validation.analysis_schedulable
        assert not validation.report.deadline_safe
        assert validation.consistent  # consistency only binds the accept side


class TestTTPCrossValidation:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_consistency_near_boundary(self, seed):
        rng = np.random.default_rng(seed)
        message_set = SAMPLER.sample(rng)
        ring = fddi_ring(mbps(100), n_stations=len(message_set))
        analysis = TTPAnalysis(ring, FRAME)
        scale = analysis.saturation_scale(message_set)
        if not (0 < scale < float("inf")):
            pytest.skip("degenerate sample")
        near = message_set.scaled(scale * 0.9)
        validation = cross_validate_ttp(analysis, near, duration_periods=3.0)
        assert validation.analysis_schedulable
        assert validation.consistent
        assert validation.report.deadline_safe

    def test_rotation_bound_in_validation_runs(self):
        rng = np.random.default_rng(11)
        message_set = SAMPLER.sample(rng)
        ring = fddi_ring(mbps(100), n_stations=len(message_set))
        analysis = TTPAnalysis(ring, FRAME)
        scale = analysis.saturation_scale(message_set)
        near = message_set.scaled(scale * 0.9)
        result = analysis.analyze(near)
        validation = cross_validate_ttp(analysis, near, duration_periods=3.0)
        assert validation.report.max_rotation <= 2 * result.allocation.ttrt_s + 1e-9

    def test_unallocatable_set_handled(self):
        """q_i < 2 sets produce a clean 'no allocation' validation record."""
        from repro.analysis.ttrt import FixedTTRT
        from repro.messages.message_set import MessageSet
        from repro.messages.stream import SynchronousStream

        workload = MessageSet(
            [SynchronousStream(period_s=0.05, payload_bits=100, station=0)]
        )
        ring = fddi_ring(mbps(100), n_stations=1)
        analysis = TTPAnalysis(ring, FRAME, FixedTTRT(0.04))
        validation = cross_validate_ttp(analysis, workload)
        assert not validation.analysis_schedulable
        assert validation.consistent
        assert validation.report.duration == 0.0


class TestHyperperiodMemo:
    def test_memoised_on_distinct_periods(self, monkeypatch):
        """10^5 streams over a 3-period catalogue must cost one Fraction
        walk over 3 values — and the second call none at all."""
        from repro.sim import validate as validate_mod

        calls = []
        real = validate_mod._rational_hyperperiod_uncached

        def counting(periods, max_denominator=1_000_000):
            calls.append(tuple(periods))
            return real(periods, max_denominator)

        monkeypatch.setattr(
            validate_mod, "_rational_hyperperiod_uncached", counting
        )
        validate_mod._HYPERPERIOD_MEMO.clear()
        periods = np.tile([0.1, 0.2, 0.5], 40_000)
        first = validate_mod._rational_hyperperiod(periods)
        assert first == pytest.approx(1.0)
        assert calls == [(0.1, 0.2, 0.5)]  # deduplicated and sorted
        again = validate_mod._rational_hyperperiod(np.array([0.5, 0.2, 0.1]))
        assert again == first
        assert len(calls) == 1  # served from the memo

    def test_memo_keyed_on_denominator_limit(self):
        from repro.sim import validate as validate_mod

        validate_mod._HYPERPERIOD_MEMO.clear()
        a = validate_mod._rational_hyperperiod([0.1, 0.3])
        b = validate_mod._rational_hyperperiod([0.1, 0.3], max_denominator=10)
        assert a == pytest.approx(0.3)
        assert b == pytest.approx(0.3)
        assert len(validate_mod._HYPERPERIOD_MEMO) == 2

    def test_memo_is_bounded(self):
        from repro.sim import validate as validate_mod

        validate_mod._HYPERPERIOD_MEMO.clear()
        for k in range(validate_mod._HYPERPERIOD_MEMO_LIMIT + 50):
            validate_mod._rational_hyperperiod([0.1, 0.1 * (k + 2)])
        assert (
            len(validate_mod._HYPERPERIOD_MEMO)
            <= validate_mod._HYPERPERIOD_MEMO_LIMIT
        )
