"""Online admission controller: policies, lifecycle, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.admission import AdmissionController, AdmissionPolicy
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.errors import ConfigurationError, MessageSetError
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def pdp_controller(n=8, bandwidth=16.0, policy=AdmissionPolicy.HYBRID):
    analysis = PDPAnalysis(
        ieee_802_5_ring(mbps(bandwidth), n_stations=n), FRAME, PDPVariant.MODIFIED
    )
    return AdmissionController(analysis, policy)


def ttp_controller(n=8, bandwidth=100.0, policy=AdmissionPolicy.HYBRID):
    analysis = TTPAnalysis(fddi_ring(mbps(bandwidth), n_stations=n), FRAME)
    return AdmissionController(analysis, policy)


class TestLifecycle:
    def test_admit_and_release(self):
        controller = pdp_controller()
        decision = controller.request(milliseconds(50), 8000)
        assert decision.admitted
        assert controller.admitted_count == 1
        controller.release(decision.stream_id)
        assert controller.admitted_count == 0

    def test_station_reuse_after_release(self):
        controller = pdp_controller(n=1)
        first = controller.request(milliseconds(50), 8000)
        assert first.admitted
        assert not controller.request(milliseconds(50), 8000).admitted
        controller.release(first.stream_id)
        second = controller.request(milliseconds(50), 8000)
        assert second.admitted
        assert second.station == first.station

    def test_capacity_rejection(self):
        controller = pdp_controller(n=2)
        assert controller.request(milliseconds(50), 100).admitted
        assert controller.request(milliseconds(60), 100).admitted
        denial = controller.request(milliseconds(70), 100)
        assert not denial.admitted
        assert denial.tested_by == "capacity"

    def test_release_unknown_id(self):
        with pytest.raises(MessageSetError):
            pdp_controller().release(42)

    def test_unique_ids(self):
        controller = pdp_controller()
        a = controller.request(milliseconds(50), 100)
        b = controller.request(milliseconds(60), 100)
        assert a.stream_id != b.stream_id

    def test_rejected_request_leaves_state(self):
        controller = pdp_controller(n=4, bandwidth=1.0)
        controller.request(milliseconds(30), 8000)
        before = controller.utilization()
        denial = controller.request(milliseconds(10), 5_000_000)
        assert not denial.admitted
        assert controller.utilization() == before

    def test_rejects_non_analysis(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(object())


class TestPolicies:
    def test_exact_policy_admits_heavy_harmonic_load(self):
        """An exact controller admits loads the sufficient bound refuses."""
        exact = pdp_controller(n=4, bandwidth=100.0, policy=AdmissionPolicy.EXACT)
        sufficient = pdp_controller(
            n=4, bandwidth=100.0, policy=AdmissionPolicy.SUFFICIENT
        )
        specs = [(milliseconds(20 * 2**i), 120_000 * 2**i) for i in range(4)]
        exact_admits = sum(
            exact.request(p, c).admitted for p, c in specs
        )
        sufficient_admits = sum(
            sufficient.request(p, c).admitted for p, c in specs
        )
        assert exact_admits >= sufficient_admits

    def test_hybrid_matches_exact_decisions(self):
        """HYBRID must admit exactly what EXACT admits (it only changes
        which test runs, never the verdict)."""
        rng = np.random.default_rng(3)
        requests = [
            (float(rng.uniform(0.02, 0.2)), float(rng.uniform(1e3, 3e5)))
            for _ in range(12)
        ]
        hybrid = pdp_controller(n=12, bandwidth=10.0, policy=AdmissionPolicy.HYBRID)
        exact = pdp_controller(n=12, bandwidth=10.0, policy=AdmissionPolicy.EXACT)
        for period, payload in requests:
            assert (
                hybrid.request(period, payload).admitted
                == exact.request(period, payload).admitted
            )

    def test_hybrid_uses_cheap_path_when_light(self):
        controller = pdp_controller()
        decision = controller.request(milliseconds(100), 1000)
        assert decision.admitted
        assert decision.tested_by == "sufficient"

    def test_ttp_controller_works(self):
        controller = ttp_controller()
        decision = controller.request(milliseconds(50), 20_000)
        assert decision.admitted
        assert controller.analysis.is_schedulable(controller.current_set())


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000),
           policy=st.sampled_from(list(AdmissionPolicy)))
    def test_admitted_set_always_schedulable(self, seed, policy):
        """Whatever the request sequence, the admitted set stays feasible
        (for SUFFICIENT, it stays inside the sufficient region, which
        implies exact feasibility)."""
        rng = np.random.default_rng(seed)
        controller = ttp_controller(n=6, policy=policy)
        for _ in range(10):
            period = float(rng.uniform(0.02, 0.3))
            payload = float(rng.uniform(1e3, 5e5))
            controller.request(period, payload)
            if controller.admitted_count and rng.random() < 0.3:
                victim = next(iter(controller._streams))
                controller.release(victim)
        if controller.admitted_count:
            assert controller.analysis.is_schedulable(controller.current_set())

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_would_admit_agrees_with_request(self, seed):
        rng = np.random.default_rng(seed)
        controller = pdp_controller(n=6)
        for _ in range(6):
            period = float(rng.uniform(0.02, 0.2))
            payload = float(rng.uniform(1e3, 4e5))
            predicted = controller.would_admit(period, payload)
            actual = controller.request(period, payload).admitted
            assert predicted == actual
