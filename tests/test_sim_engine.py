"""The discrete-event kernel: ordering, cancellation, budgets."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda s: log.append("b"))
        sim.schedule(1.0, lambda s: log.append("a"))
        sim.schedule(3.0, lambda s: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        for name in "abcd":
            sim.schedule(1.0, lambda s, n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c", "d"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_after(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda s: s.schedule_after(0.5, lambda s2: seen.append(s2.now)))
        sim.run()
        assert seen == [1.5]

    def test_rejects_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda s: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda s: None)

    def test_events_from_events(self):
        """Cascading events (the token-passing pattern) run to exhaustion."""
        sim = Simulator()
        count = [0]

        def hop(simulator):
            count[0] += 1
            if count[0] < 100:
                simulator.schedule_after(0.1, hop)

        sim.schedule(0.0, hop)
        sim.run()
        assert count[0] == 100
        assert sim.now == pytest.approx(9.9)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda s: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self):
        handle = Simulator().schedule(1.0, lambda s: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None).cancel()
        assert sim.pending_events() == 1


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: log.append(1))
        sim.schedule(5.0, lambda s: log.append(5))
        sim.run_until(2.0)
        assert log == [1]
        assert sim.now == 2.0

    def test_later_events_survive(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda s: log.append(5))
        sim.run_until(2.0)
        sim.run_until(10.0)
        assert log == [5]

    def test_rejects_backwards_horizon(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_event_budget(self):
        sim = Simulator()

        def loop(simulator):
            simulator.schedule_after(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run_until(1.0, max_events=100)

    def test_run_budget(self):
        sim = Simulator()

        def loop(simulator):
            simulator.schedule_after(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)


class TestIntrospection:
    def test_events_processed(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda s: None)
        sim.run()
        assert sim.events_processed == 3

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False
