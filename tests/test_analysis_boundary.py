"""The centralized ``q = floor(P/TTRT)`` boundary rule.

Pins the exact-multiple and just-below-boundary behaviour that the old
per-site ``floor(P/TTRT + 1e-12)`` epsilon got wrong, and the bit-level
scalar/vector agreement the differential fuzzer relies on.
"""

import math

import numpy as np
import pytest

from repro.analysis.boundary import (
    Q_REL_TOL,
    token_visit_count,
    token_visit_counts,
)
from repro.analysis.ttp import local_scheme_allocation
from repro.analysis.ttrt import ttp_saturation_scale
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream


class TestExactMultiples:
    """P = k·TTRT must give q = k for every representable magnitude."""

    @pytest.mark.parametrize("k", [2, 3, 5, 7, 17, 100, 5_000, 100_000, 1_000_000])
    @pytest.mark.parametrize("ttrt", [1e-5, 0.001, 0.0007, 0.1 / 3, 0.0123])
    def test_exact_multiple_counts_exactly(self, k, ttrt):
        period = ttrt * k
        assert token_visit_count(period, ttrt) == k
        assert token_visit_counts([period], ttrt)[0] == k

    def test_old_epsilon_regression(self):
        """The shrunk counterexample that motivated the relative snap.

        ``1.0 / 1e-5 == 99999.99999999999``: one ulp below the exact
        quotient, outside the old absolute ``+1e-12`` nudge.  The old
        rule answered 99999.
        """
        assert math.floor(1.0 / 1e-5 + 1e-12) == 99_999  # the old bug
        assert token_visit_count(1.0, 1e-5) == 100_000

    def test_division_exact_cases_untouched(self):
        # Powers of two divide exactly; no snapping is involved.
        assert token_visit_count(1.0, 0.25) == 4
        assert token_visit_count(6.0, 1.5) == 4


class TestNoOvershoot:
    """Quotients genuinely below an integer must not round up."""

    @pytest.mark.parametrize("k", [2, 3, 10, 1_000])
    def test_just_below_boundary_floors_down(self, k):
        ttrt = 0.01
        # 1e-9 relative below the boundary: physically distinct, must
        # not be snapped (the snap tolerance is 1e-12 relative).
        period = ttrt * k * (1.0 - 1e-9)
        assert token_visit_count(period, ttrt) == k - 1

    def test_old_absolute_epsilon_overshoot_fixed(self):
        """A period 5e-13 below 2·TTRT: the old rule admitted q=2."""
        ttrt = 1.0
        period = 2.0 - 5e-13
        assert math.floor(period / ttrt + 1e-12) == 2  # the old bug
        # The gap (2.5e-13 relative) far exceeds the snap tolerance.
        assert 2.0 - period / ttrt > Q_REL_TOL * 2.0
        assert token_visit_count(period, ttrt) == 1

    def test_one_ulp_below_is_snapped(self):
        ttrt = 0.01
        period = np.nextafter(ttrt * 7, 0.0)
        assert token_visit_count(period, ttrt) == 7


class TestScalarVectorAgreement:
    def test_bit_identical_over_adversarial_grid(self):
        ttrt = 0.003
        periods = []
        for k in range(2, 60):
            exact = ttrt * k
            periods.extend(
                [exact, np.nextafter(exact, 0.0), np.nextafter(exact, np.inf)]
            )
        periods.extend([1.0, 0.1, 7.3e-3, 1e3, ttrt * 2.5])
        vector = token_visit_counts(periods, ttrt)
        scalar = np.array([token_visit_count(p, ttrt) for p in periods], dtype=float)
        assert np.array_equal(vector, scalar)


class TestTheoremPathsAgree:
    """Allocation (scalar) and saturation scale (vector) share the rule."""

    def test_exact_multiple_periods_allocate_and_scale_consistently(self):
        ttrt = 1e-5
        periods = (1.0, ttrt * 99_999)
        allocation = local_scheme_allocation(
            MessageSet(
                SynchronousStream(period_s=p, payload_bits=8_000.0, station=i)
                for i, p in enumerate(periods)
            ),
            ttrt_s=ttrt,
            bandwidth_bps=1e9,
            frame_overhead_time_s=0.0,
            delta_s=0.0,
        )
        assert allocation.token_visits == (100_000, 99_999)

        payload_times = np.array([8_000.0 / 1e9, 8_000.0 / 1e9])
        scale = ttp_saturation_scale(ttrt, periods, payload_times, 0.0, 0.0)
        # Cross-check: the closed-form scale uses the same q values as
        # the allocation.  Reconstruct the scale from the allocation's q.
        q = np.asarray(allocation.token_visits, dtype=float)
        expected = ttrt / float(np.sum(payload_times / (q - 1.0)))
        assert scale == expected

    def test_local_scheme_rejects_true_sub_double_period(self):
        # q must be 1 (not 2) for a period 1e-9 relative below 2·TTRT.
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            local_scheme_allocation(
                MessageSet(
                    [SynchronousStream(period_s=2.0 * (1 - 1e-9), payload_bits=100.0)]
                ),
                ttrt_s=1.0,
                bandwidth_bps=1e6,
                frame_overhead_time_s=0.0,
                delta_s=0.0,
            )
