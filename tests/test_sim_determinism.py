"""Determinism and kernel-fuzzing tests.

Reproducibility is a core promise of the library: identical
configurations must yield bit-identical simulation reports, and the event
kernel must maintain its ordering invariants under arbitrary
schedule/cancel interleavings.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pdp import PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.sim.engine import Simulator
from repro.sim.ieee8025 import IEEE8025Config, IEEE8025Simulator
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig
from repro.sim.traffic import ArrivalPhasing
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def make_set(n=4) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(25 + 15 * i), payload_bits=6000, station=i
        )
        for i in range(n)
    )


def report_fingerprint(report) -> tuple:
    """A hashable digest of everything observable in a report."""
    return (
        report.duration,
        report.sync_busy_time,
        report.async_busy_time,
        report.token_time,
        tuple(
            (s.completed, s.missed, s.max_response, s.total_response)
            for s in report.streams
        ),
        tuple((r.count, r.total, r.maximum) for r in report.rotations),
    )


class TestSimulatorDeterminism:
    def test_pdp_identical_runs(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=4)

        def run():
            simulator = PDPRingSimulator(
                ring, FRAME, make_set(),
                PDPSimConfig(phasing=ArrivalPhasing.RANDOM, phasing_seed=9),
            )
            return simulator.run(0.4)

        assert report_fingerprint(run()) == report_fingerprint(run())

    def test_ttp_identical_runs(self):
        ring = fddi_ring(mbps(100), n_stations=4)
        workload = make_set()
        allocation = TTPAnalysis(ring, FRAME).allocate(workload)

        def run():
            simulator = TTPRingSimulator(
                ring, FRAME, workload, allocation, TTPSimConfig()
            )
            return simulator.run(0.4)

        assert report_fingerprint(run()) == report_fingerprint(run())

    def test_ieee8025_identical_runs(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=4)

        def run():
            simulator = IEEE8025Simulator(
                ring, FRAME, make_set(),
                IEEE8025Config(variant=PDPVariant.MODIFIED),
            )
            return simulator.run(0.4)

        assert report_fingerprint(run()) == report_fingerprint(run())

    def test_different_phasing_seeds_differ(self):
        ring = ieee_802_5_ring(mbps(10), n_stations=4)

        def run(seed):
            simulator = PDPRingSimulator(
                ring, FRAME, make_set(),
                PDPSimConfig(phasing=ArrivalPhasing.RANDOM, phasing_seed=seed),
            )
            return simulator.run(0.4)

        assert report_fingerprint(run(1)) != report_fingerprint(run(2))


class TestKernelFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        plan=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.booleans(),  # cancel this event later?
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_only_uncancelled_fire_in_order(self, plan):
        sim = Simulator()
        fired: list[tuple[float, int]] = []
        handles = []
        for index, (time, cancel) in enumerate(plan):
            handle = sim.schedule(
                time, lambda s, i=index, t=time: fired.append((t, i))
            )
            handles.append((handle, cancel))
        for handle, cancel in handles:
            if cancel:
                handle.cancel()
        sim.run()

        expected = sorted(
            (time, index)
            for index, (time, cancel) in enumerate(plan)
            if not cancel
        )
        assert sorted(fired) == expected
        times = [t for t, _ in fired]
        assert times == sorted(times)

    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30
        )
    )
    def test_chained_scheduling_monotone_clock(self, delays):
        sim = Simulator()
        observed: list[float] = []
        queue = list(delays)

        def step(simulator):
            observed.append(simulator.now)
            if queue:
                simulator.schedule_after(queue.pop(), step)

        sim.schedule(0.0, step)
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays) + 1

    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=20
        ),
        horizon=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_run_until_partition(self, times, horizon):
        """Events split cleanly into fired-before and pending-after."""
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule(t, lambda s, tt=t: fired.append(tt))
        sim.run_until(horizon)
        assert sorted(fired) == sorted(t for t in times if t <= horizon)
        assert sim.pending_events() == sum(1 for t in times if t > horizon)
