"""Tests for the differential verification harness (:mod:`repro.verify`).

The harness guards the theorems; these tests guard the harness:

* determinism — same ``(seed, n_cases)`` replays bit-identically;
* soundness — the pinned default campaign is violation-free on the
  current (fixed) code base;
* sensitivity — the mutation smoke flags every deliberately injected
  off-by-one bug, so a green fuzz run is evidence rather than vacuity;
* the shrinker only ever returns a case that still fails, and actually
  minimizes;
* repro files round-trip through JSON and replay.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.verify import (
    CASE_KINDS,
    CHECKS,
    MUTANTS,
    FuzzCase,
    FuzzConfig,
    build_case,
    load_repro,
    replay_repro,
    run_check,
    run_fuzz,
    run_mutation_smoke,
    shrink_case,
    write_repro,
)
from repro.verify.checks import Violation
from repro.verify.mutation import inject_mutant

PINNED_SEED = 20_260_704


class TestCaseGeneration:
    def test_build_case_is_deterministic(self):
        for index in range(len(CASE_KINDS) * 2):
            assert build_case(PINNED_SEED, index) == build_case(
                PINNED_SEED, index
            )

    def test_kind_rotation_covers_every_family(self):
        kinds = {build_case(PINNED_SEED, i).kind for i in range(len(CASE_KINDS))}
        assert kinds == set(CASE_KINDS)

    def test_different_seeds_differ(self):
        assert build_case(1, 0) != build_case(2, 0)

    def test_params_round_trip_bit_exact(self):
        for index in range(len(CASE_KINDS)):
            case = build_case(PINNED_SEED, index)
            assert FuzzCase.from_params(case.to_params()) == case

    def test_params_survive_json_round_trip(self):
        case = build_case(PINNED_SEED, 1)  # exact_multiple: worst floats
        rebuilt = FuzzCase.from_params(json.loads(json.dumps(case.to_params())))
        assert rebuilt == case

    def test_exact_multiple_cases_carry_ttrt_hint(self):
        case = build_case(PINNED_SEED, CASE_KINDS.index("exact_multiple"))
        assert case.kind == "exact_multiple"
        assert case.ttrt_hint_s is not None and case.ttrt_hint_s > 0

    def test_n1_cases_have_one_stream(self):
        case = build_case(PINNED_SEED, CASE_KINDS.index("n1"))
        assert case.kind == "n1"
        assert len(case.periods_s) == 1
        assert case.n_stations == 1


class TestFuzzCampaign:
    def test_pinned_seed_is_violation_free(self):
        report = run_fuzz(FuzzConfig(seed=PINNED_SEED, n_cases=24))
        assert report.ok, report.summary()
        assert report.cases_run == 24
        assert report.checks_run == 24 * len(CHECKS)

    def test_same_seed_same_report(self):
        config = FuzzConfig(seed=7, n_cases=12)
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert first.cases_run == second.cases_run
        assert first.checks_run == second.checks_run
        assert first.violations == second.violations

    def test_config_rejects_nonpositive_cases(self):
        with pytest.raises(ReproError):
            FuzzConfig(n_cases=0)

    def test_config_rejects_unknown_checks(self):
        with pytest.raises(ReproError):
            FuzzConfig(checks=("no_such_property",))

    def test_run_check_rejects_unknown_name(self):
        with pytest.raises(ReproError):
            run_check("no_such_property", build_case(PINNED_SEED, 0))

    def test_check_subset_runs_only_requested(self):
        report = run_fuzz(
            FuzzConfig(seed=PINNED_SEED, n_cases=6,
                       checks=("scalar_vector_split",))
        )
        assert report.checks_run == 6
        assert report.ok


class TestMutationSmoke:
    def test_every_mutant_is_detected(self):
        report = run_mutation_smoke(seed=PINNED_SEED, n_cases=18)
        assert report.all_detected, report.summary()
        assert set(report.detected) == set(MUTANTS)

    def test_detection_routes_through_expected_property(self):
        report = run_mutation_smoke(seed=PINNED_SEED, n_cases=18)
        assert "scalar_vector_visits" in report.fired_checks[
            "boundary_absolute_epsilon"
        ]
        assert "pdp_vs_sim" in report.fired_checks["pdp_short_frame_dropped"]
        # The campaign stops at the first violation; a too-small TTP
        # budget diverges the incremental admission engine from the
        # oracle a few cases before the simulator sees a missed deadline,
        # so either property is a valid first responder.
        assert set(report.fired_checks["ttp_budget_off_by_one"]) & {
            "ttp_vs_sim",
            "admission_incremental_equiv",
        }
        assert "scalar_vector_split" in report.fired_checks[
            "split_counts_overshoot"
        ]
        assert "admission_incremental_equiv" in report.fired_checks[
            "incremental_stale_level"
        ]

    def test_inject_mutant_restores_originals(self):
        from repro.analysis import boundary as boundary_mod

        original = boundary_mod.token_visit_count
        with inject_mutant("boundary_absolute_epsilon"):
            assert boundary_mod.token_visit_count is not original
        assert boundary_mod.token_visit_count is original

    def test_restores_even_when_body_raises(self):
        from repro.network import frames as frames_mod

        original = frames_mod.FrameFormat.split_counts
        with pytest.raises(RuntimeError):
            with inject_mutant("split_counts_overshoot"):
                raise RuntimeError("boom")
        assert frames_mod.FrameFormat.split_counts is original


def _payload_sum_check(threshold: float):
    """A synthetic property: fails while total payload exceeds threshold."""

    def check(case: FuzzCase) -> Violation | None:
        if sum(case.payloads_bits) > threshold:
            return Violation("payload_sum", case, "too much payload")
        return None

    return check


class TestShrinker:
    def test_result_still_fails(self):
        case = build_case(PINNED_SEED, 0)
        check = _payload_sum_check(1.0)
        shrunk = shrink_case(case, check)
        assert check(shrunk) is not None

    def test_drops_irrelevant_streams(self):
        case = FuzzCase(
            kind="random", seed=0, index=0, bandwidth_bps=1e7, n_stations=3,
            periods_s=(0.01, 0.02, 0.03),
            payloads_bits=(10_000.0, 10_000.0, 10_000.0),
        )
        shrunk = shrink_case(case, _payload_sum_check(5_000.0))
        assert len(shrunk.periods_s) == 1

    def test_halves_payloads_to_the_boundary(self):
        case = FuzzCase(
            kind="random", seed=0, index=0, bandwidth_bps=1e7, n_stations=1,
            periods_s=(0.01,), payloads_bits=(64_000.0,),
        )
        shrunk = shrink_case(case, _payload_sum_check(1_000.0))
        # Halving below 2000 would pass the check, so it must stop there.
        assert 1_000.0 < shrunk.payloads_bits[0] <= 2_000.0

    def test_deterministic(self):
        case = build_case(PINNED_SEED, 0)
        check = _payload_sum_check(1.0)
        assert shrink_case(case, check) == shrink_case(case, check)

    def test_passing_case_returned_unshrunk(self):
        case = build_case(PINNED_SEED, 0)
        assert shrink_case(case, _payload_sum_check(float("inf"))) == case


class TestReproFiles:
    def _violation(self):
        case = build_case(PINNED_SEED, 0)
        # Genuinely failing under the real check set only with a mutant
        # active; for file-format tests a synthetic violation suffices.
        return Violation("scalar_vector_split", case, "synthetic")

    def test_write_then_load_round_trips(self, tmp_path):
        violation = self._violation()
        shrunk = violation.case.with_streams((0.01,), (100.0,))
        path = write_repro(str(tmp_path), violation, shrunk)
        extra = load_repro(path)
        assert extra["check"] == "scalar_vector_split"
        assert extra["seed"] == PINNED_SEED
        assert FuzzCase.from_params(extra["case"]) == violation.case
        assert FuzzCase.from_params(extra["shrunk_case"]) == shrunk

    def test_load_rejects_foreign_manifest(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"extra": {"repro_schema": "nope"}}))
        with pytest.raises(ReproError):
            load_repro(str(path))

    def test_replay_on_fixed_code_reports_no_violation(self, tmp_path):
        # The stored case passes its check on the current code base, so a
        # replay must report the bug as fixed.
        path = write_repro(str(tmp_path), self._violation())
        assert replay_repro(path) is None

    def test_replay_reproduces_under_the_mutant(self, tmp_path):
        path = write_repro(str(tmp_path), self._violation())
        with inject_mutant("split_counts_overshoot"):
            replayed = replay_repro(path)
        assert replayed is not None
        assert replayed.check == "scalar_vector_split"

    def test_fuzz_writes_repro_files_on_violation(self, tmp_path):
        with inject_mutant("split_counts_overshoot"):
            report = run_fuzz(
                FuzzConfig(
                    seed=PINNED_SEED, n_cases=6,
                    checks=("scalar_vector_split",),
                    repro_dir=str(tmp_path), max_violations=1,
                )
            )
        assert not report.ok
        assert len(report.repro_paths) == 1
        extra = load_repro(report.repro_paths[0])
        assert extra["check"] == "scalar_vector_split"
        # The recorded shrunk case still fails under the mutant...
        with inject_mutant("split_counts_overshoot"):
            assert replay_repro(report.repro_paths[0]) is not None
        # ...and passes on the fixed code.
        assert replay_repro(report.repro_paths[0]) is None


class TestRunnerIntegration:
    def test_fuzz_subcommand_exits_zero_on_clean_run(self, tmp_path,
                                                     monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.chdir(tmp_path)
        code = main([
            "fuzz", "--fuzz-cases", "6", "--no-manifest",
            "--log-level", "error",
        ])
        assert code == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_fuzz_subcommand_exits_nonzero_on_violation(self, tmp_path,
                                                        monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.chdir(tmp_path)
        with inject_mutant("split_counts_overshoot"):
            code = main([
                "fuzz", "--fuzz-cases", "6", "--no-manifest",
                "--repro-dir", str(tmp_path), "--log-level", "error",
            ])
        assert code == 1
        assert "violation" in capsys.readouterr().out
