"""FrameFormat: sizes, times, and the K_i / L_i splitting arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.network.frames import FrameFormat


@pytest.fixture
def fmt() -> FrameFormat:
    return FrameFormat(info_bits=512, overhead_bits=112)


class TestConstruction:
    def test_rejects_zero_info(self):
        with pytest.raises(ConfigurationError):
            FrameFormat(info_bits=0, overhead_bits=112)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            FrameFormat(info_bits=512, overhead_bits=-1)

    def test_zero_overhead_allowed(self):
        fmt = FrameFormat(info_bits=512, overhead_bits=0)
        assert fmt.overhead_fraction == 0.0

    def test_is_frozen(self, fmt):
        with pytest.raises(AttributeError):
            fmt.info_bits = 1024


class TestSizes:
    def test_total_bits(self, fmt):
        assert fmt.total_bits == 624

    def test_overhead_fraction(self, fmt):
        assert fmt.overhead_fraction == pytest.approx(112 / 624)


class TestTimes:
    def test_frame_time(self, fmt):
        assert fmt.frame_time(1e6) == pytest.approx(624e-6)

    def test_info_time(self, fmt):
        assert fmt.info_time(1e6) == pytest.approx(512e-6)

    def test_overhead_time(self, fmt):
        assert fmt.overhead_time(1e6) == pytest.approx(112e-6)

    def test_partial_frame_time(self, fmt):
        assert fmt.partial_frame_time(100, 1e6) == pytest.approx(212e-6)

    def test_partial_frame_rejects_oversized_payload(self, fmt):
        with pytest.raises(ConfigurationError):
            fmt.partial_frame_time(513, 1e6)


class TestSplit:
    def test_empty_message(self, fmt):
        split = fmt.split(0)
        assert split.total_frames == 0
        assert split.full_frames == 0
        assert split.last_frame_info_bits == 0.0
        assert not split.has_short_last_frame

    def test_exact_single_frame(self, fmt):
        split = fmt.split(512)
        assert (split.full_frames, split.total_frames) == (1, 1)
        assert split.last_frame_info_bits == 512
        assert not split.has_short_last_frame

    def test_one_bit_over_a_frame(self, fmt):
        split = fmt.split(513)
        assert (split.full_frames, split.total_frames) == (1, 2)
        assert split.last_frame_info_bits == pytest.approx(1.0)
        assert split.has_short_last_frame

    def test_tiny_message(self, fmt):
        split = fmt.split(1)
        assert (split.full_frames, split.total_frames) == (0, 1)
        assert split.has_short_last_frame

    def test_exact_multiple(self, fmt):
        split = fmt.split(512 * 7)
        assert (split.full_frames, split.total_frames) == (7, 7)

    def test_rejects_negative_payload(self, fmt):
        with pytest.raises(ConfigurationError):
            fmt.split(-1)

    def test_frames_needed_matches_split(self, fmt):
        assert fmt.frames_needed(1500) == fmt.split(1500).total_frames

    def test_message_wire_bits(self, fmt):
        # 1500 bits -> 3 frames -> 1500 + 3*112 wire bits.
        assert fmt.message_wire_bits(1500) == 1500 + 3 * 112

    @given(payload=st.floats(min_value=0.0, max_value=1e7,
                             allow_nan=False, allow_infinity=False))
    def test_split_invariants(self, payload):
        """K_i is L_i or L_i + 1; payload is conserved across frames."""
        fmt = FrameFormat(info_bits=512, overhead_bits=112)
        split = fmt.split(payload)
        assert split.total_frames in (split.full_frames, split.full_frames + 1)
        if payload > 0:
            assert split.total_frames >= 1
            reconstructed = (
                split.full_frames * 512 + split.last_frame_info_bits
                if split.has_short_last_frame
                else split.full_frames * 512
            )
            assert reconstructed == pytest.approx(payload, rel=1e-9)

    @given(
        payload=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        bump=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_frames_needed_monotone(self, payload, bump):
        fmt = FrameFormat(info_bits=512, overhead_bits=112)
        assert fmt.frames_needed(payload + bump) >= fmt.frames_needed(payload)
