"""FrameFormat: sizes, times, and the K_i / L_i splitting arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.network.frames import FrameFormat


@pytest.fixture
def fmt() -> FrameFormat:
    return FrameFormat(info_bits=512, overhead_bits=112)


class TestConstruction:
    def test_rejects_zero_info(self):
        with pytest.raises(ConfigurationError):
            FrameFormat(info_bits=0, overhead_bits=112)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            FrameFormat(info_bits=512, overhead_bits=-1)

    def test_zero_overhead_allowed(self):
        fmt = FrameFormat(info_bits=512, overhead_bits=0)
        assert fmt.overhead_fraction == 0.0

    def test_is_frozen(self, fmt):
        with pytest.raises(AttributeError):
            fmt.info_bits = 1024


class TestSizes:
    def test_total_bits(self, fmt):
        assert fmt.total_bits == 624

    def test_overhead_fraction(self, fmt):
        assert fmt.overhead_fraction == pytest.approx(112 / 624)


class TestTimes:
    def test_frame_time(self, fmt):
        assert fmt.frame_time(1e6) == pytest.approx(624e-6)

    def test_info_time(self, fmt):
        assert fmt.info_time(1e6) == pytest.approx(512e-6)

    def test_overhead_time(self, fmt):
        assert fmt.overhead_time(1e6) == pytest.approx(112e-6)

    def test_partial_frame_time(self, fmt):
        assert fmt.partial_frame_time(100, 1e6) == pytest.approx(212e-6)

    def test_partial_frame_rejects_oversized_payload(self, fmt):
        with pytest.raises(ConfigurationError):
            fmt.partial_frame_time(513, 1e6)


class TestSplit:
    def test_empty_message(self, fmt):
        split = fmt.split(0)
        assert split.total_frames == 0
        assert split.full_frames == 0
        assert split.last_frame_info_bits == 0.0
        assert not split.has_short_last_frame

    def test_exact_single_frame(self, fmt):
        split = fmt.split(512)
        assert (split.full_frames, split.total_frames) == (1, 1)
        assert split.last_frame_info_bits == 512
        assert not split.has_short_last_frame

    def test_one_bit_over_a_frame(self, fmt):
        split = fmt.split(513)
        assert (split.full_frames, split.total_frames) == (1, 2)
        assert split.last_frame_info_bits == pytest.approx(1.0)
        assert split.has_short_last_frame

    def test_tiny_message(self, fmt):
        split = fmt.split(1)
        assert (split.full_frames, split.total_frames) == (0, 1)
        assert split.has_short_last_frame

    def test_exact_multiple(self, fmt):
        split = fmt.split(512 * 7)
        assert (split.full_frames, split.total_frames) == (7, 7)

    def test_rejects_negative_payload(self, fmt):
        with pytest.raises(ConfigurationError):
            fmt.split(-1)

    def test_frames_needed_matches_split(self, fmt):
        assert fmt.frames_needed(1500) == fmt.split(1500).total_frames

    def test_message_wire_bits(self, fmt):
        # 1500 bits -> 3 frames -> 1500 + 3*112 wire bits.
        assert fmt.message_wire_bits(1500) == 1500 + 3 * 112

    @given(payload=st.floats(min_value=0.0, max_value=1e7,
                             allow_nan=False, allow_infinity=False))
    def test_split_invariants(self, payload):
        """K_i is L_i or L_i + 1; payload is conserved across frames."""
        fmt = FrameFormat(info_bits=512, overhead_bits=112)
        split = fmt.split(payload)
        assert split.total_frames in (split.full_frames, split.full_frames + 1)
        if payload > 0:
            assert split.total_frames >= 1
            reconstructed = (
                split.full_frames * 512 + split.last_frame_info_bits
                if split.has_short_last_frame
                else split.full_frames * 512
            )
            assert reconstructed == pytest.approx(payload, rel=1e-9)

    @given(
        payload=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        bump=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_frames_needed_monotone(self, payload, bump):
        fmt = FrameFormat(info_bits=512, overhead_bits=112)
        assert fmt.frames_needed(payload + bump) >= fmt.frames_needed(payload)

class TestScalarVectorBitIdentity:
    """`split` and `split_counts` must agree bit for bit (zero-payload
    policy included): the batched analyses consume the vector path while
    the simulators and scalar oracles consume `split`."""

    FMT = FrameFormat(info_bits=512.0, overhead_bits=112.0)

    def adversarial_payloads(self):
        import numpy as np

        info = self.FMT.info_bits
        payloads = [0.0, 5e-324, 1e-300, 1.0, info / 2]
        for k in (1, 2, 3, 100, 10_000):
            exact = k * info
            payloads.extend(
                [exact, np.nextafter(exact, 0.0), np.nextafter(exact, np.inf)]
            )
        payloads.extend([1e15, 1e15 + 1.0])
        return payloads

    def test_counts_bit_identical(self):
        import numpy as np

        payloads = self.adversarial_payloads()
        total_v, full_v = self.FMT.split_counts(np.asarray(payloads))
        for payload, tv, fv in zip(payloads, total_v, full_v):
            split = self.FMT.split(payload)
            assert float(split.total_frames) == tv, payload
            assert float(split.full_frames) == fv, payload

    def test_zero_payload_occupies_nothing(self):
        import numpy as np

        split = self.FMT.split(0.0)
        assert (split.total_frames, split.full_frames) == (0, 0)
        assert split.last_frame_info_bits == 0.0
        assert self.FMT.message_wire_bits(0.0) == 0.0
        total, full = self.FMT.split_counts(np.array([0.0]))
        assert total[0] == 0.0 and full[0] == 0.0

    def test_subnormal_payload_needs_one_frame_in_both_paths(self):
        import numpy as np

        # 5e-324 / 512 underflows to 0.0: ceil gives 0, the clamp must
        # still charge one frame in both implementations.
        split = self.FMT.split(5e-324)
        assert (split.total_frames, split.full_frames) == (1, 0)
        total, full = self.FMT.split_counts(np.array([5e-324]))
        assert total[0] == 1.0 and full[0] == 0.0

    @given(payload=st.floats(min_value=0.0, max_value=1e9,
                             allow_nan=False, allow_infinity=False))
    def test_counts_bit_identical_fuzz(self, payload):
        import numpy as np

        split = self.FMT.split(payload)
        total, full = self.FMT.split_counts(np.array([payload]))
        assert float(split.total_frames) == total[0]
        assert float(split.full_frames) == full[0]
