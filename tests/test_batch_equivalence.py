"""Batched fast paths against their scalar oracles.

The perf rewrite introduced three batched layers — stacked LSD evaluation
(`ExactRMTest.is_schedulable_batch`), vectorized augmented lengths
(`pdp_augmented_lengths`), and the lockstep batched bisection
(`breakdown_scales_batch`) — each shadowing a scalar implementation that
stays in the codebase as the oracle.  These tests pin the equivalences:

* verdicts are **bit-identical** (booleans, not approximately equal);
* breakdown scales and evaluation counts match the scalar search exactly
  (the lockstep machine replays the same probes in the same order);
* both agree with the independent response-time-analysis oracle;
* edge cases — zero payloads, scale-0 / scale-inf degenerate sets,
  single-stream sets — take the same branch in both paths.

The randomized sweeps cover well over 200 distinct message sets between
them (see the module-level counters asserted in
``test_randomized_population_is_large_enough``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.breakdown import (
    breakdown_scale,
    breakdown_scales_batch,
    breakdown_utilization,
    breakdown_utilizations_batch,
)
from repro.analysis.pdp import (
    PDPAnalysis,
    PDPVariant,
    pdp_augmented_length,
    pdp_augmented_lengths,
)
from repro.analysis.rm import ExactRMTest, response_time_analysis
from repro.analysis.ttp import TTPAnalysis
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps

#: Message sets per randomized sweep; the sweeps below multiply this by
#: bandwidths and variants, comfortably clearing the 200-set target.
N_RANDOM_SETS = 40

BANDWIDTHS_MBPS = (2.0, 10.0, 100.0)


def _sampler(n_streams: int) -> MessageSetSampler:
    return MessageSetSampler(
        n_streams=n_streams,
        periods=PeriodDistribution(mean_period_s=0.1, ratio=10.0),
    )


def _random_sets(seed: int, n_sets: int, n_streams: int = 10) -> list[MessageSet]:
    rng = np.random.default_rng(seed)
    return _sampler(n_streams).sample_many(rng, n_sets)


def _pdp(bandwidth_mbps: float, variant: PDPVariant) -> PDPAnalysis:
    return PDPAnalysis(
        ieee_802_5_ring(mbps(bandwidth_mbps), n_stations=10),
        paper_frame_format(),
        variant,
    )


class TestAugmentedLengthVectorization:
    @pytest.mark.parametrize("bandwidth", BANDWIDTHS_MBPS)
    @pytest.mark.parametrize("variant", list(PDPVariant))
    def test_matches_scalar_oracle_exactly(self, bandwidth, variant):
        ring = ieee_802_5_ring(mbps(bandwidth), n_stations=10)
        frame = paper_frame_format()
        rng = np.random.default_rng(7)
        payloads = rng.uniform(0.0, 5e4, size=400)
        payloads[::17] = 0.0  # sprinkle exact zeros
        vector = pdp_augmented_lengths(payloads, ring, frame, variant)
        scalar = [
            pdp_augmented_length(p, ring, frame, variant) for p in payloads
        ]
        assert vector.tolist() == scalar  # bit-identical, not approx

    def test_zero_payload_costs_nothing(self, frame):
        ring = ieee_802_5_ring(mbps(10), n_stations=10)
        for variant in PDPVariant:
            out = pdp_augmented_lengths(np.zeros(5), ring, frame, variant)
            assert out.tolist() == [0.0] * 5

    def test_matrix_shape_matches_elementwise(self, frame):
        ring = ieee_802_5_ring(mbps(10), n_stations=10)
        payloads = np.linspace(0.0, 4e4, 12).reshape(3, 4)
        out = pdp_augmented_lengths(payloads, ring, frame, PDPVariant.STANDARD)
        flat = pdp_augmented_lengths(
            payloads.ravel(), ring, frame, PDPVariant.STANDARD
        )
        assert out.shape == payloads.shape
        assert out.ravel().tolist() == flat.tolist()


class TestBatchedLSDTest:
    @pytest.mark.parametrize("bandwidth", BANDWIDTHS_MBPS)
    @pytest.mark.parametrize("variant", list(PDPVariant))
    def test_batch_verdicts_bit_identical_to_scalar(self, bandwidth, variant):
        analysis = _pdp(bandwidth, variant)
        for message_set in _random_sets(seed=11, n_sets=N_RANDOM_SETS):
            ordered = message_set.rate_monotonic()
            test = ExactRMTest(ordered.periods)
            lengths = analysis.augmented_lengths(ordered)
            scales = np.array([0.0, 0.25, 0.5, 1.0, 2.0, 8.0])
            costs = scales[:, None] * lengths[None, :]
            batch = test.is_schedulable_batch(costs, analysis.blocking)
            scalar = [
                test.is_schedulable(row, analysis.blocking) for row in costs
            ]
            assert batch.tolist() == scalar

    def test_batch_agrees_with_response_time_oracle(self):
        analysis = _pdp(10.0, PDPVariant.MODIFIED)
        for message_set in _random_sets(seed=13, n_sets=N_RANDOM_SETS):
            ordered = message_set.rate_monotonic()
            test = ExactRMTest(ordered.periods)
            lengths = analysis.augmented_lengths(ordered)
            scales = np.array([0.25, 1.0, 4.0])
            costs = scales[:, None] * lengths[None, :]
            batch = test.is_schedulable_batch(costs, analysis.blocking)
            for verdict, row in zip(batch, costs):
                responses = response_time_analysis(
                    row, ordered.periods, analysis.blocking
                )
                oracle = all(
                    r <= p for r, p in zip(responses, ordered.periods)
                )
                assert bool(verdict) == oracle

    def test_single_stream_set(self):
        test = ExactRMTest((0.1,))
        costs = np.array([[0.01], [0.09], [0.11]])
        assert test.is_schedulable_batch(costs, 0.0).tolist() == [
            True,
            True,
            False,
        ]

    def test_zero_cost_rows_schedulable(self):
        test = ExactRMTest((0.05, 0.1, 0.2))
        batch = test.is_schedulable_batch(np.zeros((3, 3)), 0.0)
        assert batch.tolist() == [True, True, True]


class TestLockstepBisection:
    @pytest.mark.parametrize("bandwidth", BANDWIDTHS_MBPS)
    @pytest.mark.parametrize("variant", list(PDPVariant))
    def test_scales_match_scalar_bit_for_bit(self, bandwidth, variant):
        analysis = _pdp(bandwidth, variant)
        message_sets = _random_sets(seed=17, n_sets=N_RANDOM_SETS)
        batch = breakdown_scales_batch(message_sets, analysis, rel_tol=1e-4)
        scalar = [
            breakdown_scale(ms, analysis, rel_tol=1e-4) for ms in message_sets
        ]
        # Scales are bit-identical (the speculative walk replays the
        # scalar iterates exactly); evaluation counts are larger in the
        # batched path because they include discarded speculation.
        assert [s for s, _ in batch] == [s for s, _ in scalar]
        assert all(
            b_evals >= s_evals
            for (_, b_evals), (_, s_evals) in zip(batch, scalar)
        )

    def test_ttp_closed_form_matches_scalar(self):
        analysis = TTPAnalysis(
            fddi_ring(mbps(100), n_stations=10), paper_frame_format()
        )
        message_sets = _random_sets(seed=19, n_sets=N_RANDOM_SETS)
        batch = breakdown_scales_batch(message_sets, analysis)
        scalar = [breakdown_scale(ms, analysis) for ms in message_sets]
        assert batch == scalar

    def test_utilizations_match_scalar(self):
        analysis = _pdp(10.0, PDPVariant.STANDARD)
        message_sets = _random_sets(seed=23, n_sets=20)
        bw = mbps(10)
        batch = breakdown_utilizations_batch(message_sets, analysis, bw, 1e-4)
        scalar = [
            breakdown_utilization(ms, analysis, bw, 1e-4)
            for ms in message_sets
        ]
        assert [(r.scale, r.utilization) for r in batch] == [
            (r.scale, r.utilization) for r in scalar
        ]

    def test_plain_callable_falls_back_to_scalar_path(self):
        message_sets = _random_sets(seed=29, n_sets=5, n_streams=4)
        predicate = lambda ms: ms.utilization(mbps(10)) <= 0.5  # noqa: E731
        batch = breakdown_scales_batch(message_sets, predicate, rel_tol=1e-4)
        scalar = [
            breakdown_scale(ms, predicate, rel_tol=1e-4) for ms in message_sets
        ]
        assert batch == scalar

    def test_scale_inf_degenerate_all_zero_payloads(self):
        analysis = _pdp(10.0, PDPVariant.MODIFIED)
        zero_set = MessageSet(
            [SynchronousStream(period_s=0.1 * (i + 1), payload_bits=0.0) for i in range(4)]
        )
        (batch,) = breakdown_scales_batch([zero_set], analysis)
        assert batch == breakdown_scale(zero_set, analysis)
        assert batch[0] == float("inf")

    def test_scale_zero_degenerate_overheads_alone_unschedulable(self):
        # 1000 stations on a slow ring: walk time alone exceeds the
        # shortest deadline, so even infinitesimal payloads fail.
        analysis = PDPAnalysis(
            ieee_802_5_ring(mbps(0.1), n_stations=1000, station_spacing_m=10_000.0),
            paper_frame_format(),
            PDPVariant.STANDARD,
        )
        hopeless = MessageSet(
            [SynchronousStream(period_s=0.001, payload_bits=1.0)]
        )
        (batch,) = breakdown_scales_batch([hopeless], analysis)
        assert batch[0] == breakdown_scale(hopeless, analysis)[0]
        assert batch[0] == 0.0

    def test_single_stream_sets_match(self):
        analysis = _pdp(10.0, PDPVariant.STANDARD)
        singles = _random_sets(seed=31, n_sets=10, n_streams=1)
        batch = breakdown_scales_batch(singles, analysis)
        scalar = [breakdown_scale(ms, analysis) for ms in singles]
        assert [s for s, _ in batch] == [s for s, _ in scalar]

    def test_mixed_population_with_degenerates(self):
        analysis = _pdp(10.0, PDPVariant.MODIFIED)
        mixed = _random_sets(seed=37, n_sets=6, n_streams=6)
        mixed.insert(
            2,
            MessageSet(
                [SynchronousStream(period_s=0.05 * (i + 1), payload_bits=0.0) for i in range(3)]
            ),
        )
        batch = breakdown_scales_batch(mixed, analysis)
        scalar = [breakdown_scale(ms, analysis) for ms in mixed]
        assert [s for s, _ in batch] == [s for s, _ in scalar]


def test_randomized_population_is_large_enough():
    """The sweeps above exercise >= 200 distinct randomized message sets."""
    lockstep = len(BANDWIDTHS_MBPS) * len(PDPVariant) * N_RANDOM_SETS
    lsd = len(BANDWIDTHS_MBPS) * len(PDPVariant) * N_RANDOM_SETS
    assert lockstep >= 200
    assert lockstep + lsd >= 400


class TestSaturatedScalesAgreeWithinTolerance:
    def test_batched_scale_is_within_rel_tol_of_true_boundary(self):
        """λ* brackets the truth: schedulable at λ*, unschedulable past tol."""
        analysis = _pdp(10.0, PDPVariant.MODIFIED)
        rel_tol = 1e-4
        message_sets = _random_sets(seed=41, n_sets=15)
        for message_set, (scale, _) in zip(
            message_sets,
            breakdown_scales_batch(message_sets, analysis, rel_tol=rel_tol),
        ):
            if not (0.0 < scale < math.inf):
                continue
            assert analysis.is_schedulable(message_set.scaled(scale))
            assert not analysis.is_schedulable(
                message_set.scaled(scale * (1.0 + 4.0 * rel_tol))
            )
