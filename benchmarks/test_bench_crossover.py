"""Benchmark: the PDP→TTP crossover frontier versus ring size.

Quantifies the paper's closing design rule as a function of ring size and
asserts its direction: the handover bandwidth sits in the 1–100 Mbps
window and moves up as rings grow (FDDI's per-rotation `n·F_ovhd` tax is
the binding cost at the low-bandwidth end).
"""

from __future__ import annotations

from repro.experiments.crossover import crossover_map


def test_bench_crossover_frontier(benchmark, bench_params):
    result = benchmark.pedantic(
        crossover_map,
        args=(bench_params,),
        kwargs={"station_counts": (5, 10, 20, 40)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    crossings = [p.crossover_mbps for p in result.points]
    assert all(c is not None for c in crossings)
    assert all(1.0 <= c <= 100.0 for c in crossings)
    assert crossings == sorted(crossings)
