"""Benchmark: minimum versus average breakdown utilization (Section 2).

The paper motivates the average metric by contrasting it with the
minimum.  This bench computes both for each protocol at two bandwidths
and prints the gap — the price of admission-test-free operation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.montecarlo import average_breakdown_utilization
from repro.analysis.pdp import PDPVariant
from repro.analysis.worstcase import pdp_minimum_breakdown, ttp_minimum_breakdown
from repro.experiments.reporting import format_table
from repro.units import mbps


def test_bench_min_vs_avg_breakdown(benchmark, bench_params):
    dist = bench_params.period_distribution()
    low, high = dist.bounds
    sampler = bench_params.sampler()

    def compute() -> list[list[object]]:
        rows: list[list[object]] = []
        for bandwidth_mbps in (10.0, 100.0):
            bandwidth = mbps(bandwidth_mbps)
            pdp = bench_params.pdp_analysis(bandwidth_mbps, PDPVariant.MODIFIED)
            ttp = bench_params.ttp_analysis(bandwidth_mbps)

            pdp_avg = average_breakdown_utilization(
                pdp, sampler, bandwidth, bench_params.monte_carlo_sets,
                np.random.default_rng(bench_params.seed), rel_tol=1e-3,
            ).mean
            pdp_min = pdp_minimum_breakdown(
                pdp, (low, high), bench_params.n_stations,
                restarts=3, iterations=15, rng=0,
            ).utilization
            ttp_avg = average_breakdown_utilization(
                ttp, sampler, bandwidth, bench_params.monte_carlo_sets,
                np.random.default_rng(bench_params.seed),
            ).mean
            ttp_min = ttp_minimum_breakdown(
                ttp, (low, high), bench_params.n_stations, grid_points=200
            ).utilization
            rows.append(["modified-802.5", bandwidth_mbps, pdp_avg, pdp_min])
            rows.append(["fddi", bandwidth_mbps, ttp_avg, ttp_min])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(format_table(["protocol", "BW (Mbps)", "avg breakdown", "min breakdown"], rows))

    for row in rows:
        __, __, avg, minimum = row
        # The minimum is a lower envelope of the average (with slack for
        # the adversarial search being an upper bound on the true min).
        assert minimum <= avg + 1e-6
