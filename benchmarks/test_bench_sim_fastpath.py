"""Micro-benchmarks of the event-compressing fast-path simulators.

Beyond wall time, each bench records the fast path's *compression ratio*
in ``extra_info`` — how many scalar-engine events (PDP) or token visits
(TTP) each compressed step replaced — plus the resulting logical events
per second.  A regression that silently degrades compression (falling
back to step-at-a-time execution while staying bit-identical) shows up
here even when correctness tests stay green.
"""

from __future__ import annotations

from repro.analysis.pdp import PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.obs import metrics
from repro.sim.fastpath import run_pdp_fast
from repro.sim.fastpath_ttp import run_ttp_fast
from repro.sim.pdp_sim import PDPSimConfig
from repro.sim.ttp_sim import TTPSimConfig
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()
ROUNDS = 3


def _workload(n: int) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(20 + 8 * i), payload_bits=8_000, station=i
        )
        for i in range(n)
    )


def _count(name: str) -> float:
    return metrics.counter(name).value


def test_bench_pdp_fastpath_second(benchmark):
    """One simulated second of a loaded 10-station 802.5 ring, fast path."""
    workload = _workload(10)
    ring = ieee_802_5_ring(mbps(16), n_stations=10)
    config = PDPSimConfig(variant=PDPVariant.MODIFIED)

    events0, steps0 = _count("sim.fastpath.pdp.events"), _count("sim.fastpath.pdp.steps")
    report = benchmark.pedantic(
        run_pdp_fast, args=(ring, FRAME, workload, config, 1.0),
        rounds=ROUNDS, iterations=1,
    )
    assert report.total_completed > 0
    events = (_count("sim.fastpath.pdp.events") - events0) / ROUNDS
    steps = (_count("sim.fastpath.pdp.steps") - steps0) / ROUNDS
    benchmark.extra_info["logical_events"] = events
    benchmark.extra_info["compressed_steps"] = steps
    benchmark.extra_info["compression_ratio"] = events / max(steps, 1.0)
    benchmark.extra_info["events_per_sec"] = events / max(benchmark.stats["mean"], 1e-12)
    assert events / max(steps, 1.0) > 1.0  # compression actually engaged


def test_bench_ttp_fastpath_second(benchmark):
    """One simulated second of a 10-station FDDI ring, fast path."""
    workload = _workload(10)
    ring = fddi_ring(mbps(100), n_stations=10)
    allocation = TTPAnalysis(ring, FRAME).analyze(workload).allocation
    assert allocation is not None
    config = TTPSimConfig(async_saturating=False)

    visits0, swept0 = _count("sim.fastpath.ttp.visits"), _count("sim.fastpath.ttp.swept")
    report = benchmark.pedantic(
        run_ttp_fast, args=(ring, FRAME, workload, allocation, config, 1.0),
        rounds=ROUNDS, iterations=1,
    )
    assert report.total_completed > 0
    visits = (_count("sim.fastpath.ttp.visits") - visits0) / ROUNDS
    swept = (_count("sim.fastpath.ttp.swept") - swept0) / ROUNDS
    stepped = max(visits - swept, 1.0)
    benchmark.extra_info["token_visits"] = visits
    benchmark.extra_info["swept_visits"] = swept
    benchmark.extra_info["compression_ratio"] = visits / stepped
    benchmark.extra_info["visits_per_sec"] = visits / max(benchmark.stats["mean"], 1e-12)
    assert swept > 0  # the rotation sweep actually engaged
