"""Benchmark: theorem-versus-simulator cross validation throughput.

Times the adversarial simulation runs that back Theorems 4.1 and 5.1 and
asserts their verdicts: analysis-accepted workloads near the saturation
boundary never miss a deadline under critical-instant phasing with
saturating asynchronous interference.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.sim.validate import cross_validate_pdp, cross_validate_ttp
from repro.units import mbps


FRAME = paper_frame_format()
SAMPLER = MessageSetSampler(
    n_streams=10, periods=PeriodDistribution(mean_period_s=0.08, ratio=5.0)
)


def test_bench_pdp_validation(benchmark):
    ring = ieee_802_5_ring(mbps(16), n_stations=10)
    analysis = PDPAnalysis(ring, FRAME, PDPVariant.MODIFIED)

    def validate_batch() -> int:
        clean = 0
        for seed in range(5):
            message_set = SAMPLER.sample(np.random.default_rng(seed))
            scale, _ = breakdown_scale(message_set, analysis, rel_tol=1e-3)
            near = message_set.scaled(scale * 0.9)
            validation = cross_validate_pdp(analysis, near, duration_periods=3.0)
            assert validation.analysis_schedulable
            assert validation.consistent
            clean += validation.report.deadline_safe
        return clean

    clean = benchmark.pedantic(validate_batch, rounds=1, iterations=1)
    assert clean == 5


def test_bench_ttp_validation(benchmark):
    ring = fddi_ring(mbps(100), n_stations=10)
    analysis = TTPAnalysis(ring, FRAME)

    def validate_batch() -> int:
        clean = 0
        for seed in range(5):
            message_set = SAMPLER.sample(np.random.default_rng(seed))
            scale = analysis.saturation_scale(message_set)
            near = message_set.scaled(scale * 0.9)
            validation = cross_validate_ttp(analysis, near, duration_periods=3.0)
            assert validation.analysis_schedulable
            assert validation.consistent
            clean += validation.report.deadline_safe
        return clean

    clean = benchmark.pedantic(validate_batch, rounds=1, iterations=1)
    assert clean == 5


def test_bench_ttp_johnson_bound(benchmark):
    """Max token rotation stays below 2 TTRT across validation runs."""
    ring = fddi_ring(mbps(100), n_stations=10)
    analysis = TTPAnalysis(ring, FRAME)

    def worst_rotation_ratio() -> float:
        worst = 0.0
        for seed in range(5):
            message_set = SAMPLER.sample(np.random.default_rng(seed))
            scale = analysis.saturation_scale(message_set)
            near = message_set.scaled(scale * 0.9)
            result = analysis.analyze(near)
            validation = cross_validate_ttp(analysis, near, duration_periods=3.0)
            worst = max(
                worst, validation.report.max_rotation / result.allocation.ttrt_s
            )
        return worst

    worst = benchmark.pedantic(worst_rotation_ratio, rounds=1, iterations=1)
    print(f"\nworst rotation / TTRT = {worst:.3f} (Johnson bound: 2.0)")
    assert worst <= 2.0 + 1e-9
