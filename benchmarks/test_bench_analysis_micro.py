"""Micro-benchmarks of the analysis primitives.

These track the cost of the operations the Monte Carlo study multiplies by
thousands: one exact-test evaluation, one closed-form TTP saturation, one
full breakdown bisection.  Regressions here translate directly into
experiment wall-clock time.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.rm import ExactRMTest
from repro.analysis.ttp import TTPAnalysis
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps


FRAME = paper_frame_format()


def _workload(n: int, seed: int = 0):
    sampler = MessageSetSampler(
        n_streams=n, periods=PeriodDistribution(mean_period_s=0.1, ratio=10.0)
    )
    return sampler.sample(np.random.default_rng(seed))


def test_bench_exact_test_construction_100(benchmark):
    """Precomputing the LSD structure for 100 streams (paper scale)."""
    periods = tuple(sorted(_workload(100).periods))
    benchmark(lambda: ExactRMTest(periods))


def test_bench_exact_test_evaluation_100(benchmark):
    """One schedulability evaluation against a prebuilt structure."""
    workload = _workload(100).rate_monotonic()
    test = ExactRMTest(workload.periods)
    costs = np.asarray(workload.payloads_bits) / mbps(10)
    benchmark(test.is_schedulable, costs, 0.001)


def test_bench_pdp_augmented_lengths_100(benchmark):
    analysis = PDPAnalysis(ieee_802_5_ring(mbps(10)), FRAME, PDPVariant.STANDARD)
    workload = _workload(100)
    benchmark(analysis.augmented_lengths, workload)


def test_bench_pdp_breakdown_bisection_20(benchmark):
    """A complete saturation search for one 20-stream set."""
    analysis = PDPAnalysis(
        ieee_802_5_ring(mbps(10), n_stations=20), FRAME, PDPVariant.MODIFIED
    )
    workload = _workload(20)
    benchmark(lambda: breakdown_scale(workload, analysis, rel_tol=1e-3))


def test_bench_ttp_closed_form_100(benchmark):
    """The closed-form TTP saturation scale at paper scale."""
    analysis = TTPAnalysis(fddi_ring(mbps(100)), FRAME)
    workload = _workload(100)
    benchmark(analysis.saturation_scale, workload)


def test_bench_ttp_schedulability_100(benchmark):
    analysis = TTPAnalysis(fddi_ring(mbps(100)), FRAME)
    workload = _workload(100)
    benchmark(analysis.is_schedulable, workload)


def test_bench_batch_lsd_evaluation_64x100(benchmark):
    """64 cost vectors through one stacked is_schedulable_batch call."""
    workload = _workload(100).rate_monotonic()
    test = ExactRMTest(workload.periods)
    base = np.asarray(workload.payloads_bits) / mbps(10)
    scales = np.linspace(0.1, 3.0, 64)
    costs = scales[:, None] * base[None, :]
    benchmark(test.is_schedulable_batch, costs, 0.001)


def test_bench_vectorized_augmented_lengths_64x100(benchmark):
    """The vectorized C'_i kernel over a (64, 100) payload matrix."""
    from repro.analysis.pdp import pdp_augmented_lengths

    ring = ieee_802_5_ring(mbps(10))
    payloads = np.asarray(_workload(100).payloads_bits)
    scales = np.linspace(0.1, 3.0, 64)
    matrix = scales[:, None] * payloads[None, :]
    benchmark(
        pdp_augmented_lengths, matrix, ring, FRAME, PDPVariant.STANDARD
    )


def test_bench_lockstep_bisection_10x20(benchmark):
    """Batched saturation search over ten 20-stream sets in lockstep."""
    from repro.analysis.breakdown import breakdown_scales_batch

    analysis = PDPAnalysis(
        ieee_802_5_ring(mbps(10), n_stations=20), FRAME, PDPVariant.MODIFIED
    )
    sampler = MessageSetSampler(
        n_streams=20, periods=PeriodDistribution(mean_period_s=0.1, ratio=10.0)
    )
    workloads = sampler.sample_many(np.random.default_rng(0), 10)
    benchmark(
        lambda: breakdown_scales_batch(workloads, analysis, rel_tol=1e-3)
    )
