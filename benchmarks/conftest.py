"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one row of DESIGN.md's per-experiment
index.  Experiment-level benchmarks run the full harness once per round
(``pedantic`` mode) because a single round is already statistically
meaningful — the Monte Carlo inside averages tens of workloads — and the
point of the benchmark output is the *reproduced numbers*, which are
printed as fixed-width tables alongside the timings.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import PaperParameters


@pytest.fixture(scope="session")
def bench_params() -> PaperParameters:
    """A benchmark-scale configuration: preserves every qualitative shape
    of the paper-scale run at ~1/50 the cost."""
    return PaperParameters().scaled_down(n_stations=20, monte_carlo_sets=10)


@pytest.fixture(scope="session")
def paper_params() -> PaperParameters:
    """The paper's full configuration (used only by opt-in slow benches)."""
    return PaperParameters()


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Worker processes for the experiment-grid benches.

    Defaults to 1 (pure single-process timings, comparable across
    machines); set ``REPRO_BENCH_JOBS`` to benchmark the parallel
    executor — the reproduced numbers are identical either way.
    """
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))
