"""Benchmark: synchronous bandwidth allocation scheme comparison.

The paper adopts the local scheme citing its 33% worst case and
near-optimal average behaviour; this bench compares the whole family and
verifies the local scheme's minimum breakdown utilization stays above
the 1/3 floor on sampled workloads.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sba import LocalScheme, sba_breakdown_scale
from repro.experiments.sweeps import sba_comparison
from repro.units import mbps


def test_bench_sba_comparison(benchmark, bench_params):
    result = benchmark.pedantic(
        sba_comparison, args=(bench_params, 100.0), rounds=1, iterations=1
    )
    print()
    print(result.to_table())

    utils = dict(zip(result.column("scheme"), result.column("avg breakdown util")))
    best = max(utils.values())

    # The paper's design choice: local is competitive with the whole family.
    assert utils["local"] >= 0.8 * best
    # The known pathologies reproduce.
    assert utils["proportional"] == 0.0
    assert utils["local"] > utils["equal-partition"] - 1e-6


def test_bench_local_scheme_worst_case_floor(benchmark, bench_params):
    """Minimum observed breakdown utilization of the local scheme at a
    near-ideal bandwidth stays at or above the theoretical 33% bound."""
    analysis = bench_params.ttp_analysis(1000.0)
    sampler = bench_params.sampler()
    bandwidth = mbps(1000.0)

    def minimum_breakdown() -> float:
        rng = np.random.default_rng(bench_params.seed)
        worst = 1.0
        for message_set in sampler.sample_many(rng, bench_params.monte_carlo_sets):
            ttrt = analysis.select_ttrt(message_set)
            scale = sba_breakdown_scale(
                LocalScheme(),
                message_set,
                ttrt,
                bandwidth,
                analysis.frame_overhead_time,
                analysis.delta,
            )
            utilization = (
                message_set.scaled(scale).utilization(bandwidth) if scale > 0 else 0.0
            )
            worst = min(worst, utilization)
        return worst

    worst = benchmark.pedantic(minimum_breakdown, rounds=1, iterations=1)
    print(f"\nworst-case observed breakdown utilization (local scheme): {worst:.3f}")
    # The 33% theorem bounds the infimum over ALL sets; at 1 Gbps sampled
    # sets must clear it comfortably.
    assert worst >= 0.33
