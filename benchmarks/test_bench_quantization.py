"""Benchmark: 802.5 priority quantization ablation.

Real 802.5 tokens carry 3 priority bits — eight service levels.  The
paper's rate-monotonic implementation assumes distinct priorities per
stream, which only holds up to seven synchronous streams.  This ablation
measures what the quantization costs on a 16-stream ring: deadline misses
under the protocol-faithful simulator as the priority alphabet shrinks,
with the workload pinned at a fixed fraction of its analytic breakdown
point.
"""

from __future__ import annotations

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.experiments.reporting import format_table
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.sim.ieee8025 import IEEE8025Config, IEEE8025Simulator
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def _workload(n: int = 16) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(20 + 6 * i), payload_bits=10_000, station=i
        )
        for i in range(n)
    )


def test_bench_priority_quantization(benchmark):
    workload = _workload()
    ring = ieee_802_5_ring(mbps(16), n_stations=len(workload))
    analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
    scale, __ = breakdown_scale(workload, analysis, rel_tol=1e-3)
    loaded = workload.scaled(scale * 0.85)

    def sweep_levels() -> list[list[object]]:
        rows: list[list[object]] = []
        for levels in (2, 4, 8, 17, 64):
            simulator = IEEE8025Simulator(
                ring,
                FRAME,
                loaded,
                IEEE8025Config(
                    variant=PDPVariant.STANDARD, n_priority_levels=levels
                ),
            )
            report = simulator.run(1.0)
            rows.append(
                [levels, report.total_completed, report.total_missed,
                 report.sync_utilization]
            )
        return rows

    rows = benchmark.pedantic(sweep_levels, rounds=1, iterations=1)
    print()
    print(format_table(["levels", "completed", "missed", "sync util"], rows))

    misses = {row[0]: row[2] for row in rows}
    # More levels never increase misses, and the distinct-priority end
    # must be at least as good as the 8-level standard.
    assert misses[64] <= misses[8] <= misses[2]
    # Heavily quantized priorities visibly hurt at this load.
    assert misses[2] >= misses[64]
