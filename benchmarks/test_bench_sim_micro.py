"""Micro-benchmarks of the discrete-event simulators.

Tracks simulated-seconds-per-wallclock-second for both protocol
simulators and the raw event-kernel throughput.
"""

from __future__ import annotations

from repro.analysis.pdp import PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.sim.engine import Simulator
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def _workload(n: int) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(20 + 8 * i), payload_bits=8_000, station=i
        )
        for i in range(n)
    )


def test_bench_engine_event_throughput(benchmark):
    """One million chained events through the kernel."""
    def run_chain():
        sim = Simulator()
        remaining = [100_000]

        def hop(simulator):
            remaining[0] -= 1
            if remaining[0] > 0:
                simulator.schedule_after(1e-6, hop)

        sim.schedule(0.0, hop)
        sim.run()
        return sim.events_processed

    events = benchmark(run_chain)
    assert events == 100_000


def test_bench_pdp_simulator_second(benchmark):
    """One simulated second of a loaded 10-station 802.5 ring."""
    workload = _workload(10)
    ring = ieee_802_5_ring(mbps(16), n_stations=10)
    simulator = PDPRingSimulator(
        ring, FRAME, workload, PDPSimConfig(variant=PDPVariant.MODIFIED)
    )
    report = benchmark.pedantic(simulator.run, args=(1.0,), rounds=3, iterations=1)
    assert report.total_completed > 0


def test_bench_ttp_simulator_second(benchmark):
    """One simulated second of a loaded 10-station FDDI ring."""
    workload = _workload(10)
    ring = fddi_ring(mbps(100), n_stations=10)
    analysis = TTPAnalysis(ring, FRAME)
    allocation = analysis.allocate(workload)
    simulator = TTPRingSimulator(ring, FRAME, workload, allocation, TTPSimConfig())
    report = benchmark.pedantic(simulator.run, args=(1.0,), rounds=3, iterations=1)
    assert report.total_completed > 0
