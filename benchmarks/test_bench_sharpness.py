"""Benchmark: empirical sharpness of Theorems 4.1 and 5.1.

Bisects the simulated breakdown scale of sampled workloads and compares
with the analytic one: ratio 1 means the criterion is exact under matched
conditions; anything above measures its conservatism.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import PaperParameters
from repro.experiments.sharpness import sharpness_experiment


def test_bench_sharpness(benchmark):
    params = PaperParameters().scaled_down(n_stations=6, monte_carlo_sets=4)
    result = benchmark.pedantic(
        sharpness_experiment,
        args=(params,),
        kwargs={"bandwidth_mbps": 16.0, "n_sets": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    pdp = result.ratios("modified-802.5")
    fddi = result.ratios("fddi")
    assert pdp and fddi

    # Soundness: the simulators never break below the analytic boundary.
    assert min(pdp + fddi) >= 1.0 - 0.03
    # Tightness: Theorem 4.1 is essentially exact against its matched
    # abstraction; Theorem 5.1 is within a few percent.
    assert float(np.mean(pdp)) <= 1.05
    assert float(np.mean(fddi)) <= 1.15
