"""Benchmark: robustness across period distributions (Section 6.2).

The paper reports that the comparison's shape is stable for other mean
periods and max/min ratios.  This bench repeats the three-protocol
comparison over a period grid at a low and a high bandwidth.
"""

from __future__ import annotations

from repro.experiments.sweeps import period_sweep


def test_bench_period_sweep_low_bandwidth(benchmark, bench_params):
    result = benchmark.pedantic(
        period_sweep,
        args=(bench_params, 2.0),
        kwargs={"mean_periods_s": (0.05, 0.1, 0.2), "ratios": (2.0, 10.0)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    for row in result.rows:
        __, __, std, mod, __ = row
        assert mod >= std - 1e-6  # modified dominates everywhere

    # With the paper's ratio of 10 and mean periods up to 100 ms, the PDP
    # wins at 2 Mbps.
    for row in result.rows:
        mean_period, ratio, std, mod, fddi = row
        if ratio == 10.0 and mean_period <= 0.1:
            assert max(std, mod) > fddi


def test_bench_period_sweep_high_bandwidth(benchmark, bench_params):
    """At 100 Mbps FDDI wins across the whole period grid."""
    result = benchmark.pedantic(
        period_sweep,
        args=(bench_params, 100.0),
        kwargs={"mean_periods_s": (0.05, 0.1, 0.2), "ratios": (2.0, 10.0)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    for row in result.rows:
        __, __, std, mod, fddi = row
        assert fddi > max(std, mod)
