"""Benchmark: the fidelity gap between the two PDP abstractions.

Paired runs of the arbitration-oracle simulator (the analysis'
abstraction) and the protocol-faithful 802.5 simulator on the same
workloads: verdict agreement, response-time inflation, and relative cost
of the extra fidelity.
"""

from __future__ import annotations

from repro.analysis.breakdown import breakdown_scale
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.experiments.reporting import format_table
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream
from repro.network.standards import ieee_802_5_ring, paper_frame_format
from repro.sim.compare import compare_pdp_fidelity
from repro.units import mbps, milliseconds


FRAME = paper_frame_format()


def _workload(n: int = 8) -> MessageSet:
    return MessageSet(
        SynchronousStream(
            period_s=milliseconds(20 + 10 * i), payload_bits=8_000, station=i
        )
        for i in range(n)
    )


def test_bench_fidelity_gap(benchmark):
    workload = _workload()
    ring = ieee_802_5_ring(mbps(10), n_stations=len(workload))
    analysis = PDPAnalysis(ring, FRAME, PDPVariant.STANDARD)
    scale, __ = breakdown_scale(workload, analysis, rel_tol=1e-3)

    def compare_at_fractions() -> list[list[object]]:
        rows: list[list[object]] = []
        for fraction in (0.4, 0.7, 0.9):
            loaded = workload.scaled(scale * fraction)
            comparison = compare_pdp_fidelity(
                ring, FRAME, loaded, duration_s=0.6
            )
            rows.append(
                [
                    fraction,
                    comparison.abstract.total_missed,
                    comparison.faithful.total_missed,
                    comparison.worst_response_ratio(),
                ]
            )
        return rows

    rows = benchmark.pedantic(compare_at_fractions, rounds=1, iterations=1)
    print()
    print(format_table(
        ["load fraction", "abstract misses", "faithful misses",
         "response ratio"],
        rows,
    ))

    for fraction, abstract_misses, faithful_misses, ratio in rows:
        if fraction <= 0.7:
            # Inside the analytic envelope both abstractions stay clean.
            assert abstract_misses == 0
            assert faithful_misses == 0
        # Fidelity never buys more than the analytic worst-case factor.
        assert ratio < 3.0
