"""Benchmark: the paper-scale Figure 1 (n = 100 stations, 30 sets).

The other benchmarks run a scaled-down ring for CI friendliness; this one
is the real thing — the exact configuration of the paper's Section 6.2.
It takes tens of seconds; the bench output doubles as the canonical
reproduction record (see EXPERIMENTS.md for the archived run).
"""

from __future__ import annotations

from repro.experiments.figure1 import run_figure1


def test_bench_figure1_paper_scale(benchmark, paper_params):
    result = benchmark.pedantic(
        run_figure1, args=(paper_params,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())

    report = result.shape_report()
    failures = [name for name, ok in report.items() if not ok]
    assert not failures, f"paper-scale shape checks failed: {failures}"

    # The quantitative anchors recorded in EXPERIMENTS.md.
    crossover = result.crossover_bandwidth()
    assert crossover is not None and 4.0 <= crossover <= 100.0
    assert result.peak_bandwidth("pdp_standard") <= 10.0
    assert result.series("ttp")[-1] > 0.85
    assert result.series("pdp_modified")[-1] < 0.05
