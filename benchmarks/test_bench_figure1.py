"""Benchmark: Figure 1 — average breakdown utilization vs bandwidth.

Regenerates the paper's only evaluation figure and asserts its qualitative
shape (see DESIGN.md §4).  The reproduced series are printed so the
benchmark log doubles as the experiment record.
"""

from __future__ import annotations

from repro.experiments.figure1 import run_figure1
from repro.obs import timing


def test_bench_figure1(benchmark, bench_params, bench_jobs):
    """Full three-protocol bandwidth sweep, 1–1000 Mbps."""
    result = benchmark.pedantic(
        run_figure1,
        args=(bench_params,),
        kwargs={"jobs": bench_jobs},
        rounds=1,
        iterations=1,
    )

    print()
    print(result.to_table())
    print(result.to_ascii_plot())

    report = result.shape_report()
    failures = [name for name, ok in report.items() if not ok]
    assert not failures, f"Figure 1 shape checks failed: {failures}"

    crossover = result.crossover_bandwidth()
    assert crossover is not None
    # The paper: PDP wins 1-10 Mbps, TTP wins from somewhere before 100.
    assert 4.0 <= crossover <= 160.0

    # Modified 802.5 must dominate standard at every point, and FDDI must
    # finish on top at 1 Gbps (the paper's closing claims).
    assert result.series("ttp")[-1] > result.series("pdp_modified")[-1]


def test_bench_figure1_single_point(benchmark, bench_params):
    """One bandwidth point (10 Mbps) — the unit of sweep cost."""
    def one_point():
        return run_figure1(bench_params, bandwidths_mbps=(10.0,))

    timing.reset()
    result = benchmark.pedantic(one_point, rounds=3, iterations=1)
    # Ship the per-cell span profile into the benchmark JSON, so the
    # summarized canary records where the wall time went, not just how
    # much there was.
    benchmark.extra_info["spans"] = timing.snapshot()
    point = result.points[0]
    assert 0.0 < point.pdp_modified.mean <= 1.0
    assert 0.0 < point.ttp.mean <= 1.0
