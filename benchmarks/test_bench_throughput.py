"""Benchmark: aggregate-throughput division under guaranteed deadlines.

The abstract's secondary objective: with the synchronous load held at half
its breakdown point (guaranteed), how much asynchronous goodput does each
protocol extract from the remaining bandwidth, and how much is burnt on
protocol overhead?
"""

from __future__ import annotations

from repro.experiments.throughput import throughput_experiment


def test_bench_throughput_division(benchmark, bench_params):
    result = benchmark.pedantic(
        throughput_experiment,
        args=(bench_params,),
        kwargs={"bandwidths_mbps": (4.0, 16.0, 100.0), "duration_s": 0.5},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    # Deadlines hold everywhere (the workloads sit at half breakdown).
    assert all(p.deadline_misses == 0 for p in result.points)

    # Neither protocol idles the medium: goodput stays high.
    assert all(p.goodput > 0.75 for p in result.points)

    # The Figure 1 overhead story in throughput form: at 100 Mbps the PDP
    # burns a much larger fraction on arbitration than FDDI does.
    pdp_100 = next(
        p for p in result.for_protocol("modified-802.5")
        if p.bandwidth_mbps == 100.0
    )
    fddi_100 = next(
        p for p in result.for_protocol("fddi") if p.bandwidth_mbps == 100.0
    )
    assert pdp_100.overhead_fraction > 2 * fddi_100.overhead_fraction
