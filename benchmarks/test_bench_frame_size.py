"""Benchmark: frame-size trade-off for the priority driven protocol.

Section 4.2: small frames approximate preemption better but pay more
overhead; the sweep locates the interior optimum at 10 Mbps.
"""

from __future__ import annotations

from repro.experiments.sweeps import frame_size_sweep


def test_bench_frame_size_sweep(benchmark, bench_params):
    result = benchmark.pedantic(
        frame_size_sweep,
        args=(bench_params, 10.0),
        kwargs={"payload_bytes": (16, 32, 64, 128, 256, 512, 1024)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())

    for variant in ("ieee-802.5", "modified-802.5"):
        series = [
            (size, util)
            for v, size, util in zip(
                result.column("variant"),
                result.column("payload (bytes)"),
                result.column("avg breakdown util"),
            )
            if v == variant
        ]
        utils = [u for _, u in series]
        # The smallest frame is never the best choice (overhead dominates)...
        assert max(utils) > utils[0]
        # ...and the trade-off is material: the spread exceeds 5 points.
        assert max(utils) - min(utils) > 0.05
