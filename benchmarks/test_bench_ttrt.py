"""Benchmark: TTRT sensitivity (Section 5.2's design-choice study).

Sweeps fixed TTRT values against the sqrt-rule, half-min, and numeric
optimal policies at 10 Mbps, where per-rotation overheads bite hardest.
"""

from __future__ import annotations

from repro.experiments.sweeps import ttrt_sweep


def test_bench_ttrt_sweep(benchmark, bench_params):
    result = benchmark.pedantic(
        ttrt_sweep, args=(bench_params, 10.0), rounds=1, iterations=1
    )
    print()
    print(result.to_table())

    utils = dict(zip(result.column("policy"), result.column("avg breakdown util")))

    # Paper claims: performance is sensitive to TTRT; values far below
    # P_min/2 win; the sqrt rule approaches the per-workload optimum.
    fixed = [u for p, u in utils.items() if str(p).startswith("fixed")]
    assert max(fixed) > min(fixed) + 0.1

    assert utils["sqrt-rule"] > utils["half-min"]
    assert utils["optimal"] >= utils["sqrt-rule"] - 1e-6
    assert utils["sqrt-rule"] >= 0.85 * utils["optimal"]
