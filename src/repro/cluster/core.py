"""Routing state shared by the cluster router and the test harness.

Two pieces live here because both the asyncio router *and* the
differential-fuzz harness need them, and they must be the same code —
a property pinned against a test-only re-implementation of routing
would pin nothing:

* :class:`ClusterDirectory` — per-request shard selection (all four
  routing policies) plus the fleet stream-id table.  Worker-local
  stream ids are per-process counters, so two shards both hand out id
  ``1``; the front translates every admitted stream to a fleet-unique
  id and back on release.  Clients see one id space, exactly as if a
  single controller served them.

* :class:`InProcessCluster` — N real :class:`AdmissionController`
  workers behind a :class:`ClusterDirectory` and a
  :class:`~repro.cluster.budget.BudgetLedger`, dispatching through
  ``process_batch`` just as the service's micro-batcher does, but all
  in one process with no sockets.  The ``cluster_shard_equiv`` and
  ``cluster_budget_sound`` fuzz properties drive this harness; the
  subprocess cluster (supervisor + router) runs the same directory and
  ledger code against real worker processes.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.admission import AdmissionOp, OpFault, ReleaseOutcome
from repro.cluster.budget import BudgetLedger
from repro.cluster.hashring import HashRing, choose_shard, stream_key
from repro.errors import ConfigurationError

__all__ = ["ClusterDirectory", "InProcessCluster"]


class ClusterDirectory:
    """Shard selection and fleet-wide stream-id translation.

    Single-writer: the router mutates it only from its event loop, the
    in-process harness from its single thread.
    """

    def __init__(self, shard_ids, *, policy: str = "hash", seed: int = 0):
        self.ring = HashRing(shard_ids)
        self.policy = policy
        self.loads: dict[str, int] = {shard: 0 for shard in shard_ids}
        self._rng = random.Random(seed)
        self._next_fleet_id = 1
        self._streams: dict[int, tuple[str, int]] = {}

    @property
    def shard_ids(self) -> tuple:
        """Live shards, in ring order."""
        return self.ring.shards

    # -- shard selection -----------------------------------------------------

    def route_stream(self, period_s: float, payload_bits: float) -> str:
        """The shard a check/admit for this candidate goes to."""
        key = stream_key(period_s, payload_bits)
        return choose_shard(
            self.policy, self.ring, key, self.loads, self._rng
        )

    def owner_of(self, fleet_id: int) -> tuple | None:
        """``(shard_id, local_id)`` for a fleet stream id, or None."""
        return self._streams.get(fleet_id)

    # -- id translation ------------------------------------------------------

    def register_admit(self, shard_id: str, local_id: int) -> int:
        """Record an admitted stream; returns its fleet-unique id."""
        fleet_id = self._next_fleet_id
        self._next_fleet_id += 1
        self._streams[fleet_id] = (shard_id, local_id)
        return fleet_id

    def forget(self, fleet_id: int) -> None:
        """Drop a released stream's translation entry."""
        self._streams.pop(fleet_id, None)

    def streams_of(self, shard_id: str) -> list:
        """The fleet ids currently mapped to one shard."""
        return [
            fleet_id
            for fleet_id, (shard, _) in self._streams.items()
            if shard == shard_id
        ]

    # -- membership ----------------------------------------------------------

    def drop_shard(self, shard_id: str) -> list:
        """Remove a dead shard: rebalance the ring, drop its streams.

        Returns the fleet ids that died with the worker (their admitted
        state was process memory).  Subsequent releases of those ids
        answer unknown-stream — exactly what a restarted single
        controller would say.
        """
        if len(self.ring.shards) <= 1:
            raise ConfigurationError(
                "cannot drop the last shard from the directory"
            )
        self.ring = self.ring.without(shard_id)
        self.loads.pop(shard_id, None)
        dead = self.streams_of(shard_id)
        for fleet_id in dead:
            self._streams.pop(fleet_id, None)
        return dead

    def add_shard(self, shard_id: str) -> None:
        """Admit a (re)started worker to the ring."""
        self.ring = self.ring.with_shard(shard_id)
        self.loads.setdefault(shard_id, 0)


class InProcessCluster:
    """A whole sharded cluster in one process, for tests and fuzzing.

    Workers are real controllers built by ``controller_factory`` (one
    call per shard — each must return a *fresh* controller), leases come
    from an even :meth:`~repro.cluster.budget.BudgetLedger.split_evenly`
    and are acknowledged immediately (in-process, the "worker" hears the
    new cap synchronously).  Every operation a shard executes is also
    appended to ``histories[shard_id]`` in worker-local terms, so a
    differential check can replay the exact subsequence against a
    standalone controller.
    """

    def __init__(
        self,
        shard_ids,
        controller_factory,
        *,
        utilization_cap: float = 0.9,
        policy: str = "hash",
        seed: int = 0,
    ):
        self.directory = ClusterDirectory(
            shard_ids, policy=policy, seed=seed
        )
        self.ledger = BudgetLedger(utilization_cap)
        self.workers = {shard: controller_factory() for shard in shard_ids}
        self.histories: dict[str, list] = {shard: [] for shard in shard_ids}
        targets = self.ledger.split_evenly(shard_ids)
        for shard, target in targets.items():
            self.workers[shard].set_utilization_cap(target)
            self.ledger.acknowledge(shard, target)

    def fleet_utilization(self) -> float:
        """Sum of the live workers' admitted utilizations."""
        return sum(w.utilization() for w in self.workers.values())

    def kill_shard(self, shard_id: str) -> list:
        """Simulate a worker death: drop it, rebalance, reclaim budget.

        The freed lease is redistributed evenly across the survivors
        (grant + immediate ack, as the router's reconciler would after
        the workers confirm).  Returns the fleet ids lost with the
        worker.
        """
        if shard_id not in self.workers:
            raise ConfigurationError(f"unknown shard {shard_id!r}")
        dead = self.directory.drop_shard(shard_id)
        self.workers.pop(shard_id)
        self.ledger.reclaim(shard_id)
        survivors = self.directory.shard_ids
        for shard, target in self.ledger.split_evenly(survivors).items():
            self.workers[shard].set_utilization_cap(target)
            self.ledger.acknowledge(shard, target)
        return dead

    def dispatch(self, op: AdmissionOp):
        """Execute one operation through routing and id translation.

        Returns exactly what a single controller's ``process_batch``
        would: an :class:`AdmissionDecision`, :class:`ReleaseOutcome`,
        or :class:`OpFault` — with stream ids in *fleet* terms.
        """
        if op.kind in ("check", "admit"):
            shard = self.directory.route_stream(op.period_s, op.payload_bits)
            local_op = op
            self.histories[shard].append(local_op)
            result = self.workers[shard].process_batch([local_op])[0]
            if (
                op.kind == "admit"
                and not isinstance(result, OpFault)
                and result.admitted
            ):
                fleet_id = self.directory.register_admit(
                    shard, result.stream_id
                )
                result = replace(result, stream_id=fleet_id)
            return result
        if op.kind == "release":
            owner = self.directory.owner_of(op.stream_id)
            if owner is None:
                # No shard ever admitted this fleet id (or its worker
                # died): answered at the front, same wording as the
                # controller's own unknown-stream answer.
                if op.idempotent:
                    return ReleaseOutcome(
                        released=False, stream_id=op.stream_id
                    )
                return OpFault(
                    "AdmissionError",
                    f"unknown or already-released stream id: "
                    f"{op.stream_id!r}",
                )
            shard, local_id = owner
            local_op = AdmissionOp.release(
                local_id, idempotent=op.idempotent
            )
            self.histories[shard].append(local_op)
            result = self.workers[shard].process_batch([local_op])[0]
            if isinstance(result, ReleaseOutcome):
                if result.released:
                    self.directory.forget(op.stream_id)
                result = replace(result, stream_id=op.stream_id)
            return result
        return OpFault(
            "ServiceError", f"unknown operation kind {op.kind!r}"
        )
