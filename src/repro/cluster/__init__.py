"""Sharded admission cluster: prefork workers behind a routing front.

The single-process admission service (:mod:`repro.service`) answers
~thousands of decisions per second on one core; this package scales it
*out* — N worker processes, each running the unmodified asyncio
admission server on its own port, behind one router process:

* :mod:`repro.cluster.hashring` — consistent-hash routing over stream
  keys (plus ``random`` / ``least-loaded`` / ``power-of-two`` alternate
  policies), so repeat candidates land on the same shard and its
  prefix-keyed verdict cache stays hot;
* :mod:`repro.cluster.budget` — the lease-based global utilization
  budget.  Capacity on a token ring is a *global* quantity (Theorems
  4.1/5.1 of the paper judge the whole message set; Jain's FDDI
  analysis tunes one TTRT for the whole ring), so independent deciders
  must split one budget: the router grants each worker a utilization
  lease, every worker enforces its lease locally (the ``budget`` gate
  of :class:`repro.admission.AdmissionController`), and the invariant
  ``sum(leases) <= cap`` keeps the fleet jointly sound;
* :mod:`repro.cluster.core` — shard directory and fleet-wide stream-id
  translation shared by the router and the in-process test harness;
* :mod:`repro.cluster.supervisor` — the prefork worker pool (spawn,
  health, automatic restart of dead workers, graceful drain);
* :mod:`repro.cluster.worker` — the worker entry point
  (``python -m repro.cluster.worker``);
* :mod:`repro.cluster.router` — the asyncio front process: forwards
  requests, retries around dead workers after a ring rebalance,
  aggregates ``/healthz`` and ``/metrics`` fleet-wide (per-shard
  labels), and reconciles the budget split.

Decision fidelity is pinned by the ``cluster_shard_equiv`` fuzz
property: on shard-local workloads every worker's decisions are
bit-identical to a standalone single-worker controller given the same
subsequence; ``cluster_budget_sound`` pins the fleet's aggregate
utilization under the single-controller cap at every step.
"""

from repro.cluster.budget import BudgetLedger, Lease
from repro.cluster.config import ClusterConfig
from repro.cluster.core import ClusterDirectory, InProcessCluster
from repro.cluster.hashring import HashRing, stream_key

__all__ = [
    "BudgetLedger",
    "Lease",
    "ClusterConfig",
    "ClusterDirectory",
    "InProcessCluster",
    "HashRing",
    "stream_key",
]
