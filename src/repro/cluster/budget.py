"""The lease-based global utilization budget of a sharded fleet.

A token ring's capacity is one global quantity: the schedulability
theorems judge the *whole* message set, and the utilization-based
sufficient bound is a cap on the *sum* of stream utilizations.  Split
admission control across N independent workers and that cap must be
split with it — otherwise N workers, each individually under the cap,
jointly admit past it.

:class:`BudgetLedger` is the router's authoritative view of the split.
Each worker holds a :class:`Lease` — a slice of the cap it may admit up
to (enforced worker-side by the ``budget`` gate of
:class:`repro.admission.AdmissionController`).  The soundness invariant

    ``sum(granted leases) <= cap``

holds at every instant, which makes the fleet argument one line: each
worker's admitted utilization never exceeds its lease (worker gate), so
the fleet's admitted utilization never exceeds the sum of leases, which
never exceeds the cap.  ``cluster_budget_sound`` fuzzes exactly this
chain, and the ``router_stale_lease`` mutant (a ledger that sizes
grants from a stale view that ignores outstanding leases) is required
to be caught by it.

Two-phase shrink: budget freed by *lowering* a shard's lease is not
re-grantable until the worker **acknowledges** the lower cap (its
``/v1/lease`` response).  Until the ack arrives the worker may still be
admitting under the old, larger lease, so the ledger keeps charging the
old value — :meth:`BudgetLedger.grant` records the target,
:meth:`BudgetLedger.acknowledge` releases the difference.  Without this
the reconciler could move budget from A to B while A still spends it.

A dead worker's lease is reclaimed with :meth:`BudgetLedger.reclaim`
only once the supervisor confirms the process is gone (its admitted
state died with it); an unreachable-but-alive worker keeps its charge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Lease", "BudgetLedger"]

#: Tolerance for float accumulation when checking the ledger invariant.
_EPSILON = 1e-9


@dataclass
class Lease:
    """One shard's slice of the global utilization budget.

    ``granted`` is what the ledger charges for the shard (the value the
    soundness invariant sums); ``target`` is what the router last asked
    the worker to enforce.  They differ only mid-shrink: ``target`` has
    dropped but the worker hasn't acknowledged yet, so ``granted`` still
    carries the old, larger value.
    """

    shard_id: str
    granted: float
    target: float

    @property
    def settled(self) -> bool:
        """Whether the worker has acknowledged the current target."""
        return self.granted == self.target


def _grantable(cap: float, outstanding: float) -> float:
    """Budget headroom available for new grants.

    ``outstanding`` is the sum of every *other* shard's granted lease —
    the charge the rest of the fleet already holds against the cap.  A
    router that computes headroom from a stale view (ignoring
    outstanding grants) re-issues the same budget to several shards;
    that is exactly the ``router_stale_lease`` mutant, and the
    ``cluster_budget_sound`` fuzz property exists to catch it.
    """
    return max(0.0, cap - outstanding)


class BudgetLedger:
    """The router's authoritative record of the budget split.

    Not thread-safe by itself: the router mutates it only from its
    single event loop (the same discipline the admission server applies
    to its batcher).
    """

    def __init__(self, cap: float):
        if not cap >= 0.0:
            raise ConfigurationError(
                f"budget cap must be non-negative, got {cap!r}"
            )
        self._cap = float(cap)
        self._leases: dict[str, Lease] = {}

    @property
    def cap(self) -> float:
        """The fleet-wide utilization cap being split."""
        return self._cap

    @property
    def leases(self) -> dict:
        """A snapshot copy ``{shard_id: Lease}`` of the current split."""
        return {
            shard: Lease(lease.shard_id, lease.granted, lease.target)
            for shard, lease in self._leases.items()
        }

    def granted_total(self) -> float:
        """Sum of granted leases — must never exceed :attr:`cap`."""
        return sum(lease.granted for lease in self._leases.values())

    def lease_of(self, shard_id: str) -> Lease | None:
        """The shard's lease, or None if it holds no budget."""
        lease = self._leases.get(shard_id)
        if lease is None:
            return None
        return Lease(lease.shard_id, lease.granted, lease.target)

    def grant(self, shard_id: str, target: float) -> float:
        """Move a shard's lease toward ``target``; returns the new target.

        Grows are clipped to the available headroom (computed against
        every *other* shard's granted charge), so the invariant holds by
        construction.  Shrinks take effect on the ledger only at
        :meth:`acknowledge` — the returned (possibly clipped) target is
        what the router should send to the worker.
        """
        if not target >= 0.0:
            raise ConfigurationError(
                f"lease target must be non-negative, got {target!r}"
            )
        lease = self._leases.get(shard_id)
        current = lease.granted if lease is not None else 0.0
        if target > current:
            outstanding = self.granted_total() - current
            headroom = _grantable(self._cap, outstanding)
            target = min(target, headroom)
            # A grow is charged immediately: the worker may start
            # spending the instant it hears the new cap, and the ledger
            # must already account for it.
            granted = max(current, target)
        else:
            granted = current  # shrink: keep charging until the ack
        if lease is None:
            self._leases[shard_id] = Lease(shard_id, granted, target)
        else:
            lease.granted = granted
            lease.target = target
        return target

    def acknowledge(self, shard_id: str, acknowledged_cap: float) -> None:
        """The worker confirmed it now enforces ``acknowledged_cap``.

        Only now may a shrink's freed budget re-enter the pool: the
        granted charge drops to the acknowledged value (never below the
        current target — a stale ack from before a later grow must not
        shed the grow's charge).
        """
        lease = self._leases.get(shard_id)
        if lease is None:
            return
        if acknowledged_cap < lease.granted:
            lease.granted = max(acknowledged_cap, lease.target)

    def reclaim(self, shard_id: str) -> float:
        """Return a confirmed-dead shard's whole lease to the pool."""
        lease = self._leases.pop(shard_id, None)
        return lease.granted if lease is not None else 0.0

    def split_evenly(self, shard_ids) -> dict:
        """Target an even split of the cap across ``shard_ids``.

        The reconciler's default plan.  Shrinks are planned before
        grows (two passes) so budget freed by one shard is available to
        another within the same reconciliation round once the shrink is
        acknowledged.  Returns ``{shard_id: target}`` to send to the
        workers.
        """
        shard_list = list(dict.fromkeys(shard_ids))
        if not shard_list:
            return {}
        share = self._cap / len(shard_list)
        targets: dict[str, float] = {}
        for shard in shard_list:  # pass 1: shrinks free budget
            lease = self._leases.get(shard)
            if lease is not None and share <= lease.granted:
                targets[shard] = self.grant(shard, share)
        for shard in shard_list:  # pass 2: grows take what's free
            if shard not in targets:
                targets[shard] = self.grant(shard, share)
        return targets

    def sound(self) -> bool:
        """Whether the soundness invariant currently holds.

        Deliberately a *probe*, not an assertion inside :meth:`grant`:
        the router exports it (fleet ``/healthz``) and the
        ``cluster_budget_sound`` fuzz property checks it at every step —
        a ledger bug must surface as an observed violation, not hide
        behind its own exception.
        """
        return self.granted_total() <= self._cap + _EPSILON
