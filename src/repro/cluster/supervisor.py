"""The prefork worker pool: spawn, watch, restart, drain.

:class:`WorkerPool` owns N worker subprocesses (each running
:mod:`repro.cluster.worker`).  The design is deliberately poll-driven —
:meth:`WorkerPool.poll` advances a small per-worker state machine
(``running → dead → backoff → starting → running``) and returns the
membership events it produced — so one code path serves both the
router's asyncio heartbeat task and plain synchronous tests, with no
background threads to leak.

Discovery is file-based: a worker advertises ``<pid> <port>`` in
``<runtime_dir>/<shard>.port`` once bound (see
:mod:`repro.cluster.worker`), and retracts the file when it drains.
The pool never guesses ports; a worker that dies before advertising is
respawned like any other death.

Restart policy: a dead worker is respawned after ``restart_backoff_s``,
at most ``max_restarts`` times per shard per session; a respawned
worker starts with a **zero** budget lease (it admits nothing until the
router's reconciler grants it a share of whatever the ledger reclaimed
from its previous incarnation — the order that keeps the fleet sound,
since the reclaim happens on the death event, strictly before the new
grant).

Shutdown is a graceful drain: SIGTERM to every child (the worker's
signal handler drains its queue before exiting), a grace period, then
SIGKILL for stragglers.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.cluster.config import (
    ClusterConfig,
    shard_name,
    worker_service_config,
)
from repro.cluster.worker import port_file_path, read_port_file
from repro.errors import ConfigurationError, ServiceError
from repro.obs.logging import get_logger

__all__ = ["WorkerPool", "WorkerHandle"]

_LOG = get_logger("repro.cluster.supervisor")

#: How long a freshly spawned worker gets to bind and advertise.
_START_TIMEOUT_S = 30.0


@dataclasses.dataclass
class WorkerHandle:
    """The pool's view of one shard slot."""

    shard_id: str
    process: subprocess.Popen | None = None
    port: int | None = None
    pid: int | None = None
    state: str = "new"  # new | starting | running | backoff | failed
    restarts: int = 0
    respawn_at: float = 0.0
    initial_cap: float = 0.0


class WorkerPool:
    """N admission-worker subprocesses under one supervisor.

    Usage::

        pool = WorkerPool(config)
        pool.start()                  # blocks until every worker advertises
        ...
        events = pool.poll()          # [("died", shard), ("started", shard)]
        ...
        pool.drain()                  # SIGTERM, grace, SIGKILL stragglers
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self._owns_runtime_dir = config.runtime_dir is None
        self.runtime_dir = (
            config.runtime_dir
            if config.runtime_dir is not None
            else tempfile.mkdtemp(prefix="repro-cluster-")
        )
        os.makedirs(self.runtime_dir, exist_ok=True)
        self.workers: dict[str, WorkerHandle] = {
            shard_name(i): WorkerHandle(shard_id=shard_name(i))
            for i in range(config.n_workers)
        }

    # -- spawning ------------------------------------------------------------

    def _spawn(self, handle: WorkerHandle) -> None:
        """Launch one worker subprocess (non-blocking)."""
        service = worker_service_config(
            self.config, handle.shard_id, handle.initial_cap
        )
        config_path = os.path.join(
            self.runtime_dir, f"{handle.shard_id}.config.json"
        )
        with open(config_path, "w") as out:
            json.dump(dataclasses.asdict(service), out)
        # A stale advertisement from a previous incarnation must not be
        # mistaken for the new worker's.
        try:
            os.unlink(port_file_path(self.runtime_dir, handle.shard_id))
        except OSError:
            pass
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if self.config.cache_dir is not None:
            env["REPRO_CACHE_DIR"] = self.config.cache_dir
        log_path = os.path.join(
            self.runtime_dir, f"{handle.shard_id}.log"
        )
        with open(log_path, "ab") as log_file:
            handle.process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.worker",
                    "--config",
                    config_path,
                    "--runtime-dir",
                    self.runtime_dir,
                ],
                stdout=log_file,
                stderr=log_file,
                env=env,
                start_new_session=True,  # our SIGINT must not reach workers
            )
        handle.state = "starting"
        handle.port = None
        handle.pid = handle.process.pid
        _LOG.info(
            "spawned worker %s (pid %d)", handle.shard_id, handle.process.pid
        )

    def start(self, timeout_s: float = _START_TIMEOUT_S) -> None:
        """Spawn every worker and block until all advertise their ports.

        The initial cohort starts with an even budget split
        (``utilization_cap / n_workers`` each) — the router's ledger
        adopts the same split on discovery, so the fleet is sound from
        the first request without waiting a heartbeat.
        """
        share = self.config.utilization_cap / self.config.n_workers
        for handle in self.workers.values():
            handle.initial_cap = share
            self._spawn(handle)
        deadline = time.monotonic() + timeout_s
        pending = set(self.workers)
        while pending:
            for shard in sorted(pending):
                if self._check_advertised(self.workers[shard]):
                    pending.discard(shard)
                    break
            else:
                if time.monotonic() > deadline:
                    self.drain(grace_s=2.0)
                    raise ServiceError(
                        f"workers failed to start within {timeout_s:g}s: "
                        f"{sorted(pending)}"
                    )
                self._raise_on_early_death()
                time.sleep(0.02)

    def _raise_on_early_death(self) -> None:
        for handle in self.workers.values():
            if handle.state == "starting" and handle.process.poll() is not None:
                log_tail = self._log_tail(handle.shard_id)
                self.drain(grace_s=2.0)
                raise ServiceError(
                    f"worker {handle.shard_id} exited during startup "
                    f"(code {handle.process.returncode}): {log_tail}"
                )

    def _log_tail(self, shard_id: str, limit: int = 800) -> str:
        try:
            with open(
                os.path.join(self.runtime_dir, f"{shard_id}.log"), "rb"
            ) as handle:
                return handle.read()[-limit:].decode("utf-8", "replace")
        except OSError:
            return "<no log>"

    def _check_advertised(self, handle: WorkerHandle) -> bool:
        """Promote a starting worker to running once its port file lands."""
        advertised = read_port_file(self.runtime_dir, handle.shard_id)
        if advertised is None:
            return False
        pid, port = advertised
        if pid != handle.process.pid:
            return False  # stale file from a previous incarnation
        handle.port = port
        handle.pid = pid
        handle.state = "running"
        return True

    # -- supervision ---------------------------------------------------------

    def poll(self) -> list:
        """Advance supervision one step; returns membership events.

        Events are ``("died", shard_id)`` — the process is confirmed
        gone (its lease is safe to reclaim) — and
        ``("started", shard_id)`` — a (re)spawned worker is advertising
        and ready for traffic.  ``("failed", shard_id)`` reports a shard
        that exhausted its restart budget.
        """
        events: list = []
        now = time.monotonic()
        for handle in self.workers.values():
            if handle.state == "running":
                if handle.process.poll() is not None:
                    _LOG.warning(
                        "worker %s (pid %d) died with code %s",
                        handle.shard_id,
                        handle.pid,
                        handle.process.returncode,
                    )
                    try:
                        os.unlink(
                            port_file_path(self.runtime_dir, handle.shard_id)
                        )
                    except OSError:
                        pass
                    events.append(("died", handle.shard_id))
                    if handle.restarts < self.config.max_restarts:
                        handle.state = "backoff"
                        handle.respawn_at = (
                            now + self.config.restart_backoff_s
                        )
                    else:
                        handle.state = "failed"
                        events.append(("failed", handle.shard_id))
            elif handle.state == "backoff":
                if now >= handle.respawn_at:
                    handle.restarts += 1
                    # A respawn starts leaseless: it admits nothing
                    # until the router re-grants the budget it
                    # reclaimed from the dead incarnation.
                    handle.initial_cap = 0.0
                    self._spawn(handle)
            elif handle.state == "starting":
                if self._check_advertised(handle):
                    events.append(("started", handle.shard_id))
                elif handle.process.poll() is not None:
                    # Died before advertising: treat as a death (the
                    # restart budget still applies).
                    events.append(("died", handle.shard_id))
                    if handle.restarts < self.config.max_restarts:
                        handle.state = "backoff"
                        handle.respawn_at = (
                            now + self.config.restart_backoff_s
                        )
                    else:
                        handle.state = "failed"
                        events.append(("failed", handle.shard_id))
        return events

    def running(self) -> dict:
        """``{shard_id: (pid, port)}`` of the workers ready for traffic."""
        return {
            handle.shard_id: (handle.pid, handle.port)
            for handle in self.workers.values()
            if handle.state == "running"
        }

    def kill(self, shard_id: str, *, hard: bool = True) -> None:
        """Kill one worker (tests use this to exercise the death path)."""
        handle = self.workers.get(shard_id)
        if handle is None or handle.process is None:
            raise ConfigurationError(f"unknown shard {shard_id!r}")
        sig = signal.SIGKILL if hard else signal.SIGTERM
        try:
            handle.process.send_signal(sig)
        except ProcessLookupError:
            pass

    # -- shutdown ------------------------------------------------------------

    def drain(self, grace_s: float | None = None) -> None:
        """Gracefully stop every worker (SIGTERM, grace, SIGKILL)."""
        grace = (
            grace_s
            if grace_s is not None
            else self.config.service.drain_grace_s + 2.0
        )
        procs = [
            handle.process
            for handle in self.workers.values()
            if handle.process is not None and handle.process.poll() is None
        ]
        for proc in procs:
            try:
                proc.terminate()
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + grace
        for proc in procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.05, remaining))
            except subprocess.TimeoutExpired:
                _LOG.warning(
                    "worker pid %d ignored SIGTERM; killing", proc.pid
                )
                proc.kill()
                proc.wait(timeout=5.0)
        for handle in self.workers.values():
            if handle.state != "failed":
                handle.state = "stopped"
