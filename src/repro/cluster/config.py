"""Configuration of one sharded admission cluster session."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.hashring import ROUTE_POLICIES
from repro.errors import ConfigurationError
from repro.service.protocol import ServiceConfig

__all__ = ["ClusterConfig", "worker_service_config", "shard_name"]


def shard_name(index: int) -> str:
    """The canonical shard id of worker ``index`` (``w0``, ``w1``, ...)."""
    return f"w{index}"


@dataclass(frozen=True)
class ClusterConfig:
    """Everything one cluster session needs.

    ``service`` is the *template* each worker starts from — every worker
    gets a copy with its own ``shard_id``, an ephemeral port, and its
    initial budget lease filled in.  The analysis side of the template
    (protocol, bandwidth, stations, policy, engine) must be identical
    across workers or the shard-equivalence pin is meaningless; keeping
    one template makes that true by construction.

    ``utilization_cap`` is the *fleet* budget — the cap a single
    controller would enforce — which the router's ledger splits into
    per-worker leases (see :mod:`repro.cluster.budget`).  ``cache_dir``
    (when set) is exported to every worker as ``REPRO_CACHE_DIR`` so all
    shards share one disk cache tier: prefix-keyed verdicts computed by
    one worker warm the whole fleet.
    """

    n_workers: int = 4
    host: str = "127.0.0.1"
    router_port: int = 0  # 0 → ephemeral
    route_policy: str = "hash"
    utilization_cap: float = 0.9
    cache_dir: str | None = None
    runtime_dir: str | None = None  # port files + worker logs; None → temp
    service: ServiceConfig = field(
        default_factory=lambda: ServiceConfig(port=0)
    )
    heartbeat_s: float = 0.5  # router health/lease reconciliation cadence
    restart_backoff_s: float = 0.2  # supervisor delay before a respawn
    max_restarts: int = 5  # per worker, per session
    seed: int = 0  # router rng (random / power-of-two policies)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be at least 1, got {self.n_workers!r}"
            )
        if self.route_policy not in ROUTE_POLICIES:
            raise ConfigurationError(
                f"route_policy must be one of {ROUTE_POLICIES}, "
                f"got {self.route_policy!r}"
            )
        if not self.utilization_cap >= 0.0:
            raise ConfigurationError(
                f"utilization_cap must be non-negative, "
                f"got {self.utilization_cap!r}"
            )
        if self.heartbeat_s <= 0:
            raise ConfigurationError(
                f"heartbeat_s must be positive, got {self.heartbeat_s!r}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be non-negative, got {self.max_restarts!r}"
            )

    def shard_ids(self) -> tuple:
        """The shard ids of this cluster, in worker order."""
        return tuple(shard_name(i) for i in range(self.n_workers))


def worker_service_config(
    config: ClusterConfig, shard_id: str, initial_cap: float
) -> ServiceConfig:
    """The per-worker :class:`ServiceConfig` derived from the template."""
    return replace(
        config.service,
        host=config.host,
        port=0,  # each worker binds its own ephemeral port
        shard_id=shard_id,
        utilization_cap=initial_cap,
    )
