"""The cluster front: one asyncio process routing to N admission workers.

:class:`ClusterRouter` listens on one port and speaks the same wire
protocol as a single admission server, so every existing client — the
sync/async service clients, the load generator, ``runner top`` — works
against a cluster unchanged.  Behind the listener it:

* **routes** ``/v1/check`` and ``/v1/admit`` by consistent hash over
  the stream key (or the ``random`` / ``least-loaded`` /
  ``power-of-two`` alternates), and ``/v1/release`` by the fleet
  stream-id directory (the router translates worker-local stream ids
  to fleet-unique ones, so clients see a single id space);
* **pools** keep-alive connections per backend (each pooled connection
  carries one in-flight request at a time);
* **retries around death**: a connection failure to a worker drops it
  from the hash ring (:meth:`ClusterDirectory.drop_shard` — only that
  worker's hash range moves) and the request is re-dispatched to the
  surviving owner; a release aimed at a dead worker's stream answers
  unknown-stream, which is exactly what a restarted single controller
  would say.  Budget is *not* reclaimed on a connection failure — only
  the supervisor's confirmed death event frees a lease (an unreachable
  worker may still be admitting under it);
* **aggregates observability**: fleet ``/healthz`` (per-shard health
  plus budget-ledger status), fleet ``/metrics`` (JSON snapshots merged
  across workers via :meth:`MetricsRegistry.merge`, Prometheus text
  concatenated with per-shard ``shard_id``/``worker_pid`` labels);
* **reconciles the budget** each heartbeat: supervisor events first
  (died → reclaim, started → re-add), then an even
  :meth:`~repro.cluster.budget.BudgetLedger.split_evenly` pushed to the
  workers through ``/v1/lease``, acknowledgements folded back into the
  ledger.  The two-phase shrink discipline lives in the ledger; the
  router just never re-grants budget a worker hasn't confirmed
  releasing.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.cluster.budget import BudgetLedger
from repro.cluster.config import ClusterConfig
from repro.cluster.core import ClusterDirectory
from repro.cluster.supervisor import WorkerPool
from repro.errors import ServiceError
from repro.obs import metrics, prometheus
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.service.protocol import WIRE_SCHEMA_VERSION, dump_body

__all__ = ["ClusterRouter"]

_LOG = get_logger("repro.cluster.router")

_MAX_BODY_BYTES = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class _Backend:
    """One worker's address plus a small keep-alive connection pool."""

    def __init__(self, shard_id: str, host: str, port: int, pid: int | None):
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.pid = pid
        self.idle: list = []  # [(reader, writer)]
        #: Last lease cap this worker acknowledged over /v1/lease, or
        #: None when nothing was ever pushed/adopted (a fresh respawn).
        #: Distinct from the ledger's arithmetic: grant() charges grows
        #: immediately, so the *ledger* looks settled the moment the
        #: router re-levels — only this field says the worker agreed.
        self.acked_cap: float | None = None

    async def acquire(self):
        while self.idle:
            reader, writer = self.idle.pop()
            if writer.is_closing():
                continue
            return reader, writer
        return await asyncio.open_connection(self.host, self.port)

    def release(self, reader, writer) -> None:
        if len(self.idle) < 32 and not writer.is_closing():
            self.idle.append((reader, writer))
        else:
            writer.close()

    def close(self) -> None:
        for _, writer in self.idle:
            writer.close()
        self.idle.clear()


class ClusterRouter:
    """The admission cluster's front process.

    Args:
        config: the :class:`~repro.cluster.config.ClusterConfig`.
        pool: the :class:`~repro.cluster.supervisor.WorkerPool` whose
            workers this router fronts.  The router adopts the pool's
            running workers at :meth:`start` and supervises membership
            through ``pool.poll()`` in its heartbeat; pass None for a
            router over externally managed backends (tests add them
            with :meth:`add_backend`).
    """

    def __init__(self, config: ClusterConfig, pool: WorkerPool | None = None):
        self.config = config
        self.pool = pool
        self.ledger = BudgetLedger(config.utilization_cap)
        self.directory: ClusterDirectory | None = None  # built at start
        self.backends: dict[str, _Backend] = {}
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._draining = False
        self._m_requests = metrics.counter("cluster.router.requests")
        self._m_errors = metrics.counter("cluster.router.errors")
        self._m_retries = metrics.counter("cluster.router.retries")
        self._m_rerouted = metrics.counter("cluster.router.rerouted_shards")
        self._m_deaths = metrics.counter("cluster.router.worker_deaths")
        self._m_restarts = metrics.counter("cluster.router.worker_restarts")
        self._m_workers = metrics.gauge("cluster.router.workers")
        self._m_granted = metrics.gauge("cluster.router.lease_granted_total")

    # -- membership ----------------------------------------------------------

    def add_backend(
        self, shard_id: str, host: str, port: int, pid: int | None = None
    ) -> None:
        """Register one worker backend (and its shard on the ring)."""
        self.backends[shard_id] = _Backend(shard_id, host, port, pid)
        if self.directory is None:
            self.directory = ClusterDirectory(
                [shard_id],
                policy=self.config.route_policy,
                seed=self.config.seed,
            )
        else:
            self.directory.add_shard(shard_id)
        self._m_workers.set(len(self.backends))

    def _drop_backend(self, shard_id: str) -> None:
        """Remove a worker from routing (ring rebalance); keep its lease.

        Only that shard's hash range moves to the survivors.  The lease
        stays charged until the supervisor confirms the process died —
        an unreachable worker may still be admitting under it.
        """
        backend = self.backends.pop(shard_id, None)
        if backend is not None:
            backend.close()
        if (
            self.directory is not None
            and shard_id in self.directory.shard_ids
            and len(self.directory.shard_ids) > 1
        ):
            self.directory.drop_shard(shard_id)
            self._m_rerouted.inc()
        self._m_workers.set(len(self.backends))

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Adopt the pool's workers, bind the front port, start beating."""
        if self.pool is not None:
            for shard_id, (pid, port) in sorted(self.pool.running().items()):
                self.add_backend(shard_id, self.config.host, port, pid)
        if self.directory is None and self.backends:
            pass  # add_backend built it
        if self.backends:
            await self._adopt_leases()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.router_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        _LOG.info(
            "cluster router on %s:%d fronting %d worker(s), policy=%s, "
            "cap=%g",
            self.config.host,
            self.port,
            len(self.backends),
            self.config.route_policy,
            self.config.utilization_cap,
        )

    async def _adopt_leases(self) -> None:
        """Fold the workers' boot-time lease caps into the ledger."""
        for shard_id in sorted(self.backends):
            try:
                status, payload, _ = await self._backend_request(
                    self.backends[shard_id], "GET", "/v1/lease", None
                )
            except OSError:
                continue
            if status != 200:
                continue
            reported = payload.get("utilization_cap") or 0.0
            granted = self.ledger.grant(shard_id, reported)
            self.ledger.acknowledge(shard_id, reported)
            self.backends[shard_id].acked_cap = float(reported)
            if granted < reported:
                # The worker booted with more than the ledger can
                # cover (misconfiguration); shrink it immediately.
                await self._push_lease(shard_id, granted)
        self._m_granted.set(self.ledger.granted_total())

    async def drain_and_stop(self) -> None:
        """Stop the front, then drain the pool (if we own one)."""
        self._draining = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for backend in self.backends.values():
            backend.close()
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.drain
            )
        _LOG.info("cluster router stopped")

    async def serve_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain and return."""
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
        await self.drain_and_stop()

    # -- heartbeat: supervision + budget reconciliation ----------------------

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat_s)
            try:
                await self.heartbeat()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the beat must keep beating
                _LOG.warning("heartbeat failed", exc_info=True)

    async def heartbeat(self) -> None:
        """One supervision + reconciliation round (tests call directly)."""
        if self.pool is not None:
            for event in self.pool.poll():
                kind, shard_id = event[0], event[1]
                if kind == "died":
                    # Confirmed dead: now — and only now — the lease is
                    # safe to reclaim (the admitted state died with the
                    # process).
                    self._m_deaths.inc()
                    self._drop_backend(shard_id)
                    self.ledger.reclaim(shard_id)
                elif kind == "started":
                    pid, port = self.pool.running()[shard_id]
                    self.add_backend(shard_id, self.config.host, port, pid)
                    self._m_restarts.inc()
        await self.reconcile_leases()

    async def reconcile_leases(self) -> None:
        """Push an even budget split to the live workers."""
        live = sorted(self.backends)
        if not live:
            return
        targets = self.ledger.split_evenly(live)
        for shard_id, target in targets.items():
            lease = self.ledger.lease_of(shard_id)
            backend = self.backends.get(shard_id)
            if (
                lease is not None
                and lease.settled
                and lease.granted == target
                and backend is not None
                and backend.acked_cap == target
            ):
                continue  # the worker itself acknowledged this split
            await self._push_lease(shard_id, target)
        self._m_granted.set(self.ledger.granted_total())

    async def _push_lease(self, shard_id: str, target: float) -> None:
        backend = self.backends.get(shard_id)
        if backend is None:
            return
        try:
            status, payload, _ = await self._backend_request(
                backend, "POST", "/v1/lease", {"utilization_cap": target}
            )
        except OSError:
            return  # unreachable: the lease stays charged, retried next beat
        if status == 200:
            acked = payload.get("utilization_cap")
            if acked is not None:
                backend.acked_cap = float(acked)
                self.ledger.acknowledge(shard_id, float(acked))

    # -- backend I/O ---------------------------------------------------------

    async def _backend_request(
        self, backend: _Backend, method: str, path: str, body: dict | None
    ):
        """One request over a pooled backend connection.

        Returns ``(status, payload_or_bytes, content_type)``; raises
        ``OSError`` / ``ConnectionError`` when the backend is
        unreachable or hangs up mid-exchange (callers decide whether
        that means a retry, a rebalance, or a 502).
        """
        payload = dump_body(body) if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {backend.host}:{backend.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        reader, writer = await backend.acquire()
        try:
            writer.write(head + payload)
            await writer.drain()
            status_line = await reader.readline()
            if not status_line:
                raise ConnectionError("backend closed the connection")
            parts = status_line.decode("latin-1").split(" ", 2)
            if len(parts) < 2:
                raise ConnectionError(
                    f"malformed backend status line: {status_line!r}"
                )
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            raw = await reader.readexactly(length) if length else b""
        except BaseException:
            writer.close()
            raise
        backend.release(reader, writer)
        content_type = headers.get("content-type", "application/json")
        if content_type.startswith("application/json"):
            return status, (json.loads(raw) if raw else {}), content_type
        return status, raw, content_type

    # -- front: serving clients ----------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                path, _, query = target.partition("?")
                try:
                    status, payload, extra = await self._route(
                        method, path, query, body
                    )
                except ServiceError as exc:
                    status, payload, extra = (
                        400,
                        {"error": "ServiceError", "detail": str(exc)},
                        [],
                    )
                except Exception as exc:  # noqa: BLE001 - keep serving
                    self._m_errors.inc()
                    _LOG.warning(
                        "router error on %s %s: %s",
                        method,
                        path,
                        exc,
                        exc_info=True,
                    )
                    status, payload, extra = (
                        500,
                        {"error": "InternalError", "detail": str(exc)},
                        [],
                    )
                self._m_requests.inc()
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except (asyncio.LimitOverrunError, ConnectionError, OSError):
            return None
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split(" ")
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(request_line, None)
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", None)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self, writer, status, payload, extra_headers, keep_alive
    ) -> None:
        if isinstance(payload, tuple):  # (content_type, bytes) raw body
            content_type, body = payload
        else:
            content_type = "application/json"
            body = dump_body(payload)
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in extra_headers:
            lines.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    async def _route(self, method, path, query, body):
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, await self._fleet_healthz(), []
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return await self._fleet_metrics(query)
        if path == "/v1/breakdown":
            if method != "GET":
                return self._method_not_allowed("GET")
            return await self._fleet_breakdown()
        if path in ("/v1/check", "/v1/admit"):
            if method != "POST":
                return self._method_not_allowed("POST")
            return await self._forward_stream_op(path, body)
        if path == "/v1/release":
            if method != "POST":
                return self._method_not_allowed("POST")
            return await self._forward_release(body)
        return (
            404,
            {
                "error": "NotFound",
                "detail": (
                    f"no such endpoint: {path} (per-worker endpoints like "
                    "/v1/traces are served by the shards directly)"
                ),
            },
            [],
        )

    # -- data plane ----------------------------------------------------------

    def _no_backend_response(self):
        return (
            503,
            {
                "error": "NoWorkers",
                "detail": "no live cluster workers to route to",
            },
            [("Retry-After", "1")],
        )

    async def _forward_stream_op(self, path, body):
        """Route one check/admit, retrying around dead workers."""
        if self._draining:
            return self._draining_response()
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return (
                400,
                {
                    "error": "ServiceError",
                    "detail": f"request body is not valid JSON: {exc}",
                },
                [],
            )
        if not isinstance(parsed, dict):
            return (
                400,
                {
                    "error": "ServiceError",
                    "detail": "request body must be a JSON object",
                },
                [],
            )
        period_s = parsed.get("period_s")
        payload_bits = parsed.get("payload_bits")
        attempts = len(self.backends) + 1
        for _ in range(attempts):
            if not self.backends or self.directory is None:
                return self._no_backend_response()
            if isinstance(period_s, (int, float)) and isinstance(
                payload_bits, (int, float)
            ):
                shard_id = self.directory.route_stream(
                    float(period_s), float(payload_bits)
                )
            else:
                # Malformed body: any worker will produce the right 400.
                shard_id = sorted(self.backends)[0]
            backend = self.backends.get(shard_id)
            if backend is None:
                # Ring and backend set disagree transiently; rebalance.
                self._drop_backend(shard_id)
                continue
            self.directory.loads[shard_id] = (
                self.directory.loads.get(shard_id, 0) + 1
            )
            try:
                status, payload, _ = await self._backend_request(
                    backend, "POST", path, parsed
                )
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                self._m_retries.inc()
                self._drop_backend(shard_id)
                continue
            finally:
                if shard_id in self.directory.loads:
                    self.directory.loads[shard_id] -= 1
            if (
                status == 503
                and isinstance(payload, dict)
                and payload.get("error") == "Draining"
            ):
                # Graceful drain announced over HTTP: retract the worker
                # from the ring exactly as if its socket had died (the
                # lease stays charged until the supervisor confirms the
                # exit) and retry the op on a survivor.
                self._m_retries.inc()
                self._drop_backend(shard_id)
                continue
            if (
                path == "/v1/admit"
                and status == 200
                and isinstance(payload, dict)
                and payload.get("admitted")
                and payload.get("stream_id") is not None
            ):
                fleet_id = self.directory.register_admit(
                    shard_id, payload["stream_id"]
                )
                payload = dict(payload, stream_id=fleet_id)
            return status, payload, [("X-Shard-Id", shard_id)]
        return (
            502,
            {
                "error": "BadGateway",
                "detail": "every candidate worker failed mid-request",
            },
            [],
        )

    async def _forward_release(self, body):
        """Route one release by the fleet stream-id directory."""
        if self._draining:
            return self._draining_response()
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return (
                400,
                {
                    "error": "ServiceError",
                    "detail": f"request body is not valid JSON: {exc}",
                },
                [],
            )
        fleet_id = parsed.get("stream_id") if isinstance(parsed, dict) else None
        idempotent = (
            parsed.get("idempotent", False)
            if isinstance(parsed, dict)
            else False
        )
        if not isinstance(fleet_id, int) or isinstance(fleet_id, bool):
            return (
                400,
                {
                    "error": "ServiceError",
                    "detail": (
                        f"field 'stream_id' must be an integer, got "
                        f"{fleet_id!r}"
                    ),
                },
                [],
            )
        owner = (
            self.directory.owner_of(fleet_id)
            if self.directory is not None
            else None
        )
        if owner is None:
            return self._unknown_stream_response(fleet_id, idempotent)
        shard_id, local_id = owner
        backend = self.backends.get(shard_id)
        if backend is None:
            return self._unknown_stream_response(fleet_id, idempotent)
        try:
            status, payload, _ = await self._backend_request(
                backend,
                "POST",
                "/v1/release",
                {"stream_id": local_id, "idempotent": bool(idempotent)},
            )
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            # The owner died with the stream: the release's goal state
            # (stream gone) holds, so answer as for an unknown stream.
            self._m_retries.inc()
            self._drop_backend(shard_id)
            self.directory.forget(fleet_id)
            return self._unknown_stream_response(fleet_id, idempotent)
        if status == 200 and isinstance(payload, dict):
            if payload.get("released"):
                self.directory.forget(fleet_id)
            payload = dict(payload, stream_id=fleet_id)
        return status, payload, [("X-Shard-Id", shard_id)]

    @staticmethod
    def _unknown_stream_response(fleet_id: int, idempotent: bool):
        if idempotent:
            return (
                200,
                {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "released": False,
                    "stream_id": fleet_id,
                },
                [],
            )
        return (
            404,
            {
                "error": "AdmissionError",
                "detail": (
                    f"unknown or already-released stream id: {fleet_id!r}"
                ),
            },
            [],
        )

    # -- observability plane -------------------------------------------------

    async def _shard_fanout(self, method: str, path: str):
        """One request to every live backend; ``{shard: (status, payload)}``."""
        results: dict[str, tuple] = {}

        async def fetch(shard_id: str, backend: _Backend):
            try:
                status, payload, _ = await self._backend_request(
                    backend, method, path, None
                )
                results[shard_id] = (status, payload)
            except (OSError, ConnectionError, asyncio.IncompleteReadError):
                results[shard_id] = (None, None)

        await asyncio.gather(
            *(
                fetch(shard_id, backend)
                for shard_id, backend in sorted(self.backends.items())
            )
        )
        return results

    async def _fleet_healthz(self) -> dict:
        shards = await self._shard_fanout("GET", "/healthz")
        shard_docs: dict[str, dict] = {}
        admitted = 0
        utilization = 0.0
        reachable = 0
        for shard_id, (status, payload) in shards.items():
            if status == 200 and isinstance(payload, dict):
                shard_docs[shard_id] = payload
                admitted += payload.get("admitted", 0)
                utilization += payload.get("utilization", 0.0)
                reachable += 1
            else:
                shard_docs[shard_id] = {"status": "unreachable"}
        leases = self.ledger.leases
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "status": (
                "draining"
                if self._draining
                else ("ok" if reachable == len(shards) and shards else "degraded")
            ),
            "workers": len(shards),
            "reachable": reachable,
            "fleet": {
                "admitted": admitted,
                "utilization": utilization,
                "utilization_cap": self.ledger.cap,
                "lease_granted_total": self.ledger.granted_total(),
                "budget_sound": self.ledger.sound(),
                "route_policy": self.config.route_policy,
            },
            "leases": {
                shard: {"granted": lease.granted, "target": lease.target}
                for shard, lease in sorted(leases.items())
            },
            "shards": shard_docs,
        }

    async def _fleet_metrics(self, query: str):
        from urllib.parse import parse_qs

        params = parse_qs(query)
        fmt = params.get("format", ["json"])[-1]
        if fmt == "prometheus":
            shards = await self._shard_fanout(
                "GET", "/metrics?format=prometheus"
            )
            chunks: list[str] = []
            for shard_id, (status, payload) in shards.items():
                if status == 200 and isinstance(payload, (bytes, bytearray)):
                    chunks.append(payload.decode("utf-8"))
            chunks.append(
                prometheus.render(
                    metrics.snapshot(prefix="cluster.router."),
                    labels={"shard_id": "router"},
                )
            )
            text = _dedupe_family_headers("".join(chunks))
            return (
                200,
                (prometheus.CONTENT_TYPE, text.encode("utf-8")),
                [],
            )
        if fmt != "json":
            return (
                400,
                {
                    "error": "BadFormat",
                    "detail": (
                        f"unknown metrics format {fmt!r}; "
                        "expected 'json' or 'prometheus'"
                    ),
                },
                [],
            )
        shards = await self._shard_fanout("GET", "/metrics")
        fleet = MetricsRegistry()
        shard_snaps: dict[str, dict] = {}
        for shard_id, (status, payload) in shards.items():
            if status == 200 and isinstance(payload, dict):
                snap = payload.get("metrics", {})
                shard_snaps[shard_id] = snap
                fleet.merge(snap)
        return (
            200,
            {
                "schema_version": WIRE_SCHEMA_VERSION,
                "fleet": fleet.snapshot(),
                "router": metrics.snapshot(prefix="cluster.router."),
                "shards": shard_snaps,
            },
            [],
        )

    async def _fleet_breakdown(self):
        shards = await self._shard_fanout("GET", "/v1/breakdown")
        shard_docs: dict[str, dict] = {}
        utilization = 0.0
        streams = 0
        for shard_id, (status, payload) in shards.items():
            if status == 200 and isinstance(payload, dict):
                shard_docs[shard_id] = payload
                utilization += payload.get("utilization", 0.0)
                streams += payload.get("streams", 0)
        return (
            200,
            {
                "schema_version": WIRE_SCHEMA_VERSION,
                "streams": streams,
                "utilization": utilization,
                "utilization_cap": self.ledger.cap,
                "shards": shard_docs,
            },
            [],
        )

    @staticmethod
    def _method_not_allowed(allowed: str):
        return (
            405,
            {"error": "MethodNotAllowed", "detail": f"use {allowed}"},
            [("Allow", allowed)],
        )

    @staticmethod
    def _draining_response():
        return (
            503,
            {
                "error": "Draining",
                "detail": "cluster is draining; not accepting requests",
            },
            [("Retry-After", "1")],
        )


def _dedupe_family_headers(text: str) -> str:
    """Keep only the first ``# HELP`` / ``# TYPE`` line per family.

    Per-shard expositions repeat the family headers; samples differ by
    their ``shard_id`` label, but a valid exposition declares each
    family once.
    """
    seen: set = set()
    out: list[str] = []
    for line in text.splitlines():
        if line.startswith(("# HELP ", "# TYPE ")):
            parts = line.split(" ", 3)
            key = (parts[1], parts[2] if len(parts) > 2 else "")
            if key in seen:
                continue
            seen.add(key)
        out.append(line)
    return "\n".join(out) + "\n" if out else ""
