"""Consistent-hash ring and the router's shard-selection policies.

The default routing policy hashes a request's *stream key* onto a ring
of virtual nodes.  Consistent hashing buys two things the admission
tier actually needs:

* **cache affinity** — a repeat candidate (same period/payload against
  the same shard population) lands on the same worker, so that worker's
  content-addressed verdict cache answers it without recomputing;
* **minimal disruption** — removing a dead shard moves only the keys it
  owned (to their next virtual node clockwise); every other key keeps
  its assignment, so a worker death invalidates one shard's cache
  affinity, not the fleet's.  :meth:`HashRing.without` is the rebalance
  the router applies while retrying around a death, and the
  only-owned-keys-move property is pinned by the ``cluster_shard_equiv``
  fuzz check.

Hashing is SHA-256 over UTF-8 text — deterministic across processes and
interpreter runs (``PYTHONHASHSEED`` does not reach it), which the
router, the load generator's direct-to-shard mode, and the differential
fuzz harness all rely on to agree about placement without talking.

Alternate policies (``random``, ``least-loaded``, ``power-of-two``)
trade cache affinity for load spreading; :func:`choose_shard` is the
single selection function the router calls for all four.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ConfigurationError

__all__ = ["ROUTE_POLICIES", "HashRing", "stream_key", "choose_shard"]

#: Routing policies the cluster router accepts.
ROUTE_POLICIES = ("hash", "random", "least-loaded", "power-of-two")


def _hash64(text: str) -> int:
    """The first 8 bytes of SHA-256 as an unsigned 64-bit ring position."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stream_key(period_s: float, payload_bits: float) -> str:
    """The routing key of one stream candidate.

    ``repr`` of the floats keeps distinct values distinct (repr is
    shortest-round-trip in Python 3) and identical values identical
    across processes — the property consistent placement needs.
    """
    return f"{period_s!r}/{payload_bits!r}"


class HashRing:
    """A consistent-hash ring over shard ids.

    Each shard contributes ``replicas`` virtual nodes.  Lookup walks
    clockwise from the key's position to the next virtual node.  The
    ring is immutable; :meth:`without` / :meth:`with_shard` return new
    rings (the router swaps the whole ring atomically on membership
    change, so a concurrent lookup never sees a half-built table).
    """

    def __init__(self, shards, *, replicas: int = 64):
        shard_list = list(dict.fromkeys(shards))  # de-dup, keep order
        if not shard_list:
            raise ConfigurationError("HashRing needs at least one shard")
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be at least 1, got {replicas!r}"
            )
        self._shards = tuple(shard_list)
        self._replicas = replicas
        points: list[tuple[int, str]] = []
        for shard in shard_list:
            for replica in range(replicas):
                points.append((_hash64(f"{shard}#{replica}"), shard))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @property
    def shards(self) -> tuple:
        """The shard ids on the ring, in construction order."""
        return self._shards

    @property
    def replicas(self) -> int:
        """Virtual nodes per shard."""
        return self._replicas

    def lookup(self, key: str) -> str:
        """The shard owning ``key`` (first virtual node clockwise)."""
        position = _hash64(key)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap: the ring is circular
        return self._owners[index]

    def without(self, shard: str) -> "HashRing":
        """The ring with ``shard`` removed (the death rebalance).

        Only keys the dead shard owned move; everything else keeps its
        virtual node and therefore its owner.
        """
        survivors = [s for s in self._shards if s != shard]
        if len(survivors) == len(self._shards):
            return self
        return HashRing(survivors, replicas=self._replicas)

    def with_shard(self, shard: str) -> "HashRing":
        """The ring with ``shard`` added (a restarted worker rejoining)."""
        if shard in self._shards:
            return self
        return HashRing([*self._shards, shard], replicas=self._replicas)


def choose_shard(
    policy: str,
    ring: HashRing,
    key: str,
    loads: dict,
    rng,
) -> str:
    """One shard id under the given routing policy.

    ``loads`` maps shard id to its current router-side in-flight count
    (used by ``least-loaded`` and ``power-of-two``); ``rng`` is the
    router's seeded :class:`random.Random` (used by ``random`` and
    ``power-of-two``).  ``hash`` ignores both and is the only policy
    that preserves per-key placement (and so cache affinity and the
    shard-equivalence pin); ties break by shard order for determinism.
    """
    shards = ring.shards
    if policy == "hash":
        return ring.lookup(key)
    if policy == "random":
        return shards[rng.randrange(len(shards))]
    if policy == "least-loaded":
        return min(shards, key=lambda s: (loads.get(s, 0), shards.index(s)))
    if policy == "power-of-two":
        if len(shards) == 1:
            return shards[0]
        first, second = rng.sample(range(len(shards)), 2)
        a, b = shards[first], shards[second]
        if loads.get(a, 0) <= loads.get(b, 0):
            return a
        return b
    raise ConfigurationError(
        f"unknown routing policy {policy!r}; expected one of {ROUTE_POLICIES}"
    )
