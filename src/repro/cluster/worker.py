"""Cluster worker entry point: ``python -m repro.cluster.worker``.

One worker is the *unmodified* admission service — same server, same
batcher, same controller — plus three cluster obligations:

* **identity**: the config carries a ``shard_id``; the server stamps it
  into ``/healthz``, the Prometheus exposition labels, and an
  ``X-Shard-Id`` header on every response;
* **advertisement**: after binding its ephemeral port the worker writes
  ``<runtime_dir>/<shard_id>.port`` (atomic temp-file + rename, one
  line: ``<pid> <port>``).  The supervisor and router discover workers
  only through these files; a drain hook removes the file *before* the
  listener closes so routing stops the moment a drain begins;
* **budget**: the config's ``utilization_cap`` is the worker's initial
  lease (0.0 for a respawned worker — it admits nothing until the
  router's reconciler grants it budget through ``/v1/lease``).

The worker reads its :class:`~repro.service.protocol.ServiceConfig`
from a JSON file (``--config``) rather than a CLI flag per field: the
supervisor writes the file, and one opaque blob keeps the spawn
interface stable as the config grows.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile

from repro.obs.logging import get_logger, setup_logging
from repro.service.protocol import ServiceConfig
from repro.service.server import AdmissionServer

__all__ = ["run_worker", "main"]

_LOG = get_logger("repro.cluster.worker")


def port_file_path(runtime_dir: str, shard_id: str) -> str:
    """Where a shard advertises ``<pid> <port>``."""
    return os.path.join(runtime_dir, f"{shard_id}.port")


def write_port_file(runtime_dir: str, shard_id: str, port: int) -> str:
    """Atomically publish this worker's pid and bound port."""
    path = port_file_path(runtime_dir, shard_id)
    fd, tmp = tempfile.mkstemp(
        dir=runtime_dir, prefix=f".{shard_id}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()} {port}\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_port_file(runtime_dir: str, shard_id: str) -> tuple | None:
    """``(pid, port)`` from a shard's advertisement, or None."""
    try:
        with open(port_file_path(runtime_dir, shard_id)) as handle:
            text = handle.read().strip()
    except OSError:
        return None
    parts = text.split()
    if len(parts) != 2:
        return None
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        return None


async def run_worker(config: ServiceConfig, runtime_dir: str | None) -> None:
    """Serve one shard until SIGTERM/SIGINT, advertising its port."""
    server = AdmissionServer(config)
    await server.start()
    if runtime_dir is not None and config.shard_id is not None:
        path = write_port_file(runtime_dir, config.shard_id, server.port)

        def retract():
            try:
                os.unlink(path)
            except OSError:
                pass

        server.add_drain_hook(retract)
    _LOG.info(
        "cluster worker %s (pid %d) serving on port %d, lease cap %s",
        config.shard_id,
        os.getpid(),
        server.port,
        config.utilization_cap,
    )
    await server.serve_until_signalled()


def main(argv=None) -> int:
    """CLI entry point: parse args, run one worker until signalled."""
    parser = argparse.ArgumentParser(
        description="repro admission-cluster worker process"
    )
    parser.add_argument(
        "--config",
        required=True,
        help="path to a JSON file of ServiceConfig fields",
    )
    parser.add_argument(
        "--runtime-dir",
        default=None,
        help="directory for the port-advertisement file",
    )
    parser.add_argument("--log-level", default="warning")
    args = parser.parse_args(argv)
    setup_logging(level=args.log_level)
    with open(args.config) as handle:
        fields = json.load(handle)
    config = ServiceConfig(**fields)
    asyncio.run(run_worker(config, args.runtime_dir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
