"""End-to-end request tracing: spans, propagation, sinks (USAGE.md §16).

One served admission request crosses four components — the HTTP server,
the micro-batcher, the admission engine, and the cache tier — and a p99
regression is invisible in aggregate counters because each component
only sees its own slice.  This module gives every sampled request a
**trace**: a tree of timed spans with a shared ``trace_id``, annotated
with the facts that matter for triage (batch size, engine, cache
hits/misses, levels re-tested), collected in a ring buffer served at
``/v1/traces`` and optionally appended to a JSONL sink.

Design contract (same as :mod:`repro.obs.metrics`): **tracing never
changes results**.  Spans observe; they carry no state any decision
reads.  The ``admission_tracing_equiv`` fuzz property pins decisions
bit-identical with tracing off, sampled, or fully on.

Propagation has two legs:

* On one thread, the *current span* lives in a
  :class:`contextvars.ContextVar`; :func:`child_span` nests under it and
  is a near-free no-op when nothing is being traced (one context-var
  read, no object allocation).
* Across the batcher's thread hop, context vars do not follow
  ``run_in_executor``, so the server hands its request span to
  :meth:`~repro.service.batcher.MicroBatcher.submit` explicitly and the
  worker installs a :class:`SpanGroup` — one batch may serve many
  traces, and the engine/cache spans it produces are *shared nodes*
  attached to every sampled member (same ``span_id`` in each tree, so a
  reader can tell amortized work from per-request work).

Sampling is deterministic systematic sampling (an accumulator, not a
RNG): rate 0.5 traces every second request, 1.0 every request, 0.0 none.
Root spans whose duration exceeds ``slow_threshold_s`` are additionally
logged with their full span tree — the slow-request log.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque

from repro.errors import ConfigurationError
from repro.obs import logging as obslog
from repro.obs import metrics as _metrics

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "SpanGroup",
    "Tracer",
    "child_span",
    "current",
    "use",
    "release",
    "annotate",
    "add",
]

_LOG = obslog.get_logger("repro.obs.tracing")

#: Version tag on every serialized trace; bump on structural changes.
TRACE_SCHEMA_VERSION = 1

#: The active span (or :class:`SpanGroup`) on this thread/task.
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_span", default=None
)

#: Process-wide span-id allocator (unique per process; a shared fan-out
#: span keeps one id across every trace it appears in — that identity is
#: how a reader recognizes amortized batch work).
_SPAN_IDS = itertools.count(1)

_M_SAMPLED = _metrics.counter("trace.sampled")
_M_FINISHED = _metrics.counter("trace.finished")
_M_SLOW = _metrics.counter("trace.slow")


class Span:
    """One timed, attributed node of a trace tree.

    ``trace_id`` is set on root spans only; children identify through
    their tree position.  ``duration_s`` is filled by whoever owns the
    span's lifetime (:func:`child_span`, :meth:`Tracer.finish`, or the
    batcher for fan-out spans).
    """

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "start_ts",
        "duration_s",
        "attrs",
        "children",
        "_t0",
    )

    def __init__(self, name: str, attrs: dict | None = None, trace_id=None):
        self.name = name
        self.span_id = next(_SPAN_IDS)
        self.trace_id = trace_id
        self.start_ts = time.time()
        self._t0 = time.perf_counter()
        self.duration_s = 0.0
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []

    def child(self, name: str, **attrs) -> "Span":
        """Create and attach a child span (duration set by the caller)."""
        span = Span(name, attrs)
        self.children.append(span)
        return span

    def add(self, counts: dict) -> None:
        """Accumulate numeric attributes (cache hit tallies and the like)."""
        attrs = self.attrs
        for key, value in counts.items():
            attrs[key] = attrs.get(key, 0) + value

    def to_dict(self) -> dict:
        """The span subtree as plain JSON-serializable data."""
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "start_ts": self.start_ts,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }
        if self.children:
            out["spans"] = [child.to_dict() for child in self.children]
        return out

    def trace_dict(self) -> dict:
        """Root-span form: the whole trace with its envelope."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            **self.to_dict(),
        }


class SpanGroup:
    """Fan-out target: one batch execution serving many traces.

    A child created on the group is a **single shared span** appended to
    every member's children — honest about amortization (each trace sees
    the same node with the same timing) without per-member duplication
    of the engine/cache work records.
    """

    __slots__ = ("members",)

    def __init__(self, members: list[Span]):
        self.members = members

    def child(self, name: str, **attrs) -> Span:
        """One shared child span attached to every member."""
        span = Span(name, attrs)
        for member in self.members:
            member.children.append(span)
        return span

    def add(self, counts: dict) -> None:
        """Accumulate numeric attributes on every member."""
        for member in self.members:
            member.add(counts)


class Tracer:
    """Sampling, the trace ring buffer, and the sinks.

    Args:
        sample_rate: fraction of requests traced, in ``[0, 1]``;
            systematic (deterministic), not random.
        buffer_size: how many finished traces ``/v1/traces`` retains.
        jsonl_path: when set, every finished trace is appended to this
            file as one JSON line.
        slow_threshold_s: root spans slower than this are logged with
            their full span tree; ``0`` disables the slow-request log.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        *,
        buffer_size: int = 256,
        jsonl_path: str | None = None,
        slow_threshold_s: float = 0.0,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be within [0, 1], got {sample_rate!r}"
            )
        if buffer_size < 1:
            raise ConfigurationError(
                f"buffer_size must be at least 1, got {buffer_size!r}"
            )
        if slow_threshold_s < 0:
            raise ConfigurationError(
                f"slow_threshold_s must be non-negative, got "
                f"{slow_threshold_s!r}"
            )
        self.sample_rate = float(sample_rate)
        self.slow_threshold_s = float(slow_threshold_s)
        self.jsonl_path = jsonl_path
        self._jsonl_handle = None
        self._buffer: deque = deque(maxlen=int(buffer_size))
        self._lock = threading.Lock()
        self._acc = 0.0
        self._ids = itertools.count(1)
        # Random prefix so trace ids from different processes (or two
        # servers in one process) cannot collide in a shared log.
        self._prefix = os.urandom(4).hex()

    def begin(self, name: str, **attrs) -> Span | None:
        """Start a root span, or ``None`` when this request is unsampled."""
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        with self._lock:
            self._acc += rate
            if self._acc < 1.0:
                return None
            self._acc -= 1.0
            trace_id = f"{self._prefix}{next(self._ids):010x}"
        _M_SAMPLED.inc()
        return Span(name, attrs, trace_id=trace_id)

    def finish(self, span: Span | None, duration_s: float | None = None) -> None:
        """Complete a root span: time it, buffer it, feed the sinks."""
        if span is None:
            return
        span.duration_s = (
            duration_s
            if duration_s is not None
            else time.perf_counter() - span._t0
        )
        _M_FINISHED.inc()
        document = None
        if self.jsonl_path is not None:
            document = span.trace_dict()
        with self._lock:
            self._buffer.append(span)
            if document is not None:
                if self._jsonl_handle is None:
                    self._jsonl_handle = open(
                        self.jsonl_path, "a", encoding="utf-8"
                    )
                json.dump(document, self._jsonl_handle, separators=(",", ":"))
                self._jsonl_handle.write("\n")
                self._jsonl_handle.flush()
        if self.slow_threshold_s and span.duration_s > self.slow_threshold_s:
            _M_SLOW.inc()
            _LOG.warning(
                "slow request %s: %.1f ms > %.1f ms threshold (%s)",
                span.trace_id,
                span.duration_s * 1e3,
                self.slow_threshold_s * 1e3,
                span.name,
                extra={
                    "trace_id": span.trace_id,
                    "trace": span.trace_dict(),
                },
            )

    def recent(self, limit: int | None = None) -> list[dict]:
        """The newest finished traces, oldest first, as plain dicts."""
        with self._lock:
            spans = list(self._buffer)
        if limit is not None and limit > 0:
            spans = spans[-limit:]
        return [span.trace_dict() for span in spans]

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        with self._lock:
            if self._jsonl_handle is not None:
                self._jsonl_handle.close()
                self._jsonl_handle = None


# -- context propagation --------------------------------------------------------


def current() -> Span | SpanGroup | None:
    """The span (or fan-out group) active on this thread/task."""
    return _CURRENT.get()


def use(span: Span | SpanGroup | None):
    """Install ``span`` as the current one; returns the reset token."""
    return _CURRENT.set(span)


def release(token) -> None:
    """Undo a :func:`use`."""
    _CURRENT.reset(token)


class _NullSpanContext:
    """The no-trace fast path: nothing is allocated, nothing is timed."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager around one live child span."""

    __slots__ = ("_span", "_token")

    def __init__(self, parent, name: str, attrs: dict):
        self._span = parent.child(name, **attrs)

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, *exc_info):
        span = self._span
        span.duration_s = time.perf_counter() - span._t0
        _CURRENT.reset(self._token)
        return False


def child_span(name: str, **attrs):
    """A timed child of the current span; a free no-op when untraced.

    Usable around any unit of work::

        with tracing.child_span("exact", candidates=4):
            ...

    Under a :class:`SpanGroup` (the batch worker) the child is a shared
    node attached to every member trace.
    """
    parent = _CURRENT.get()
    if parent is None:
        return _NULL_CONTEXT
    return _SpanContext(parent, name, attrs)


def annotate(**attrs) -> None:
    """Set attributes on the current span (no-op when untraced)."""
    target = _CURRENT.get()
    if target is None:
        return
    if isinstance(target, SpanGroup):
        for member in target.members:
            member.attrs.update(attrs)
    else:
        target.attrs.update(attrs)


def add(**counts) -> None:
    """Accumulate numeric attributes on the current span.

    The cache tier calls this once per lookup — ``add(cache_hits=1)`` —
    so a span wrapping many lookups ends up with honest totals without
    one span per lookup.
    """
    target = _CURRENT.get()
    if target is None:
        return
    target.add(counts)
