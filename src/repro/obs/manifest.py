"""Run manifests: every experiment artifact carries its own provenance.

A *manifest* is a small JSON file written next to an experiment's output
(CSV, report) capturing everything needed to regenerate it exactly:

* the command and parsed CLI arguments,
* the full :class:`~repro.experiments.config.PaperParameters` (seed
  included — the Monte Carlo is deterministic given these),
* the code version (git SHA + dirty flag) and the Python/numpy versions,
* wall time, and
* the final metrics and timing-span snapshots of the run, so the
  manifest doubles as the run's performance record (exact-test cache hit
  rates, probe counts, per-cell wall times).

The schema is versioned (:data:`MANIFEST_SCHEMA_VERSION`); consumers
should reject manifests with a newer major version rather than guess.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import platform
import subprocess
import sys

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "git_revision",
    "describe_parameters",
    "build_manifest",
    "write_manifest",
]

#: Bumped whenever a field is renamed or re-typed (additions are free).
MANIFEST_SCHEMA_VERSION = 1


def git_revision(cwd: str | None = None) -> dict:
    """The current git SHA and dirty flag, or nulls outside a checkout."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        dirty = bool(
            subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
        )
        return {"sha": sha, "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def describe_parameters(parameters: object) -> dict:
    """A JSON-safe description of a parameter object.

    Dataclasses serialize their *init* fields only (derived caches and
    other non-init state are implementation detail, not provenance);
    anything else falls back to ``repr``.
    """
    if dataclasses.is_dataclass(parameters) and not isinstance(parameters, type):
        return {
            f.name: getattr(parameters, f.name)
            for f in dataclasses.fields(parameters)
            if f.init
        }
    return {"repr": repr(parameters)}


def build_manifest(
    command: str,
    cli_args: dict | None = None,
    parameters: object | None = None,
    wall_time_s: float | None = None,
    metrics: dict | None = None,
    spans: dict | None = None,
    artifacts: list | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble a manifest dict (see the module docstring for the fields).

    Args:
        command: what was run (e.g. ``"figure1"`` or a full argv string).
        cli_args: parsed arguments, JSON-safe values only.
        parameters: the parameter object driving the run; dataclasses are
            expanded field by field (the seed rides along here).
        wall_time_s: total wall time of the invocation.
        metrics: a :func:`repro.obs.metrics.snapshot`.
        spans: a :func:`repro.obs.timing.snapshot`.
        artifacts: paths of files the run wrote (CSV, reports).
        extra: free-form additions (kept under their own key).
    """
    import numpy

    manifest: dict = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "command": command,
        "cli_args": cli_args or {},
        "parameters": (
            describe_parameters(parameters) if parameters is not None else None
        ),
        "git": git_revision(),
        "environment": {
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
        "wall_time_s": wall_time_s,
        "metrics": metrics or {},
        "spans": spans or {},
        "artifacts": artifacts or [],
    }
    if extra:
        manifest["extra"] = extra
    return manifest


def write_manifest(path: str, manifest: dict) -> str:
    """Write ``manifest`` to ``path`` as indented JSON; returns ``path``."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
