"""Summarize pytest-benchmark JSON into a compact, versioned canary.

``make bench-quick`` tracks the performance trajectory of the library
across PRs in ``BENCH_figure1.json``.  The raw pytest-benchmark output is
tens of thousands of lines — every individual sample of every round plus
the host's full CPU flag list — which swamps diffs and buries the signal.
This module reduces it to what trajectory comparison needs:

* per-benchmark summary statistics (mean / stddev / quantiles / ops /
  rounds) with the raw ``data`` arrays dropped,
* a trimmed machine fingerprint (enough to tell runs on different
  hardware apart, nothing more),
* any ``extra_info`` the benchmark attached (e.g. timing-span snapshots
  from the observability layer), and
* an explicit ``schema_version`` so future format changes stay
  detectable instead of silently breaking comparisons.

CLI::

    python -m repro.obs.benchjson RAW.json [OUT.json]

With one path, the file is summarized in place.

The summarized document shape is also the *native* format for canaries
that never pass through pytest-benchmark: the service load generator
(``BENCH_service.json``), the admission canary (``BENCH_admission.json``),
the loss sweep (``BENCH_loss.json``), and the columnar scale bench
(``BENCH_scale.json`` via :mod:`repro.experiments.scale_bench`) emit this
schema directly — ``schema_version`` + ``machine`` (with :func:`cpu_info`)
+ ``benchmarks[]`` rows of ``{group, name, fullname, params, extra_info,
stats}`` — so ``tools/bench_trend.py`` can treat every ``BENCH_*.json``
uniformly.
"""

from __future__ import annotations

import json
import os
import sys

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "cpu_info",
    "summarize_benchmark_json",
    "main",
]

#: Version of the summarized canary format (raw pytest-benchmark has none).
BENCH_SCHEMA_VERSION = 2

#: Per-benchmark statistics worth tracking across PRs.
_STAT_FIELDS = (
    "min",
    "max",
    "mean",
    "stddev",
    "median",
    "iqr",
    "q1",
    "q3",
    "ops",
    "total",
    "rounds",
    "iterations",
)

#: Machine fingerprint fields worth keeping (of ~100 in the raw output).
_MACHINE_FIELDS = ("node", "machine", "system", "release", "python_version")


def cpu_info(arch: str | None = None) -> dict:
    """``{"brand", "count", "arch"}`` for the canary machine block.

    pytest-benchmark fills these from ``py-cpuinfo`` when it is
    installed; without it (and in the hand-built loadgen documents) the
    block used to come out all-``null``, which made the verify guard's
    same-hardware comparison vacuous.  ``count`` comes from
    :func:`os.cpu_count`; ``brand`` is a best-effort read of the first
    ``model name`` line in ``/proc/cpuinfo`` (absent on non-Linux hosts,
    in which case it stays ``None`` rather than guessing).
    """
    brand = None
    try:
        with open("/proc/cpuinfo", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    _, _, value = line.partition(":")
                    brand = value.strip() or None
                    break
    except OSError:
        pass
    return {"brand": brand, "count": os.cpu_count(), "arch": arch}


def summarize_benchmark_json(raw: dict) -> dict:
    """Reduce a raw pytest-benchmark document to the tracked summary.

    Idempotent: summarizing an already-summarized document returns it
    unchanged, so re-running ``make bench-quick`` post-processing is safe.
    """
    if raw.get("schema_version") == BENCH_SCHEMA_VERSION:
        return raw
    machine_info = raw.get("machine_info", {})
    machine = {k: machine_info.get(k) for k in _MACHINE_FIELDS}
    cpu = machine_info.get("cpu", {})
    if isinstance(cpu, dict):
        probed = cpu_info(arch=cpu.get("arch"))
        machine["cpu"] = {
            "brand": cpu.get("brand_raw") or probed["brand"],
            "count": cpu.get("count") or probed["count"],
            "arch": cpu.get("arch"),
        }
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "group": bench.get("group"),
                "name": bench.get("name"),
                "fullname": bench.get("fullname"),
                "params": bench.get("params"),
                "extra_info": bench.get("extra_info", {}),
                "stats": {k: stats.get(k) for k in _STAT_FIELDS},
            }
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": raw.get("datetime"),
        "pytest_benchmark_version": raw.get("version"),
        "commit_info": raw.get("commit_info"),
        "machine": machine,
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: summarize ``RAW.json`` into ``OUT.json``."""
    args = sys.argv[1:] if argv is None else list(argv)
    if not 1 <= len(args) <= 2:
        print(
            "usage: python -m repro.obs.benchjson RAW.json [OUT.json]",
            file=sys.stderr,
        )
        return 2
    raw_path = args[0]
    out_path = args[1] if len(args) == 2 else args[0]
    with open(raw_path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    summary = summarize_benchmark_json(raw)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
