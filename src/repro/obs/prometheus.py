"""Prometheus text-format exposition of metric snapshots.

:func:`render` turns a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
into the Prometheus text format (``text/plain; version=0.0.4``), which is
what the admission server's ``/metrics?format=prometheus`` serves:

* counters become ``<name>_total`` with ``# TYPE ... counter``;
* gauges map one to one;
* bucketed histograms become native Prometheus histograms —
  cumulative ``_bucket{le="..."}`` series (including ``+Inf``), ``_sum``
  and ``_count`` — with OpenMetrics-style **exemplars** appended to the
  bucket a slow observation landed in
  (``... # {trace_id="..."} <value>``), pointing straight at a concrete
  trace in ``/v1/traces``;
* unbucketed histograms (no quantile structure to expose) become
  ``summary`` ``_sum``/``_count`` pairs.

Metric names are sanitized (dots and dashes to underscores) and
namespaced (``repro_`` by default).  :func:`parse` is the matching
reader — enough of the text format to round-trip everything
:func:`render` emits, which is how the exposition is tested and how
``runner top`` could consume a foreign endpoint.
"""

from __future__ import annotations

import math
import re

from repro.errors import ConfigurationError

__all__ = ["CONTENT_TYPE", "render", "parse", "sanitize_name"]

#: The Content-Type the Prometheus text format is served under.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+#\s+\{(?P<exemplar_labels>[^}]*)\}\s+(?P<exemplar_value>\S+))?"
    r"\s*$"
)


def sanitize_name(name: str) -> str:
    """A metric name acceptable to Prometheus (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _help_line(name: str, source: str) -> str:
    return f"# HELP {name} repro metric {source}"


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_pairs(labels: dict | None) -> str:
    """The inner ``key="value",...`` text for a constant-label set."""
    if not labels:
        return ""
    return ",".join(
        f'{sanitize_name(str(key))}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )


def render(
    snapshot: dict,
    *,
    namespace: str = "repro",
    exemplars: bool = True,
    labels: dict | None = None,
) -> str:
    """One snapshot as Prometheus exposition text.

    ``snapshot`` is the plain-dict form produced by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; unknown metric
    types are a :class:`~repro.errors.ConfigurationError` (never skipped
    silently — a scraper that silently loses a family is a debugging
    trap).  ``exemplars=False`` renders strict Prometheus 0.0.4 text for
    consumers that reject the OpenMetrics exemplar suffix.  ``labels``
    attaches a constant label set to **every** sample (histogram buckets
    merge it with their ``le`` label) — the cluster router serves each
    shard's families with ``{shard_id="...",worker_pid="..."}`` so one
    scrape can break out per-shard rates.
    """
    lines: list[str] = []
    prefix = f"{namespace}_" if namespace else ""
    pairs = _label_pairs(labels)
    suffix = f"{{{pairs}}}" if pairs else ""
    for source_name in sorted(snapshot):
        data = snapshot[source_name]
        kind = data.get("type")
        base = sanitize_name(f"{prefix}{source_name}")
        if kind == "counter":
            name = f"{base}_total"
            lines.append(_help_line(name, source_name))
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{suffix} {_format_value(data['value'])}")
        elif kind == "gauge":
            lines.append(_help_line(base, source_name))
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base}{suffix} {_format_value(data['value'])}")
        elif kind == "histogram":
            buckets = data.get("buckets")
            if buckets:
                lines.extend(
                    _render_histogram(
                        base, source_name, data, buckets, exemplars, pairs
                    )
                )
            else:
                lines.append(_help_line(base, source_name))
                lines.append(f"# TYPE {base} summary")
                lines.append(
                    f"{base}_sum{suffix} {_format_value(data['total'])}"
                )
                lines.append(
                    f"{base}_count{suffix} {_format_value(data['count'])}"
                )
        else:
            raise ConfigurationError(
                f"cannot render metric {source_name!r} of unknown type "
                f"{kind!r}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram(
    base: str,
    source_name: str,
    data: dict,
    buckets: dict,
    exemplars: bool,
    pairs: str = "",
) -> list[str]:
    lines = [_help_line(base, source_name), f"# TYPE {base} histogram"]
    bounds = buckets["bounds"]
    counts = buckets["counts"]
    stored_exemplars = buckets.get("exemplars", {}) if exemplars else {}
    suffix = f"{{{pairs}}}" if pairs else ""
    lead = f"{pairs}," if pairs else ""
    cumulative = 0
    for index, bound in enumerate(bounds):
        cumulative += counts[index]
        line = (
            f'{base}_bucket{{{lead}le="{_format_value(bound)}"}} '
            f"{_format_value(cumulative)}"
        )
        exemplar = stored_exemplars.get(str(index))
        if exemplar is not None:
            trace_id, value = exemplar
            line += (
                f' # {{trace_id="{trace_id}"}} {_format_value(value)}'
            )
        lines.append(line)
    cumulative += counts[len(bounds)]
    line = f'{base}_bucket{{{lead}le="+Inf"}} {_format_value(cumulative)}'
    exemplar = stored_exemplars.get(str(len(bounds)))
    if exemplar is not None:
        trace_id, value = exemplar
        line += f' # {{trace_id="{trace_id}"}} {_format_value(value)}'
    lines.append(line)
    lines.append(f"{base}_sum{suffix} {_format_value(data['total'])}")
    lines.append(f"{base}_count{suffix} {_format_value(data['count'])}")
    return lines


def _parse_labels(raw: str | None) -> dict:
    labels: dict[str, str] = {}
    if not raw:
        return labels
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key.strip()] = value.strip().strip('"')
    return labels


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse(text: str) -> dict:
    """Read exposition text back into structured samples.

    Returns ``{family_name: {"type": str | None, "samples": [...]}}``
    where each sample is ``{"name", "labels", "value", "exemplar"}``
    (``exemplar`` is ``None`` or ``{"labels", "value"}``).  Families are
    keyed by the ``# TYPE`` name when present, else by the sample name —
    exactly enough structure to verify everything :func:`render` emits.
    """
    families: dict[str, dict] = {}
    typed: list[tuple[str, str]] = []

    def family_for(sample_name: str) -> dict:
        for type_name, _ in reversed(typed):
            if sample_name == type_name or sample_name.startswith(
                type_name + "_"
            ):
                return families[type_name]
        return families.setdefault(
            sample_name, {"type": None, "samples": []}
        )

    for line_number, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("# TYPE "):
            parts = stripped.split()
            if len(parts) != 4:
                raise ConfigurationError(
                    f"malformed TYPE line {line_number}: {line!r}"
                )
            _, _, name, metric_type = parts
            families.setdefault(name, {"type": None, "samples": []})
            families[name]["type"] = metric_type
            typed.append((name, metric_type))
            continue
        if stripped.startswith("#"):
            continue  # HELP and free comments
        match = _SAMPLE_LINE.match(stripped)
        if match is None:
            raise ConfigurationError(
                f"malformed sample line {line_number}: {line!r}"
            )
        exemplar = None
        if match.group("exemplar_value") is not None:
            exemplar = {
                "labels": _parse_labels(match.group("exemplar_labels")),
                "value": _parse_number(match.group("exemplar_value")),
            }
        family_for(match.group("name"))["samples"].append(
            {
                "name": match.group("name"),
                "labels": _parse_labels(match.group("labels")),
                "value": _parse_number(match.group("value")),
                "exemplar": exemplar,
            }
        )
    return families
