"""Structured logging: human-readable stderr + machine-readable JSONL.

One call configures the whole library::

    from repro.obs import logging as obslog
    obslog.setup_logging(level="info", json_path="run.jsonl")

* Human output goes to **stderr** through a conventional formatter, so
  experiment tables on stdout stay pipe-clean.
* When ``json_path`` is given, every record is *also* appended to that
  file as one JSON object per line (JSONL) — timestamp, level, logger,
  message, plus any structured fields passed via ``extra=`` — so a run's
  log is greppable by ``jq`` as easily as by eye.
* :func:`console` is the sanctioned replacement for bare ``print`` in
  experiment entry points: it writes to stdout unless :func:`set_quiet`
  was called, and mirrors the text into the JSONL sink (never stderr) so
  quiet runs still leave a complete machine-readable record.

Everything hangs off the ``"repro"`` logger namespace; the library never
touches the root logger, and without :func:`setup_logging` all library
logging stays silent (the stdlib default), preserving the output of
existing scripts byte for byte.
"""

from __future__ import annotations

import datetime
import io
import json
import logging
import os
import sys

__all__ = [
    "JsonlFormatter",
    "setup_logging",
    "teardown_logging",
    "get_logger",
    "console",
    "set_quiet",
    "is_quiet",
]

#: Name of the logger subtree used by the whole library.
ROOT_LOGGER_NAME = "repro"

#: Logger carrying :func:`console` output into the JSONL sink only.
CONSOLE_LOGGER_NAME = "repro.obs.console"

#: Attributes every LogRecord carries; anything else came in via
#: ``extra=`` and is emitted as a structured JSON field.
_STANDARD_RECORD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "x", None, None)
    ).keys()
) | {"message", "asctime", "taskName"}

_quiet = False
_handlers: list[logging.Handler] = []
_console_handlers: list[logging.Handler] = []


class JsonlFormatter(logging.Formatter):
    """Format each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        """Serialize ``record`` (and its ``extra`` fields) to one JSON line."""
        payload: dict = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key in _STANDARD_RECORD_ATTRS or key.startswith("_"):
                continue
            try:
                json.dumps(value)
                payload[key] = value
            except (TypeError, ValueError):
                payload[key] = repr(value)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


def setup_logging(
    level: str = "info",
    json_path: str | None = None,
    stream: "io.TextIOBase | None" = None,
    quiet: bool = False,
) -> logging.Logger:
    """Configure library logging; idempotent (reconfigures on re-call).

    Args:
        level: threshold name (``debug``/``info``/``warning``/``error``)
            for both the stderr handler and the JSONL sink.
        json_path: when given, append every record to this file as JSONL.
        stream: destination for human-readable output (default stderr).
        quiet: also suppress :func:`console` stdout output.

    Returns the configured ``"repro"`` logger.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    teardown_logging()
    set_quiet(quiet)

    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(numeric)
    human = logging.StreamHandler(stream if stream is not None else sys.stderr)
    human.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    logger.addHandler(human)
    _handlers.append(human)

    console_logger = logging.getLogger(CONSOLE_LOGGER_NAME)
    console_logger.setLevel(logging.INFO)
    console_logger.propagate = False  # never duplicated onto stderr

    if json_path is not None:
        parent = os.path.dirname(json_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        sink = logging.FileHandler(json_path, encoding="utf-8")
        sink.setFormatter(JsonlFormatter())
        logger.addHandler(sink)
        _handlers.append(sink)
        console_sink = logging.FileHandler(json_path, encoding="utf-8")
        console_sink.setFormatter(JsonlFormatter())
        console_logger.addHandler(console_sink)
        _console_handlers.append(console_sink)
    return logger


def teardown_logging() -> None:
    """Remove every handler installed by :func:`setup_logging`."""
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in _handlers:
        logger.removeHandler(handler)
        handler.close()
    _handlers.clear()
    console_logger = logging.getLogger(CONSOLE_LOGGER_NAME)
    for handler in _console_handlers:
        console_logger.removeHandler(handler)
        handler.close()
    _console_handlers.clear()
    set_quiet(False)


def get_logger(name: str) -> logging.Logger:
    """A logger under the library namespace: ``repro.<name>``."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def set_quiet(quiet: bool) -> None:
    """Suppress (or restore) :func:`console` stdout output."""
    global _quiet
    _quiet = bool(quiet)


def is_quiet() -> bool:
    """True when :func:`console` stdout output is suppressed."""
    return _quiet


def console(*parts: object, sep: str = " ") -> None:
    """Human-facing output: stdout unless quiet, mirrored to the JSONL sink.

    The drop-in replacement for bare ``print`` in experiment entry
    points — tables and summaries keep appearing on stdout for humans and
    pipelines, while ``--quiet`` runs still record them in the structured
    log (when one is configured).
    """
    text = sep.join(str(p) for p in parts)
    if not _quiet:
        print(text)
    console_logger = logging.getLogger(CONSOLE_LOGGER_NAME)
    if console_logger.handlers:
        console_logger.info(text)
