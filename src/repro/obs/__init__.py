"""Observability: structured logging, metrics, timing spans, manifests.

The shared instrumentation layer for the whole library.  Four small
modules with one design contract between them — *instrumentation never
changes results*:

* :mod:`repro.obs.logging` — human-readable stderr logging plus a JSONL
  sink, and the :func:`~repro.obs.logging.console` replacement for bare
  ``print`` in experiment entry points.
* :mod:`repro.obs.metrics` — a registry of counters / gauges /
  histograms wired into the hot paths (exact-test cache, lockstep
  bisection, Monte Carlo sampling, simulators); snapshots are picklable
  and mergeable across worker processes.
* :mod:`repro.obs.timing` — hierarchical wall-time spans over
  ``perf_counter``, aggregated by path (one path per grid cell in the
  experiment sweeps).
* :mod:`repro.obs.manifest` — run manifests: a JSON provenance record
  (seed, parameters, git SHA, environment, metrics, spans) written next
  to every experiment artifact.
* :mod:`repro.obs.benchjson` — the versioned summarizer behind the
  ``make bench-quick`` perf canary.
* :mod:`repro.obs.tracing` — per-request trace/span trees propagated
  across the serving path (server → batcher → engine → cache), with a
  ring buffer behind ``/v1/traces``, a JSONL sink, and a slow-request
  log.
* :mod:`repro.obs.prometheus` — Prometheus text exposition of metric
  snapshots (bucketed histograms with trace-id exemplars) behind
  ``/metrics?format=prometheus``.

Everything defaults to *on* because the cost is negligible by design
(updates are O(1) and happen per batch / per run, never per inner-loop
iteration); ``metrics.disable()`` and ``timing.disable()`` turn the layer
into strict no-ops for paranoid benchmarking.
"""

from __future__ import annotations

from repro.obs import logging, manifest, metrics, prometheus, timing, tracing
from repro.obs.logging import console, get_logger, setup_logging
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry, counter, gauge, histogram
from repro.obs.timing import SpanRecorder, span, timed
from repro.obs.tracing import Tracer

__all__ = [
    "logging",
    "manifest",
    "metrics",
    "prometheus",
    "timing",
    "tracing",
    "Tracer",
    "console",
    "get_logger",
    "setup_logging",
    "build_manifest",
    "write_manifest",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "SpanRecorder",
    "span",
    "timed",
]
