"""A lightweight in-process metrics registry: counters, gauges, histograms.

The hot paths of this library — the exact-test structure cache, the
lockstep batched bisection, the Monte Carlo sampler, the simulators — are
instrumented with named metrics so a run can report *what it did* (cache
hit rates, probe counts, degenerate workloads, token visits) alongside
what it computed.  Three design rules keep this safe to leave in
production code:

* **Metrics never feed back into results.**  Reading or writing a metric
  cannot change a computed value; every experiment stays bit-identical
  with metrics enabled, disabled, or absent.
* **Updates are O(1) and batched.**  Instrumentation points increment
  once per cache lookup, per batched probe call, or per simulation run —
  never inside a numeric inner loop — so the overhead is unmeasurable
  next to the work being counted.  :func:`disable` short-circuits even
  those updates.
* **Snapshots are mergeable.**  :meth:`MetricsRegistry.snapshot` returns
  a plain picklable dict and :meth:`MetricsRegistry.merge` folds one
  registry's totals into another, which is how per-worker metrics from
  :func:`repro.experiments.parallel.parallel_map` are combined into the
  parent process: counters and histogram mass add, gauges keep their
  maximum.

Histograms optionally carry **fixed buckets** (upper bounds, ``le``
semantics, plus an implicit overflow bucket): :func:`histogram` with
``buckets=...`` gives a streaming distribution that merges exactly
across worker processes and renders as a native Prometheus histogram
(:mod:`repro.obs.prometheus`).  ``observe(value, exemplar=...)``
attaches a trace id to the bucket the observation landed in, so the
exposition can point from a slow bucket straight at a concrete trace.

Every mutation and every snapshot/merge/reset takes the registry's
re-entrant lock, so a snapshot is **atomic**: a reader never sees a
counter/histogram pair mid-update (the server's ``/metrics`` handler
relies on this, and writers group related updates under
:meth:`MetricsRegistry.hold`).

Metric objects are singletons per name within a registry:
:func:`counter`, :func:`gauge`, and :func:`histogram` return the same
object for the same name, so modules can bind them at import time and
:meth:`MetricsRegistry.reset` zeroes values *in place* without
invalidating those references.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "bucket_quantile",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "enable",
    "disable",
    "snapshot",
    "merge",
    "reset",
]

#: Default bounds for request-latency histograms (seconds, ``le``).
#: Spanning 0.5 ms to 2.5 s covers a cached check (~1 ms) through a
#: saturated drain; the overflow bucket catches pathology.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


@dataclass
class Counter:
    """A monotonically increasing count (events, hits, probes)."""

    name: str
    value: float = 0.0
    _registry: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be non-negative, got {amount!r}"
            )
        registry = self._registry
        if registry is None:
            self.value += amount
        elif registry.enabled:
            with registry._lock:
                self.value += amount

    def to_dict(self) -> dict:
        """Snapshot form: ``{"type": "counter", "value": ...}``."""
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time level (cache size, queue depth)."""

    name: str
    value: float = 0.0
    _registry: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        """Record the current level."""
        registry = self._registry
        if registry is None:
            self.value = float(value)
        elif registry.enabled:
            with registry._lock:
                self.value = float(value)

    def to_dict(self) -> dict:
        """Snapshot form: ``{"type": "gauge", "value": ...}``."""
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count / sum / sum-of-squares / min / max — enough for the mean
    and variance and for exact merging across worker processes, without
    storing samples.  With ``bucket_bounds`` set (see
    :meth:`MetricsRegistry.histogram`) it additionally keeps
    non-cumulative per-bucket counts (``le`` upper bounds plus one
    overflow bucket) and, per bucket, the last exemplar — a
    ``(trace_id, value)`` pair naming one concrete observation.
    """

    name: str
    count: int = 0
    total: float = 0.0
    sum_squares: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    bucket_bounds: tuple = ()
    bucket_counts: list = field(default_factory=list)
    exemplars: dict = field(default_factory=dict)
    _registry: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Account one observation (optionally tagged with a trace id)."""
        registry = self._registry
        if registry is not None and not registry.enabled:
            return
        value = float(value)
        lock = registry._lock if registry is not None else None
        if lock is not None:
            lock.acquire()
        try:
            self.count += 1
            self.total += value
            self.sum_squares += value * value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
            if self.bucket_bounds:
                index = bisect_left(self.bucket_bounds, value)
                self.bucket_counts[index] += 1
                if exemplar is not None:
                    self.exemplars[index] = (str(exemplar), value)
        finally:
            if lock is not None:
                lock.release()

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Bucket-interpolated quantile (None when empty or unbucketed)."""
        if not self.bucket_bounds:
            return None
        return bucket_quantile(self.bucket_bounds, self.bucket_counts, q)

    def to_dict(self) -> dict:
        """Snapshot form with count/total/min/max/mean (+ buckets)."""
        out = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "sum_squares": self.sum_squares,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }
        if self.bucket_bounds:
            out["buckets"] = {
                "bounds": list(self.bucket_bounds),
                "counts": list(self.bucket_counts),
                "exemplars": {
                    str(index): [trace_id, value]
                    for index, (trace_id, value) in sorted(
                        self.exemplars.items()
                    )
                },
            }
        return out


def _normalize_bounds(buckets) -> tuple:
    bounds = tuple(float(b) for b in buckets)
    if not bounds:
        raise ConfigurationError("bucket bounds must be non-empty")
    if any(b >= c for b, c in zip(bounds, bounds[1:])):
        raise ConfigurationError(
            f"bucket bounds must be strictly increasing, got {bounds!r}"
        )
    return bounds


def bucket_quantile(bounds, counts, q: float) -> float | None:
    """Estimate the ``q``-quantile from non-cumulative bucket counts.

    Linear interpolation within the containing bucket (the first bucket
    interpolates from 0, the overflow bucket reports its lower bound —
    the histogram cannot know how far past the last bound mass sits).
    Returns ``None`` on an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be within [0, 1], got {q!r}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count:
            if index >= len(bounds):
                return float(bounds[-1])
            low = bounds[index - 1] if index else 0.0
            high = bounds[index]
            inside = rank - (cumulative - count)
            return float(low + (high - low) * (inside / count))
    return float(bounds[-1])


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    One process-global instance (see :func:`registry`) serves the whole
    library; isolated instances are useful in tests.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        # Re-entrant: a writer holding the lock via hold() still updates
        # individual metrics (which lock per-update) without deadlock.
        self._lock = threading.RLock()

    def hold(self):
        """The registry lock, for grouping related updates atomically.

        A reader snapshotting concurrently sees either none or all of a
        group — the server's batch counter and batch-size histogram can
        never be observed torn::

            with registry.hold():
                batches.inc()
                batch_size.observe(n)
        """
        return self._lock

    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name=name, **kwargs)
            metric._registry = self
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, buckets=None) -> Histogram:
        """The histogram named ``name`` (created on first use).

        ``buckets`` (strictly increasing upper bounds) turns on bucket
        accounting.  Bounds may be attached to an existing empty
        histogram, but never changed once set or once observations
        exist — merged snapshots must always agree on the layout.
        """
        hist = self._get_or_create(name, Histogram)
        if buckets is not None:
            bounds = _normalize_bounds(buckets)
            with self._lock:
                if hist.bucket_bounds:
                    if hist.bucket_bounds != bounds:
                        raise ConfigurationError(
                            f"histogram {name!r} already has bounds "
                            f"{hist.bucket_bounds!r}; cannot change to "
                            f"{bounds!r}"
                        )
                elif hist.count:
                    raise ConfigurationError(
                        f"histogram {name!r} already holds {hist.count} "
                        "unbucketed observations; cannot attach bounds"
                    )
                else:
                    hist.bucket_bounds = bounds
                    hist.bucket_counts = [0] * (len(bounds) + 1)
        return hist

    def snapshot(self, prefix: str | tuple[str, ...] | None = None) -> dict:
        """All metrics as a plain picklable ``{name: dict}`` mapping.

        Metrics still at their zero state are skipped, so a snapshot
        reflects only what a run actually touched.  ``prefix`` restricts
        the snapshot to names starting with the given prefix (or any of a
        tuple of prefixes) — the admission service's ``/metrics``
        endpoint uses this to report its own ``service.*`` family without
        shipping the whole registry.  The registry lock is held for the
        whole pass: the result is a consistent point-in-time cut.
        """
        out: dict[str, dict] = {}
        with self._lock:
            for name, metric in sorted(self._metrics.items()):
                if prefix is not None and not name.startswith(prefix):
                    continue
                if isinstance(metric, (Counter, Gauge)) and metric.value == 0.0:
                    continue
                if isinstance(metric, Histogram) and metric.count == 0:
                    continue
                out[name] = metric.to_dict()
        return out

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram mass (including bucket counts) add;
        gauges keep the maximum of the two levels (the only
        order-independent combination for levels observed in different
        processes); exemplars keep the incoming snapshot's (last writer
        wins — any concrete trace id is as good as another).
        """
        with self._lock:
            for name, data in snap.items():
                kind = data.get("type")
                if kind == "counter":
                    self.counter(name).value += data["value"]
                elif kind == "gauge":
                    gauge = self.gauge(name)
                    gauge.value = max(gauge.value, data["value"])
                elif kind == "histogram":
                    buckets = data.get("buckets")
                    hist = self.histogram(
                        name,
                        buckets=buckets["bounds"] if buckets else None,
                    )
                    if not data["count"]:
                        continue
                    hist.count += data["count"]
                    hist.total += data["total"]
                    hist.sum_squares += data["sum_squares"]
                    hist.minimum = min(hist.minimum, data["min"])
                    hist.maximum = max(hist.maximum, data["max"])
                    if buckets:
                        if tuple(buckets["bounds"]) != hist.bucket_bounds:
                            raise ConfigurationError(
                                f"histogram {name!r} bucket bounds differ "
                                "between snapshot and registry; cannot merge"
                            )
                        for index, count in enumerate(buckets["counts"]):
                            hist.bucket_counts[index] += count
                        for index, exemplar in buckets.get(
                            "exemplars", {}
                        ).items():
                            hist.exemplars[int(index)] = tuple(exemplar)
                else:
                    raise ConfigurationError(
                        f"cannot merge metric {name!r} of unknown type {kind!r}"
                    )

    def reset(self) -> None:
        """Zero every metric **in place** (references stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Counter):
                    metric.value = 0.0
                elif isinstance(metric, Gauge):
                    metric.value = 0.0
                else:
                    metric.count = 0
                    metric.total = 0.0
                    metric.sum_squares = 0.0
                    metric.minimum = float("inf")
                    metric.maximum = float("-inf")
                    metric.bucket_counts = [0] * len(metric.bucket_counts)
                    metric.exemplars.clear()


#: The process-global registry used by all library instrumentation.
_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL


def counter(name: str) -> Counter:
    """The global counter named ``name``."""
    return _GLOBAL.counter(name)


def gauge(name: str) -> Gauge:
    """The global gauge named ``name``."""
    return _GLOBAL.gauge(name)


def histogram(name: str, buckets=None) -> Histogram:
    """The global histogram named ``name``."""
    return _GLOBAL.histogram(name, buckets=buckets)


def enable() -> None:
    """Turn global metric collection on (the default)."""
    _GLOBAL.enabled = True


def disable() -> None:
    """Turn global metric collection off: updates become no-ops."""
    _GLOBAL.enabled = False


def snapshot(prefix: str | tuple[str, ...] | None = None) -> dict:
    """Snapshot of the global registry (optionally prefix-filtered)."""
    return _GLOBAL.snapshot(prefix)


def merge(snap: dict) -> None:
    """Merge a snapshot into the global registry."""
    _GLOBAL.merge(snap)


def reset() -> None:
    """Zero the global registry in place."""
    _GLOBAL.reset()
