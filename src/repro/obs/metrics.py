"""A lightweight in-process metrics registry: counters, gauges, histograms.

The hot paths of this library — the exact-test structure cache, the
lockstep batched bisection, the Monte Carlo sampler, the simulators — are
instrumented with named metrics so a run can report *what it did* (cache
hit rates, probe counts, degenerate workloads, token visits) alongside
what it computed.  Three design rules keep this safe to leave in
production code:

* **Metrics never feed back into results.**  Reading or writing a metric
  cannot change a computed value; every experiment stays bit-identical
  with metrics enabled, disabled, or absent.
* **Updates are O(1) and batched.**  Instrumentation points increment
  once per cache lookup, per batched probe call, or per simulation run —
  never inside a numeric inner loop — so the overhead is unmeasurable
  next to the work being counted.  :func:`disable` short-circuits even
  those updates.
* **Snapshots are mergeable.**  :meth:`MetricsRegistry.snapshot` returns
  a plain picklable dict and :meth:`MetricsRegistry.merge` folds one
  registry's totals into another, which is how per-worker metrics from
  :func:`repro.experiments.parallel.parallel_map` are combined into the
  parent process: counters and histogram mass add, gauges keep their
  maximum.

Metric objects are singletons per name within a registry:
:func:`counter`, :func:`gauge`, and :func:`histogram` return the same
object for the same name, so modules can bind them at import time and
:meth:`MetricsRegistry.reset` zeroes values *in place* without
invalidating those references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "enable",
    "disable",
    "snapshot",
    "merge",
    "reset",
]


@dataclass
class Counter:
    """A monotonically increasing count (events, hits, probes)."""

    name: str
    value: float = 0.0
    _registry: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be non-negative, got {amount!r}"
            )
        if self._registry is None or self._registry.enabled:
            self.value += amount

    def to_dict(self) -> dict:
        """Snapshot form: ``{"type": "counter", "value": ...}``."""
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time level (cache size, queue depth)."""

    name: str
    value: float = 0.0
    _registry: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        """Record the current level."""
        if self._registry is None or self._registry.enabled:
            self.value = float(value)

    def to_dict(self) -> dict:
        """Snapshot form: ``{"type": "gauge", "value": ...}``."""
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count / sum / sum-of-squares / min / max — enough for the mean
    and variance and for exact merging across worker processes, without
    storing samples.
    """

    name: str
    count: int = 0
    total: float = 0.0
    sum_squares: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    _registry: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )

    def observe(self, value: float) -> None:
        """Account one observation."""
        if self._registry is not None and not self._registry.enabled:
            return
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_squares += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Snapshot form with count/total/min/max/mean."""
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "sum_squares": self.sum_squares,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    One process-global instance (see :func:`registry`) serves the whole
    library; isolated instances are useful in tests.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name=name)
        metric._registry = self
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get_or_create(name, Histogram)

    def snapshot(self, prefix: str | tuple[str, ...] | None = None) -> dict:
        """All metrics as a plain picklable ``{name: dict}`` mapping.

        Metrics still at their zero state are skipped, so a snapshot
        reflects only what a run actually touched.  ``prefix`` restricts
        the snapshot to names starting with the given prefix (or any of a
        tuple of prefixes) — the admission service's ``/metrics``
        endpoint uses this to report its own ``service.*`` family without
        shipping the whole registry.
        """
        out: dict[str, dict] = {}
        for name, metric in sorted(self._metrics.items()):
            if prefix is not None and not name.startswith(prefix):
                continue
            if isinstance(metric, (Counter, Gauge)) and metric.value == 0.0:
                continue
            if isinstance(metric, Histogram) and metric.count == 0:
                continue
            out[name] = metric.to_dict()
        return out

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram mass add; gauges keep the maximum of the
        two levels (the only order-independent combination for levels
        observed in different processes).
        """
        for name, data in snap.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).value += data["value"]
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.value = max(gauge.value, data["value"])
            elif kind == "histogram":
                hist = self.histogram(name)
                if data["count"]:
                    hist.count += data["count"]
                    hist.total += data["total"]
                    hist.sum_squares += data["sum_squares"]
                    hist.minimum = min(hist.minimum, data["min"])
                    hist.maximum = max(hist.maximum, data["max"])
            else:
                raise ConfigurationError(
                    f"cannot merge metric {name!r} of unknown type {kind!r}"
                )

    def reset(self) -> None:
        """Zero every metric **in place** (references stay valid)."""
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                metric.value = 0.0
            elif isinstance(metric, Gauge):
                metric.value = 0.0
            else:
                metric.count = 0
                metric.total = 0.0
                metric.sum_squares = 0.0
                metric.minimum = float("inf")
                metric.maximum = float("-inf")


#: The process-global registry used by all library instrumentation.
_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL


def counter(name: str) -> Counter:
    """The global counter named ``name``."""
    return _GLOBAL.counter(name)


def gauge(name: str) -> Gauge:
    """The global gauge named ``name``."""
    return _GLOBAL.gauge(name)


def histogram(name: str) -> Histogram:
    """The global histogram named ``name``."""
    return _GLOBAL.histogram(name)


def enable() -> None:
    """Turn global metric collection on (the default)."""
    _GLOBAL.enabled = True


def disable() -> None:
    """Turn global metric collection off: updates become no-ops."""
    _GLOBAL.enabled = False


def snapshot(prefix: str | tuple[str, ...] | None = None) -> dict:
    """Snapshot of the global registry (optionally prefix-filtered)."""
    return _GLOBAL.snapshot(prefix)


def merge(snap: dict) -> None:
    """Merge a snapshot into the global registry."""
    _GLOBAL.merge(snap)


def reset() -> None:
    """Zero the global registry in place."""
    _GLOBAL.reset()
