"""Hierarchical timing spans over ``time.perf_counter``.

A *span* measures the wall time of one named region of work.  Spans nest:
entering a span while another is open records the inner one under the
path ``outer/inner``, so one snapshot reads like a profile of the call
tree the run actually executed — ``figure1/bw10/ttp`` is the wall time of
one grid cell of the Figure 1 sweep.

Spans aggregate by path (count / total / min / max), never store
individual timings, and snapshot to a plain picklable dict, mirroring the
design of :mod:`repro.obs.metrics`: worker processes snapshot their
recorder and the parent merges, so a ``--jobs 8`` run reports the same
per-cell timings a sequential run would (modulo the actual durations).

Two APIs::

    with span("figure1/bw10/ttp"):
        ...                        # context manager

    @timed("sample")
    def sample(...): ...           # decorator, path = current stack + name
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "SpanStats",
    "SpanRecorder",
    "recorder",
    "span",
    "timed",
    "snapshot",
    "merge",
    "reset",
    "enable",
    "disable",
]


@dataclass
class SpanStats:
    """Aggregated wall time of every execution of one span path."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = float("-inf")

    def record(self, seconds: float) -> None:
        """Account one execution of the span."""
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def to_dict(self) -> dict:
        """Snapshot form: count / total / min / max / mean seconds."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s if self.count else None,
            "mean_s": self.total_s / self.count if self.count else 0.0,
        }


class SpanRecorder:
    """Collects nested span timings for one process.

    One process-global instance (see :func:`recorder`) serves the
    library; isolated instances are useful in tests.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._stack: list[str] = []
        self._spans: dict[str, SpanStats] = {}

    @contextmanager
    def span(self, name: str):
        """Time a region under ``name``, nested below any open span."""
        if not self.enabled:
            yield
            return
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._stack.pop()
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
            stats.record(elapsed)

    def timed(self, name: str):
        """Decorator form of :meth:`span`."""

        def decorate(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def snapshot(self) -> dict:
        """All spans as a plain picklable ``{path: dict}`` mapping."""
        return {
            path: stats.to_dict() for path, stats in sorted(self._spans.items())
        }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        recorder: counts and totals add, min/max combine."""
        for path, data in snap.items():
            if not data["count"]:
                continue
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
            stats.count += data["count"]
            stats.total_s += data["total_s"]
            stats.min_s = min(stats.min_s, data["min_s"])
            stats.max_s = max(stats.max_s, data["max_s"])

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep timing correctly)."""
        self._spans.clear()


#: The process-global recorder used by all library instrumentation.
_GLOBAL = SpanRecorder()


def recorder() -> SpanRecorder:
    """The process-global span recorder."""
    return _GLOBAL


def span(name: str):
    """Context manager timing ``name`` on the global recorder."""
    return _GLOBAL.span(name)


def timed(name: str):
    """Decorator timing ``name`` on the global recorder."""
    return _GLOBAL.timed(name)


def snapshot() -> dict:
    """Snapshot of the global recorder."""
    return _GLOBAL.snapshot()


def merge(snap: dict) -> None:
    """Merge a snapshot into the global recorder."""
    _GLOBAL.merge(snap)


def reset() -> None:
    """Drop all spans from the global recorder."""
    _GLOBAL.reset()


def enable() -> None:
    """Turn global span recording on (the default)."""
    _GLOBAL.enabled = True


def disable() -> None:
    """Turn global span recording off: spans become no-ops."""
    _GLOBAL.enabled = False
