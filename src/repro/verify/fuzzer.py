"""The differential fuzz loop.

:func:`run_fuzz` walks a seeded, fully deterministic case stream
(:func:`repro.verify.generators.build_case`) and runs every requested
property from :mod:`repro.verify.checks` on every case.  On a violation
it greedily shrinks the case to a minimal counterexample and, when a
repro directory is configured, writes a replayable repro file through the
:mod:`repro.obs` manifest layer.  Progress and findings go through the
structured logging and metrics layers, so a fuzz run is auditable like
any other experiment.

Determinism contract: for a fixed ``(seed, n_cases, checks)`` and a fixed
code base, two runs produce identical reports — cases derive only from
``(seed, index)`` and the checks are pure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs import logging as obslog
from repro.obs import metrics
from repro.verify.checks import CHECKS, Violation, run_check
from repro.verify.generators import FuzzCase, build_case
from repro.verify.shrink import shrink_case

__all__ = ["FuzzConfig", "FuzzReport", "run_fuzz"]


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign.

    Attributes:
        seed: master seed; every case derives from ``(seed, index)``.
        n_cases: how many cases to generate.
        checks: property names to run (default: all of
            :data:`repro.verify.checks.CHECKS`).
        shrink: minimize counterexamples before reporting.
        repro_dir: when set, write a replayable repro file per violation.
        max_violations: stop early after this many violations (0 = never).
    """

    seed: int = 20_260_704
    n_cases: int = 60
    checks: tuple[str, ...] = tuple(CHECKS)
    shrink: bool = True
    repro_dir: str | None = None
    max_violations: int = 0

    def __post_init__(self) -> None:
        if self.n_cases <= 0:
            raise ReproError(f"n_cases must be positive, got {self.n_cases!r}")
        unknown = [name for name in self.checks if name not in CHECKS]
        if unknown:
            raise ReproError(
                f"unknown checks {unknown!r}; available: {sorted(CHECKS)}"
            )


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    config: FuzzConfig
    cases_run: int = 0
    checks_run: int = 0
    violations: list[Violation] = field(default_factory=list)
    shrunk: list[FuzzCase] = field(default_factory=list)
    repro_paths: list[str] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """Human-readable campaign outcome, one violation per line."""
        lines = [
            f"fuzz seed={self.config.seed}: {self.cases_run} cases, "
            f"{self.checks_run} property evaluations, "
            f"{len(self.violations)} violation(s) in {self.wall_time_s:.1f}s"
        ]
        for violation, shrunk in zip(self.violations, self.shrunk):
            lines.append("  " + violation.describe())
            lines.append(
                f"    shrunk to periods={list(shrunk.periods_s)} "
                f"payloads={list(shrunk.payloads_bits)} "
                f"bandwidth={shrunk.bandwidth_bps:.6g}"
            )
        for path in self.repro_paths:
            lines.append(f"  repro file: {path}")
        return "\n".join(lines)


def run_fuzz(config: FuzzConfig = FuzzConfig()) -> FuzzReport:
    """Execute one campaign; see the module docstring."""
    from repro.verify.reprofile import write_repro

    log = obslog.get_logger("verify.fuzzer")
    report = FuzzReport(config=config)
    started = time.perf_counter()
    log.info(
        "fuzzing %d cases with %d checks (seed %d)",
        config.n_cases, len(config.checks), config.seed,
        extra={"seed": config.seed, "n_cases": config.n_cases},
    )

    for index in range(config.n_cases):
        case = build_case(config.seed, index)
        report.cases_run += 1
        metrics.counter("verify.cases").inc()
        for name in config.checks:
            violation = run_check(name, case)
            report.checks_run += 1
            metrics.counter("verify.checks").inc()
            if violation is None:
                continue
            metrics.counter("verify.violations").inc()
            log.warning(
                "violation: %s", violation.describe(),
                extra={"check": name, "seed": config.seed, "index": index},
            )
            shrunk = (
                shrink_case(case, CHECKS[name]) if config.shrink else case
            )
            report.violations.append(violation)
            report.shrunk.append(shrunk)
            if config.repro_dir is not None:
                report.repro_paths.append(
                    write_repro(config.repro_dir, violation, shrunk)
                )
            if (
                config.max_violations
                and len(report.violations) >= config.max_violations
            ):
                report.wall_time_s = time.perf_counter() - started
                log.warning("stopping early at %d violations",
                            len(report.violations))
                return report

    report.wall_time_s = time.perf_counter() - started
    log.info(
        "fuzz finished: %d violations in %.1fs",
        len(report.violations), report.wall_time_s,
        extra={"violations": len(report.violations)},
    )
    return report
