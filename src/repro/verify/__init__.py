"""Differential verification of the analyses against the simulators.

The :mod:`repro.verify` package pits the closed-form schedulability
criteria (Theorems 4.1 and 5.1) against the discrete-event simulators and
against themselves:

* :mod:`~repro.verify.generators` — seeded, fully deterministic case
  generation: random workloads plus adversarial families biased at the
  analytic boundaries (periods at exact TTRT multiples, single-frame and
  sub-frame messages, one-stream rings, equal-period ties, sets scaled to
  the saturation edge).
* :mod:`~repro.verify.checks` — the properties: analysis-accepted sets
  must survive adversarial simulation; scalar and batched implementations
  must agree bit for bit; metamorphic invariants (payload shrinking never
  breaks schedulability, breakdown utilization is scale invariant).
* :mod:`~repro.verify.shrink` — greedy minimization of a failing case to
  the smallest message set that still violates the property.
* :mod:`~repro.verify.reprofile` — replayable counterexample files (seed
  + parameters) written through the :mod:`repro.obs` manifest layer.
* :mod:`~repro.verify.fuzzer` — the loop tying it together.
* :mod:`~repro.verify.mutation` — mutation smoke: injects known
  off-by-one bugs and asserts the harness catches every one.

Quick use::

    from repro.verify import FuzzConfig, run_fuzz
    report = run_fuzz(FuzzConfig(seed=1, n_cases=50))
    assert not report.violations, report.summary()
"""

from repro.verify.checks import CHECKS, Violation, run_check
from repro.verify.fuzzer import FuzzConfig, FuzzReport, run_fuzz
from repro.verify.generators import CASE_KINDS, FuzzCase, build_case
from repro.verify.mutation import MUTANTS, MutationReport, run_mutation_smoke
from repro.verify.reprofile import load_repro, replay_repro, write_repro
from repro.verify.shrink import shrink_case

__all__ = [
    "CASE_KINDS",
    "CHECKS",
    "MUTANTS",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "MutationReport",
    "Violation",
    "build_case",
    "load_repro",
    "replay_repro",
    "run_check",
    "run_fuzz",
    "run_mutation_smoke",
    "shrink_case",
    "write_repro",
]
