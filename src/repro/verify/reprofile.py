"""Replayable counterexample files.

A repro file is a :mod:`repro.obs.manifest` document whose ``extra``
section carries everything needed to replay a violation without the
generator: the failing check's name, the ``(seed, index)`` pair that
regenerates the original case, and the exact parameters of both the
original and the shrunk case (floats survive the JSON round trip
bit-exactly).  :func:`replay_repro` re-runs the check on the stored
parameters and returns the fresh violation — or ``None``, meaning the
bug has since been fixed and the file can be retired into a pinned
regression test.
"""

from __future__ import annotations

import json
import os

from repro.errors import ReproError
from repro.obs import logging as obslog
from repro.obs import manifest as obsmanifest
from repro.verify.checks import Violation, run_check
from repro.verify.generators import FuzzCase

__all__ = ["load_repro", "replay_repro", "write_repro"]

_SCHEMA = "repro.verify/1"


def write_repro(
    directory: str,
    violation: Violation,
    shrunk: FuzzCase | None = None,
) -> str:
    """Write one violation as a replayable manifest; returns the path."""
    case = violation.case
    document = obsmanifest.build_manifest(
        command="verify.fuzz",
        extra={
            "repro_schema": _SCHEMA,
            "check": violation.check,
            "detail": violation.detail,
            "seed": case.seed,
            "index": case.index,
            "case": case.to_params(),
            "shrunk_case": shrunk.to_params() if shrunk is not None else None,
        },
    )
    name = f"repro-{violation.check}-s{case.seed}-i{case.index}.json"
    path = os.path.join(directory, name)
    obsmanifest.write_manifest(path, document)
    obslog.get_logger("verify.repro").warning(
        "wrote counterexample %s", path,
        extra={"check": violation.check, "artifact": path},
    )
    return path


def load_repro(path: str) -> dict:
    """The ``extra`` section of a repro file, schema-checked."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    extra = document.get("extra") or {}
    if extra.get("repro_schema") != _SCHEMA:
        raise ReproError(
            f"{path} is not a verify repro file (schema "
            f"{extra.get('repro_schema')!r})"
        )
    return extra


def replay_repro(path: str, use_shrunk: bool = True) -> Violation | None:
    """Re-run the stored check on the stored case.

    Prefers the shrunk case when one was recorded (it is the one a
    regression test should pin); returns the violation if it still
    reproduces, ``None`` if the underlying bug is fixed.
    """
    extra = load_repro(path)
    params = (
        extra["shrunk_case"]
        if use_shrunk and extra.get("shrunk_case")
        else extra["case"]
    )
    case = FuzzCase.from_params(params)
    return run_check(extra["check"], case)
