"""The differential properties the fuzzer enforces.

Each check takes a :class:`~repro.verify.generators.FuzzCase` and returns
``None`` (holds) or a :class:`Violation`.  Checks deliberately reach the
implementations *through their defining modules* (``boundary_mod
.token_visit_count`` instead of a from-import) so the mutation-smoke
harness can hot-patch a deliberate bug into one path and watch the check
fire; see :mod:`repro.verify.mutation`.

The properties:

``pdp_vs_sim`` / ``ttp_vs_sim``
    The theorems are *sufficient* conditions — an accepted set must never
    miss a deadline in adversarial simulation (critical-instant phasing,
    saturating asynchronous traffic).
``scalar_vector_augmented`` / ``scalar_vector_split`` /
``scalar_vector_visits`` / ``breakdown_batch``
    Every scalar/batched implementation pair must agree **bit for bit**;
    the batched paths are pure performance work and may not move a single
    verdict.
``shrink_monotonic``
    Metamorphic: shrinking any payload of a schedulable set keeps it
    schedulable (both theorems are monotone in the payloads).
``scale_invariance``
    The TTP breakdown scale is inverse-linear in the payloads, so
    breakdown *utilization* is invariant under payload scaling; scaling
    by powers of two must preserve ``λ(s·M)·s == λ(M)`` to float
    round-off.
``columnar_equiv``
    The columnar :class:`~repro.messages.table.StreamTable` engine is
    pure performance work: tables must round-trip to object sets
    losslessly, order identically under rate-monotonic sorting, produce
    **bit-identical** per-stream utilizations, wire-bit totals, and PDP
    augmented lengths, and move no verdict — PDP (both variants, dense
    *and* grouped exact tests) and TTP (verdict and saturation scale)
    must answer object and columnar forms identically.
``mc_streaming_equiv``
    The streaming Monte Carlo estimator must be the fixed-N estimator
    when asked to be: its first chunk (plain sampling) is
    **bit-identical** to a fixed-N run from the same derived seed, and
    its variance-reduced mode (stratified + antithetic) must agree with
    an independent fixed-N estimate within the combined confidence
    intervals — stratification may reshuffle *where* periods land, never
    *what* is being estimated.
``pdp_fastpath_equiv`` / ``ttp_fastpath_equiv``
    The event-compressing fast paths (:mod:`repro.sim.fastpath`,
    :mod:`repro.sim.fastpath_ttp`) must reproduce the scalar oracles'
    reports **bit for bit** — every response time, rotation statistic,
    busy total, and verdict — on every supported configuration.  Like
    the scalar/vector pairs, the fast paths are pure performance work.
``service_batch_equiv``
    The admission service's micro-batched dispatch
    (:meth:`~repro.admission.AdmissionController.process_batch`) must
    answer a derived op sequence — interleaved checks, admits, and
    releases, including invalid ones — **identically** to issuing the
    same calls one at a time on a fresh controller: same decisions,
    same station/id assignments, same faults.  Batching is pure
    performance work too.
``admission_incremental_equiv``
    The incremental admission engine
    (:class:`~repro.admission_incremental.IncrementalAdmissionController`,
    per-level snapshots + canonical sorted-prefix cache keys) must answer
    a randomized admit/release/check interleaving — including
    near-saturation probe ladders that cross the feasibility boundary at
    one priority level — **identically** to the scalar oracle, with the
    level cache enabled on the incremental side only (so stale or
    poisoned snapshot/cache entries cannot hide).
``admission_tracing_equiv``
    Tracing is observational only: the same op sequence issued with
    request spans installed (sample rate 0, 0.5, or 1.0, both engines)
    must produce decisions **bit-identical** to an untraced twin
    controller — a span attribute or sampling branch that leaks into an
    admission verdict is a correctness bug, not an observability bug.
``analysis_sound_under_loss``
    The retransmission-aware tests (:mod:`repro.faults.analysis`) stay
    *sufficient* under a lossy medium: a set they accept under a declared
    fault budget must never miss a deadline when simulated against a
    fault plan drawn **at** the budget's rates — the rate-bounded worst
    case the per-period inflation charges.
``fault_plan_determinism``
    Fault schedules are pure functions of their configuration: identical
    plans yield identical event lists; any horizon's schedule is a
    prefix of any larger horizon's (so re-runs and ``--jobs``
    partitionings can never disagree); a zero-rate plan leaves a
    simulation **bit-identical** to the unfaulted run; and a
    positive-rate plan is itself deterministic *and* visibly charges
    recovery time — an injector that consumes fault events without
    charging the stall (the ``fault_recovery_swallowed`` mutant) must be
    flagged here.
``cluster_shard_equiv``
    Sharding is pure deployment work: an in-process cluster (consistent
    hashing, fleet-id translation, even budget leases) must answer a
    derived op stream **bit-identically** to per-shard standalone
    controllers replaying exactly the worker-local subsequences the
    router produced — same decisions, ids, budget rejections, faults —
    and the hash ring must honor minimal disruption when a shard
    leaves.
``cluster_budget_sound``
    Capacity is one global quantity (the utilization bound judges the
    fleet's *sum*): the granted leases may never exceed the global cap,
    the fleet's admitted utilization may never exceed it either — even
    across a mid-stream worker death with reclaim and redistribution —
    and a ledger that sizes grants from a stale view of outstanding
    leases (the ``router_stale_lease`` mutant) must be observed here
    overcommitting under demand pressure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro import admission as admission_mod
from repro import admission_incremental as admission_incremental_mod
from repro.cluster import budget as cluster_budget_mod
from repro.cluster import core as cluster_core_mod
from repro.cluster import hashring as cluster_hashring_mod

from repro.analysis import boundary as boundary_mod
from repro.analysis import montecarlo as montecarlo_mod
from repro.analysis import pdp as pdp_mod
from repro.analysis import rm as rm_mod
from repro.analysis.breakdown import breakdown_scale, breakdown_scales_batch
from repro.analysis.pdp import PDPAnalysis, PDPVariant
from repro.analysis.ttp import TTPAnalysis
from repro.errors import AllocationError, ReproError
from repro.faults import analysis as faults_analysis_mod
from repro.faults.analysis import FaultBudget
from repro.faults.plan import FaultPlan, rate_for_loss_fraction
from repro.messages import table as table_mod
from repro.messages.generators import MessageSetSampler, PeriodDistribution
from repro.obs import tracing as tracing_mod
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.sim import dispatch as dispatch_mod
from repro.sim import fastpath as fastpath_mod
from repro.sim import fastpath_ttp as fastpath_ttp_mod
from repro.sim.pdp_sim import PDPRingSimulator, PDPSimConfig, TokenWalkModel
from repro.sim.trace import SimulationReport
from repro.sim.traffic import ArrivalPhasing
from repro.sim.ttp_sim import TTPRingSimulator, TTPSimConfig
from repro.sim.validate import cross_validate_pdp, cross_validate_ttp
from repro.verify.generators import FuzzCase

__all__ = ["CHECKS", "Violation", "run_check"]

#: Simulation horizon multiplier (minimum periods of the longest stream);
#: the validator extends it to whole hyperperiods where representable.
_SIM_PERIODS = 2.0

#: Longest P_max the sim checks will simulate.  The huge-quotient
#: ``exact_multiple`` cases (periods of hundreds of seconds) target the
#: scalar boundary rule, not the simulators; simulating several such
#: periods would burn the whole fuzz budget on one case.
_SIM_MAX_PERIOD_S = 1.0


@dataclass(frozen=True)
class Violation:
    """One property failure, tied to the case that produced it."""

    check: str
    case: FuzzCase
    detail: str

    def describe(self) -> str:
        """One-line human-readable account, replayable from (seed, index)."""
        return (
            f"{self.check} failed on case (seed={self.case.seed}, "
            f"index={self.case.index}, kind={self.case.kind}): {self.detail}"
        )


def _frame():
    return paper_frame_format()


def _pdp_analysis(case: FuzzCase, variant: PDPVariant) -> PDPAnalysis:
    ring = ieee_802_5_ring(case.bandwidth_bps, n_stations=case.n_stations)
    return PDPAnalysis(ring, _frame(), variant)


def _pdp_analysis_stations(case: FuzzCase, n_stations: int) -> PDPAnalysis:
    """Like :func:`_pdp_analysis` but with a fixed station count (for
    scenarios that need more concurrent streams than the case's ring)."""
    ring = ieee_802_5_ring(case.bandwidth_bps, n_stations=n_stations)
    return PDPAnalysis(ring, _frame(), PDPVariant.MODIFIED)


def _ttp_analysis(case: FuzzCase) -> TTPAnalysis:
    ring = fddi_ring(case.bandwidth_bps, n_stations=case.n_stations)
    return TTPAnalysis(ring, _frame())


# -- analysis versus simulation -------------------------------------------------


def check_pdp_vs_sim(case: FuzzCase) -> Violation | None:
    """Theorem 4.1 acceptance must survive adversarial simulation."""
    if max(case.periods_s) > _SIM_MAX_PERIOD_S:
        return None
    message_set = case.message_set()
    for variant in PDPVariant:
        analysis = _pdp_analysis(case, variant)
        if not analysis.is_schedulable(message_set):
            continue
        validation = cross_validate_pdp(
            analysis, message_set, duration_periods=_SIM_PERIODS
        )
        if not validation.consistent:
            missed = [
                (s.stream_index, s.missed)
                for s in validation.report.streams
                if s.missed
            ]
            return Violation(
                "pdp_vs_sim",
                case,
                f"Theorem 4.1 ({variant.value}) accepted the set but the "
                f"simulator missed deadlines: {missed}",
            )
    return None


def check_ttp_vs_sim(case: FuzzCase) -> Violation | None:
    """Theorem 5.1 acceptance must survive adversarial simulation."""
    if max(case.periods_s) > _SIM_MAX_PERIOD_S:
        return None
    analysis = _ttp_analysis(case)
    message_set = case.message_set()
    # Consistency only binds the accept side of the (sufficient) theorem;
    # simulating rejected sets would spend fuzz budget proving nothing.
    if not analysis.is_schedulable(message_set):
        return None
    validation = cross_validate_ttp(
        analysis, message_set, duration_periods=_SIM_PERIODS
    )
    if not validation.consistent:
        missed = [
            (s.stream_index, s.missed)
            for s in validation.report.streams
            if s.missed
        ]
        return Violation(
            "ttp_vs_sim",
            case,
            "Theorem 5.1 accepted the set but the simulator missed "
            f"deadlines: {missed}",
        )
    return None


# -- scalar versus batched ------------------------------------------------------


def check_scalar_vector_augmented(case: FuzzCase) -> Violation | None:
    """Scalar and vectorized ``C'_i`` must agree bit for bit."""
    frame = _frame()
    ring = ieee_802_5_ring(case.bandwidth_bps, n_stations=case.n_stations)
    payloads = np.asarray(case.payloads_bits, dtype=float)
    for variant in PDPVariant:
        vector = pdp_mod.pdp_augmented_lengths(payloads, ring, frame, variant)
        scalar = np.array(
            [
                pdp_mod.pdp_augmented_length(c, ring, frame, variant)
                for c in case.payloads_bits
            ]
        )
        if not np.array_equal(vector, scalar):
            delta = np.max(np.abs(vector - scalar))
            return Violation(
                "scalar_vector_augmented",
                case,
                f"C'_i ({variant.value}) scalar/vector mismatch, max "
                f"|Δ|={delta:.3e}: scalar={scalar.tolist()} "
                f"vector={vector.tolist()}",
            )
    return None


def check_scalar_vector_split(case: FuzzCase) -> Violation | None:
    """Scalar and vectorized frame splits must agree, boundaries included."""
    frame = _frame()
    # The raw payloads plus adversarial points at the frame boundary:
    # exact multiples of the info field and one ulp either side.
    probes = list(case.payloads_bits) + [0.0]
    for c in case.payloads_bits:
        k = max(round(c / frame.info_bits), 1)
        exact = k * frame.info_bits
        probes.extend(
            [exact, float(np.nextafter(exact, 0.0)), float(np.nextafter(exact, np.inf))]
        )
    arr = np.asarray(probes, dtype=float)
    total_v, full_v = frame.split_counts(arr)
    for i, c in enumerate(probes):
        split = frame.split(c)
        if total_v[i] != split.total_frames or full_v[i] != split.full_frames:
            return Violation(
                "scalar_vector_split",
                case,
                f"frame split mismatch at payload {c!r}: scalar "
                f"(K={split.total_frames}, L={split.full_frames}) vs vector "
                f"(K={total_v[i]}, L={full_v[i]})",
            )
    return None


def check_scalar_vector_visits(case: FuzzCase) -> Violation | None:
    """Scalar and vectorized token-visit counts must agree."""
    ttrts = []
    if case.ttrt_hint_s is not None:
        ttrts.append(case.ttrt_hint_s)
    try:
        ttrts.append(_ttp_analysis(case).select_ttrt(case.message_set()))
    except Exception:
        pass  # degenerate policy input; the hint (if any) still probes
    for ttrt in ttrts:
        if ttrt <= 0:
            continue
        vector = boundary_mod.token_visit_counts(case.periods_s, ttrt)
        scalar = np.array(
            [boundary_mod.token_visit_count(p, ttrt) for p in case.periods_s],
            dtype=float,
        )
        if not np.array_equal(vector, scalar):
            return Violation(
                "scalar_vector_visits",
                case,
                f"token-visit counts disagree at TTRT={ttrt!r}: "
                f"scalar={scalar.tolist()} vector={vector.tolist()} "
                f"periods={list(case.periods_s)}",
            )
    return None


def check_breakdown_batch(case: FuzzCase) -> Violation | None:
    """Single and batched breakdown searches must agree bit for bit."""
    message_set = case.message_set()
    analysis = _pdp_analysis(case, PDPVariant.STANDARD)
    scalar, _ = breakdown_scale(message_set, analysis, rel_tol=1e-3)
    ((batched, _),) = breakdown_scales_batch([message_set], analysis, rel_tol=1e-3)
    if not (scalar == batched or (math.isnan(scalar) and math.isnan(batched))):
        return Violation(
            "breakdown_batch",
            case,
            f"breakdown scale scalar={scalar!r} != batched={batched!r}",
        )
    return None


# -- metamorphic ---------------------------------------------------------------


def check_shrink_monotonic(case: FuzzCase) -> Violation | None:
    """Shrinking any payload of a schedulable set keeps it schedulable."""
    message_set = case.message_set()
    shrunk_sets = [("all payloads x0.5", message_set.scaled(0.5))]
    for i in range(len(message_set)):
        payloads = list(case.payloads_bits)
        payloads[i] = payloads[i] * 0.5
        shrunk_sets.append(
            (
                f"payload {i} halved",
                case.with_streams(case.periods_s, tuple(payloads)).message_set(),
            )
        )

    for variant in PDPVariant:
        analysis = _pdp_analysis(case, variant)
        if not analysis.is_schedulable(message_set):
            continue
        for label, shrunk in shrunk_sets:
            if not analysis.is_schedulable(shrunk):
                return Violation(
                    "shrink_monotonic",
                    case,
                    f"Theorem 4.1 ({variant.value}): schedulable set became "
                    f"unschedulable after {label}",
                )

    ttp = _ttp_analysis(case)
    try:
        ttp_ok = ttp.is_schedulable(message_set)
    except AllocationError:
        ttp_ok = False
    if ttp_ok:
        for label, shrunk in shrunk_sets:
            if not ttp.is_schedulable(shrunk):
                return Violation(
                    "shrink_monotonic",
                    case,
                    f"Theorem 5.1: schedulable set became unschedulable "
                    f"after {label}",
                )
    return None


def check_scale_invariance(case: FuzzCase) -> Violation | None:
    """TTP breakdown utilization is invariant under payload scaling."""
    ttp = _ttp_analysis(case)
    message_set = case.message_set()
    try:
        base = ttp.saturation_scale(message_set)
    except Exception:
        return None  # unallocatable (q_i < 2): nothing to scale
    if not (0 < base < float("inf")):
        return None
    for s in (0.5, 2.0, 4.0):
        scaled = ttp.saturation_scale(message_set.scaled(s))
        if not math.isclose(scaled * s, base, rel_tol=1e-9):
            return Violation(
                "scale_invariance",
                case,
                f"TTP breakdown utilization moved under payload scale {s}: "
                f"λ(M)={base!r} but λ(sM)·s={scaled * s!r}",
            )
    return None


# -- fast path versus scalar oracle --------------------------------------------


def _report_diff(scalar: SimulationReport, fast: SimulationReport) -> str | None:
    """First bit-level difference between two reports, or None."""
    for name in ("duration", "sync_busy_time", "async_busy_time", "token_time"):
        a, b = getattr(scalar, name), getattr(fast, name)
        if a != b:
            return f"{name}: scalar={a!r} fast={b!r}"
    if len(scalar.streams) != len(fast.streams):
        return f"stream count: scalar={len(scalar.streams)} fast={len(fast.streams)}"
    for a, b in zip(scalar.streams, fast.streams):
        if vars(a) != vars(b):
            return f"stream {a.stream_index}: scalar={vars(a)!r} fast={vars(b)!r}"
    if len(scalar.rotations) != len(fast.rotations):
        return (
            f"rotation count: scalar={len(scalar.rotations)} "
            f"fast={len(fast.rotations)}"
        )
    for a, b in zip(scalar.rotations, fast.rotations):
        if vars(a) != vars(b):
            return f"rotation {a.station}: scalar={vars(a)!r} fast={vars(b)!r}"
    return None


#: Horizon for the equivalence checks, in periods of the longest stream.
#: Deliberately *without* the hyperperiod extension the vs-sim checks use:
#: bit identity holds at any horizon, and a short one keeps the doubled
#: (scalar + fast) simulation cost inside the fuzz budget.
_EQUIV_PERIODS = 2.0

#: Scalar-event budget per equivalence run.  The scalar oracles pay a
#: heap event per frame (PDP, saturating) or per token visit (TTP), so
#: high-bandwidth cases would burn the whole fuzz budget re-simulating
#: idle rotations; the horizon is clamped so the scalar side stays under
#: roughly this many events (the cheap per-event floors below are
#: conservative, so real runs come in at or below it).
_EQUIV_EVENT_BUDGET = 1500


def _equiv_config_index(case: FuzzCase) -> int:
    """Which of the two probe configs this case exercises (0 or 1).

    Alternates per *round* of the six-family kind rotation (``index =
    6·round + family`` → parity of ``round + family``), so every
    generator family meets both configs across consecutive rounds; a
    plain index parity would pin each family to a single config.
    """
    return (case.index // 6 + case.index) % 2


def check_pdp_fastpath_equiv(case: FuzzCase) -> Violation | None:
    """The PDP fast path must match the scalar oracle bit for bit."""
    if max(case.periods_s) > _SIM_MAX_PERIOD_S:
        return None
    frame = _frame()
    ring = ieee_802_5_ring(case.bandwidth_bps, n_stations=case.n_stations)
    message_set = case.message_set()
    duration = _EQUIV_PERIODS * max(case.periods_s)
    config = (
        PDPSimConfig(
            variant=PDPVariant.STANDARD,
            phasing=ArrivalPhasing.SIMULTANEOUS,
            async_saturating=True,
            token_walk=TokenWalkModel.AVERAGE,
            collect_responses=True,
        ),
        PDPSimConfig(
            variant=PDPVariant.MODIFIED,
            phasing=ArrivalPhasing.STAGGERED,
            async_saturating=False,
            token_walk=TokenWalkModel.ACTUAL,
            collect_responses=True,
        ),
    )[_equiv_config_index(case)]
    if config.async_saturating:
        # Saturating filler sends one full frame per scalar event.
        occupancy = max(frame.frame_time(ring.bandwidth_bps), ring.theta)
        duration = min(duration, _EQUIV_EVENT_BUDGET * occupancy)
    scalar = PDPRingSimulator(ring, frame, message_set, config).run(duration)
    # Through the module attribute so mutation smoke can hot-patch it.
    fast = fastpath_mod.run_pdp_fast(ring, frame, message_set, config, duration)
    diff = _report_diff(scalar, fast)
    if diff is not None:
        return Violation(
            "pdp_fastpath_equiv",
            case,
            f"fast path diverged from the scalar oracle "
            f"({config.variant.value}, saturating="
            f"{config.async_saturating}): {diff}",
        )
    return None


def check_ttp_fastpath_equiv(case: FuzzCase) -> Violation | None:
    """The TTP fast path must match the scalar oracle bit for bit."""
    if max(case.periods_s) > _SIM_MAX_PERIOD_S:
        return None
    analysis = _ttp_analysis(case)
    message_set = case.message_set()
    try:
        allocation = analysis.analyze(message_set).allocation
    except ReproError:
        return None
    if allocation is None:
        return None  # unallocatable (q_i < 2): nothing to simulate
    # The scalar oracle pays one event per token visit and a visit takes
    # at least one Θ/n hop, so this clamp bounds its event count.
    duration = min(
        _EQUIV_PERIODS * max(case.periods_s),
        _EQUIV_EVENT_BUDGET * analysis.ring.theta / case.n_stations,
    )
    config = (
        TTPSimConfig(
            phasing=ArrivalPhasing.SIMULTANEOUS,
            async_saturating=True,
            collect_responses=True,
        ),
        TTPSimConfig(
            phasing=ArrivalPhasing.STAGGERED,
            async_saturating=False,
            collect_responses=True,
        ),
    )[_equiv_config_index(case)]
    scalar = TTPRingSimulator(
        analysis.ring, analysis.frame, message_set, allocation, config
    ).run(duration)
    fast = fastpath_ttp_mod.run_ttp_fast(
        analysis.ring, analysis.frame, message_set, allocation, config, duration
    )
    diff = _report_diff(scalar, fast)
    if diff is not None:
        return Violation(
            "ttp_fastpath_equiv",
            case,
            f"fast path diverged from the scalar oracle (saturating="
            f"{config.async_saturating}): {diff}",
        )
    return None


def check_service_batch_equiv(case: FuzzCase) -> Violation | None:
    """Batched admission dispatch must equal sequential direct calls."""
    policy = (
        admission_mod.AdmissionPolicy.EXACT,
        admission_mod.AdmissionPolicy.SUFFICIENT,
        admission_mod.AdmissionPolicy.HYBRID,
    )[case.index % 3]
    if case.index % 2:
        analyses = (_ttp_analysis(case), _ttp_analysis(case))
    else:
        analyses = (
            _pdp_analysis(case, PDPVariant.MODIFIED),
            _pdp_analysis(case, PDPVariant.MODIFIED),
        )
    batched = admission_mod.AdmissionController(analyses[0], policy)
    sequential = admission_mod.AdmissionController(analyses[1], policy)

    # A deterministic interleaving of admits, checks, and releases —
    # releases deliberately include ids that are unknown, already
    # released, or not yet assigned, in both strict and idempotent modes.
    rng = random.Random(case.seed * 1_000_003 + case.index)
    ops: list[admission_mod.AdmissionOp] = []
    for period_s, payload_bits in zip(case.periods_s, case.payloads_bits):
        if rng.random() < 0.5:
            ops.append(admission_mod.AdmissionOp.admit(period_s, payload_bits))
        else:
            ops.append(admission_mod.AdmissionOp.check(period_s, payload_bits))
        if rng.random() < 0.3:
            ops.append(
                admission_mod.AdmissionOp.release(
                    rng.randrange(1, len(case.periods_s) + 2),
                    idempotent=rng.random() < 0.5,
                )
            )
    batch_results = batched.process_batch(list(ops))

    def issue_directly(op):
        try:
            if op.kind == "check":
                return sequential.check(op.period_s, op.payload_bits)
            if op.kind == "admit":
                return sequential.request(op.period_s, op.payload_bits)
            return sequential.release(op.stream_id, idempotent=op.idempotent)
        except ReproError as exc:
            return admission_mod.OpFault(type(exc).__name__, str(exc))

    for position, (op, got) in enumerate(zip(ops, batch_results)):
        want = issue_directly(op)
        if got != want:
            return Violation(
                "service_batch_equiv",
                case,
                f"op {position} ({op.kind}) diverged: batched={got!r}, "
                f"sequential={want!r}",
            )
    return None


def check_admission_incremental_equiv(case: FuzzCase) -> Violation | None:
    """The incremental admission engine must match the scalar oracle."""
    policy = (
        admission_mod.AdmissionPolicy.EXACT,
        admission_mod.AdmissionPolicy.SUFFICIENT,
        admission_mod.AdmissionPolicy.HYBRID,
    )[case.index % 3]
    if case.index % 2:
        analyses = (_ttp_analysis(case), _ttp_analysis(case))
    else:
        analyses = (
            _pdp_analysis(case, PDPVariant.MODIFIED),
            _pdp_analysis(case, PDPVariant.MODIFIED),
        )
    oracle = admission_mod.AdmissionController(analyses[0], policy)
    # The level cache is live on the incremental side only: a stale or
    # poisoned per-level entry has no twin on the oracle side to cancel
    # against, so corruption surfaces as a decision mismatch.
    engine = admission_incremental_mod.IncrementalAdmissionController(
        analyses[1], policy, cache_namespace="admission"
    )

    rng = random.Random(case.seed * 1_000_003 + case.index)
    bandwidth = analyses[0].ring.bandwidth_bps
    # Probe ladder: same short period, payloads stepping across the
    # feasibility boundary, so one priority level flips between
    # consecutive evaluations — the regime where a snapshot off-by-one
    # (reusing the candidate's own level) changes a verdict.
    probe_period = min(case.periods_s) / 4
    probe_payloads = [
        max(64.0, frac * probe_period * bandwidth)
        for frac in (0.3, 0.45, 0.55, 0.65, 0.8, 1.1)
    ]

    def issue(controller, op):
        try:
            if op.kind == "check":
                return controller.check(op.period_s, op.payload_bits)
            if op.kind == "admit":
                return controller.request(op.period_s, op.payload_bits)
            return controller.release(op.stream_id, idempotent=op.idempotent)
        except ReproError as exc:
            return admission_mod.OpFault(type(exc).__name__, str(exc))

    def crafted_prologue(controller):
        """A deterministic snapshot-staleness scenario (PDP cases).

        Geometry: a peer stream at period ``p1`` plus a light long-period
        stream at ``4·p1``, then a feather-weight admit at ``1.5·p1``
        followed by a heavy admit at the same period.  Near the boundary
        the heavy candidate's *own* level fails only by ceil-quantization
        (``2·C'_peer + C'`` against ``1.5·p1``) while the long stream's
        level still passes — so an engine that substitutes a lighter
        set's snapshotted own-level verdict admits what the oracle
        rejects.  The (peer, heavy) weight grid straddles the boundary
        wherever framing overheads land it; everything is released
        between combos so each starts from an empty base.
        """
        results = []
        budget = probe_period * bandwidth
        for peer_frac, heavy_frac in (
            (0.4, 0.5),
            (0.5, 0.4),
            (0.45, 0.45),
            (0.4, 0.45),
            (0.5, 0.5),
            (0.55, 0.45),
            (0.6, 0.4),
            (0.45, 0.55),
        ):
            admitted = []
            for period_s, payload_bits in (
                (probe_period, peer_frac * budget),
                (4.0 * probe_period, 0.05 * budget),
                (1.5 * probe_period, 64.0),
                (1.5 * probe_period, heavy_frac * budget),
            ):
                outcome = issue(
                    controller,
                    admission_mod.AdmissionOp.admit(period_s, payload_bits),
                )
                results.append(outcome)
                if getattr(outcome, "stream_id", None) is not None:
                    admitted.append(outcome.stream_id)
            for stream_id in admitted:
                results.append(
                    issue(controller, admission_mod.AdmissionOp.release(stream_id))
                )
        return results

    if not case.index % 2:
        # Dedicated controllers: the scenario needs four concurrent
        # streams (fuzz rings can have a single station) and the exact
        # test on every admit, independent of the case's policy draw.
        crafted_engine = admission_incremental_mod.IncrementalAdmissionController(
            _pdp_analysis_stations(case, 8),
            admission_mod.AdmissionPolicy.EXACT,
            cache_namespace="admission",
        )
        crafted_oracle = admission_mod.AdmissionController(
            _pdp_analysis_stations(case, 8), admission_mod.AdmissionPolicy.EXACT
        )
        engine_results = crafted_prologue(crafted_engine)
        oracle_results = crafted_prologue(crafted_oracle)
        for position, (got, want) in enumerate(
            zip(engine_results, oracle_results)
        ):
            if got != want:
                return Violation(
                    "admission_incremental_equiv",
                    case,
                    f"crafted op {position} diverged: incremental={got!r}, "
                    f"oracle={want!r}",
                )

    # Several rounds over the case's streams: the stale-snapshot bugs
    # this property exists to catch need a light probe admitted *before*
    # a heavier probe at the same priority level, with releases in
    # between — one pass over a small case rarely produces that shape.
    ops: list[admission_mod.AdmissionOp] = []
    while len(ops) < 48:
        for period_s, payload_bits in zip(case.periods_s, case.payloads_bits):
            roll = rng.random()
            if roll < 0.25:
                period_s, payload_bits = probe_period, rng.choice(probe_payloads)
            if rng.random() < 0.5:
                ops.append(
                    admission_mod.AdmissionOp.admit(period_s, payload_bits)
                )
            else:
                ops.append(
                    admission_mod.AdmissionOp.check(period_s, payload_bits)
                )
            if rng.random() < 0.3:
                # Ids scale with the op history so later admits are
                # eligible too (plus unknown/stale ids, as in the batch
                # property).
                ops.append(
                    admission_mod.AdmissionOp.release(
                        rng.randrange(1, len(ops) + 3),
                        idempotent=rng.random() < 0.5,
                    )
                )
    for position, op in enumerate(ops):
        got = issue(engine, op)
        want = issue(oracle, op)
        if got != want:
            return Violation(
                "admission_incremental_equiv",
                case,
                f"op {position} ({op.kind}) diverged: incremental={got!r}, "
                f"oracle={want!r}",
            )
    return None


def check_admission_tracing_equiv(case: FuzzCase) -> Violation | None:
    """Tracing must never move an admission decision.

    A traced controller (request span installed per op, engine/cache
    spans recorded underneath) and an untraced twin must answer the same
    op sequence identically at every sample rate — 0.0 (never sampled),
    0.5 (systematic every-other), and 1.0 (every request).
    """
    policy = (
        admission_mod.AdmissionPolicy.EXACT,
        admission_mod.AdmissionPolicy.SUFFICIENT,
        admission_mod.AdmissionPolicy.HYBRID,
    )[case.index % 3]
    sample_rate = (0.0, 0.5, 1.0)[case.index % 3]
    if case.index % 2:
        analysis_factory = lambda: _ttp_analysis(case)  # noqa: E731
    else:
        analysis_factory = lambda: _pdp_analysis(  # noqa: E731
            case, PDPVariant.MODIFIED
        )

    def build(with_cache: bool):
        if case.index % 4 < 2:
            return admission_mod.AdmissionController(
                analysis_factory(),
                policy,
                cache_namespace="admission" if with_cache else None,
            )
        return admission_incremental_mod.IncrementalAdmissionController(
            analysis_factory(),
            policy,
            cache_namespace="admission" if with_cache else None,
        )

    traced = build(with_cache=True)
    untraced = build(with_cache=True)
    tracer = tracing_mod.Tracer(sample_rate, buffer_size=8)

    def issue(controller, op):
        try:
            if op.kind == "check":
                return controller.check(op.period_s, op.payload_bits)
            if op.kind == "admit":
                return controller.request(op.period_s, op.payload_bits)
            return controller.release(op.stream_id, idempotent=op.idempotent)
        except ReproError as exc:
            return admission_mod.OpFault(type(exc).__name__, str(exc))

    rng = random.Random(case.seed * 7_000_003 + case.index)
    ops: list[admission_mod.AdmissionOp] = []
    while len(ops) < 32:
        for period_s, payload_bits in zip(case.periods_s, case.payloads_bits):
            if rng.random() < 0.5:
                ops.append(
                    admission_mod.AdmissionOp.admit(period_s, payload_bits)
                )
            else:
                ops.append(
                    admission_mod.AdmissionOp.check(period_s, payload_bits)
                )
            if rng.random() < 0.3:
                ops.append(
                    admission_mod.AdmissionOp.release(
                        rng.randrange(1, len(ops) + 3),
                        idempotent=rng.random() < 0.5,
                    )
                )

    for position, op in enumerate(ops):
        span = tracer.begin("request", op=op.kind)
        token = tracing_mod.use(span) if span is not None else None
        try:
            got = issue(traced, op)
        finally:
            if token is not None:
                tracing_mod.release(token)
            tracer.finish(span)
        want = issue(untraced, op)
        if got != want:
            return Violation(
                "admission_tracing_equiv",
                case,
                f"op {position} ({op.kind}, rate={sample_rate}) diverged "
                f"under tracing: traced={got!r}, untraced={want!r}",
            )
    return None


# -- lossy medium ---------------------------------------------------------------


def _fault_budget_for(case: FuzzCase) -> FaultBudget:
    """A deterministic fault budget rotated across three shapes per case.

    Recovery latency is tied to the shortest period so the budget is
    material (stalls are a real fraction of every period) without
    trivially rejecting every workload; the three shapes exercise each
    driven fault process against the analysis inflation.
    """
    recovery = min(case.periods_s) / 64.0
    shape = case.index % 3
    if shape == 0:
        return FaultBudget(
            token_loss_rate_hz=rate_for_loss_fraction(0.05, recovery),
            recovery_time_s=recovery,
        )
    if shape == 1:
        return FaultBudget(
            token_loss_rate_hz=rate_for_loss_fraction(0.02, recovery),
            corruption_rate_hz=0.5 / min(case.periods_s),
            recovery_time_s=recovery,
        )
    return FaultBudget(
        token_loss_rate_hz=rate_for_loss_fraction(0.02, recovery),
        membership_rate_hz=rate_for_loss_fraction(0.01, recovery),
        recovery_time_s=recovery,
    )


def _plan_at_budget(case: FuzzCase, budget: FaultBudget) -> FaultPlan:
    """The worst covered plan: every rate drawn exactly at the budget."""
    return FaultPlan(
        seed=case.seed * 1_000_003 + case.index,
        token_loss_rate_hz=budget.token_loss_rate_hz,
        corruption_rate_hz=budget.corruption_rate_hz,
        membership_rate_hz=budget.membership_rate_hz,
        recovery_time_s=budget.recovery_time_s,
    )


def check_analysis_sound_under_loss(case: FuzzCase) -> Violation | None:
    """Fault-aware acceptance must survive fault-injected simulation.

    Routed through :mod:`repro.sim.dispatch` on purpose: fault plans must
    force the counted fallback to the scalar oracles, so this property
    also referees the refusal machinery (a fast path that silently
    ignored the plan would simulate a fault-free ring and could mask an
    unsound inflation — or miss deadlines the analysis did cover).
    """
    if max(case.periods_s) > _SIM_MAX_PERIOD_S:
        return None
    message_set = case.message_set()
    budget = _fault_budget_for(case)
    plan = _plan_at_budget(case, budget)
    frame = _frame()

    variant = (PDPVariant.STANDARD, PDPVariant.MODIFIED)[_equiv_config_index(case)]
    analysis = _pdp_analysis(case, variant)
    if faults_analysis_mod.pdp_fault_aware_schedulable(analysis, message_set, budget):
        config = PDPSimConfig(
            variant=variant,
            phasing=ArrivalPhasing.SIMULTANEOUS,
            async_saturating=True,
            token_walk=TokenWalkModel.AVERAGE,
            faults=plan,
        )
        occupancy = max(frame.frame_time(analysis.ring.bandwidth_bps), analysis.ring.theta)
        duration = min(
            _SIM_PERIODS * max(case.periods_s),
            4 * _EQUIV_EVENT_BUDGET * occupancy,
        )
        report = dispatch_mod.cached_run_pdp(
            analysis.ring, frame, message_set, config, duration
        )
        if not report.deadline_safe:
            missed = [
                (s.stream_index, s.missed) for s in report.streams if s.missed
            ]
            return Violation(
                "analysis_sound_under_loss",
                case,
                f"fault-aware Theorem 4.1 ({variant.value}) accepted the "
                f"set under budget {budget!r} but the fault-injected "
                f"simulator missed deadlines: {missed} "
                f"(faults={report.faults!r})",
            )

    ttp = _ttp_analysis(case)
    try:
        allocation = faults_analysis_mod.ttp_fault_aware_allocation(
            ttp, message_set, budget
        )
    except ReproError:
        return None  # nothing guaranteed under the budget: nothing to referee
    if not allocation.satisfies_protocol_constraint():
        return None
    config = TTPSimConfig(
        phasing=ArrivalPhasing.SIMULTANEOUS, async_saturating=True, faults=plan
    )
    duration = min(
        _SIM_PERIODS * max(case.periods_s),
        4 * _EQUIV_EVENT_BUDGET * ttp.ring.theta / case.n_stations,
    )
    report = dispatch_mod.cached_run_ttp(
        ttp.ring, frame, message_set, allocation, config, duration
    )
    if not report.deadline_safe:
        missed = [(s.stream_index, s.missed) for s in report.streams if s.missed]
        return Violation(
            "analysis_sound_under_loss",
            case,
            f"fault-aware Theorem 5.1 accepted the set under budget "
            f"{budget!r} but the fault-injected simulator missed "
            f"deadlines: {missed} (faults={report.faults!r})",
        )
    return None


def check_fault_plan_determinism(case: FuzzCase) -> Violation | None:
    """Fault schedules and their injection must be deterministic and charged."""
    plan_seed = case.seed * 2_000_003 + case.index
    min_period = min(case.periods_s)
    plan = FaultPlan(
        seed=plan_seed,
        token_loss_rate_hz=3.0 / min_period,
        corruption_rate_hz=2.0 / min_period,
        membership_rate_hz=1.0 / min_period,
        recovery_time_s=min_period / 128.0,
    )
    twin = FaultPlan(
        seed=plan_seed,
        token_loss_rate_hz=3.0 / min_period,
        corruption_rate_hz=2.0 / min_period,
        membership_rate_hz=1.0 / min_period,
        recovery_time_s=min_period / 128.0,
    )
    horizon = 8.0 * min_period
    events = plan.events_until(horizon)
    if events != twin.events_until(horizon):
        return Violation(
            "fault_plan_determinism",
            case,
            "two identically configured plans produced different schedules",
        )
    prefix = [event for event in events if event.time_s < horizon / 2.0]
    if plan.events_until(horizon / 2.0) != prefix:
        return Violation(
            "fault_plan_determinism",
            case,
            "schedule below half the horizon is not a prefix of the full "
            "schedule; --jobs partitionings would diverge",
        )

    if max(case.periods_s) > _SIM_MAX_PERIOD_S:
        return None
    frame = _frame()
    ring = ieee_802_5_ring(case.bandwidth_bps, n_stations=case.n_stations)
    message_set = case.message_set()
    occupancy = max(frame.frame_time(ring.bandwidth_bps), ring.theta)
    duration = min(
        _EQUIV_PERIODS * max(case.periods_s), _EQUIV_EVENT_BUDGET * occupancy
    )

    def run(faults: FaultPlan | None) -> SimulationReport:
        config = PDPSimConfig(
            variant=PDPVariant.STANDARD,
            phasing=ArrivalPhasing.SIMULTANEOUS,
            async_saturating=True,
            token_walk=TokenWalkModel.AVERAGE,
            collect_responses=True,
            faults=faults,
        )
        return PDPRingSimulator(ring, frame, message_set, config).run(duration)

    baseline = run(None)
    zero_rate = run(FaultPlan(seed=plan_seed))
    diff = _report_diff(baseline, zero_rate)
    if diff is not None:
        return Violation(
            "fault_plan_determinism",
            case,
            f"a zero-rate fault plan changed the simulation: {diff}",
        )
    stats = zero_rate.faults
    if stats is None or stats.ring_events or stats.corrupted_frames:
        return Violation(
            "fault_plan_determinism",
            case,
            f"zero-rate run reported fault activity: {stats!r}",
        )

    # Positive-rate probe: the minimum gap (1/rate) puts the first token
    # loss at or before duration/4, so the run must consume events *and*
    # charge their recovery stalls — the fault_recovery_swallowed mutant
    # consumes without charging and fails the recovery_time_s assertion.
    probe_plan = FaultPlan(
        seed=plan_seed,
        token_loss_rate_hz=8.0 / duration,
        recovery_time_s=duration / 200.0,
    )
    first = run(probe_plan)
    diff = _report_diff(first, run(probe_plan))
    if diff is not None:
        return Violation(
            "fault_plan_determinism",
            case,
            f"two runs of the same fault plan diverged: {diff}",
        )
    stats = first.faults
    if stats is None or stats.token_losses < 1:
        return Violation(
            "fault_plan_determinism",
            case,
            f"positive-rate plan consumed no token losses over the run "
            f"(stats={stats!r})",
        )
    if not stats.recovery_time_s > 0.0:
        return Violation(
            "fault_plan_determinism",
            case,
            f"{stats.token_losses} token losses were consumed but no "
            f"recovery time was charged (stats={stats!r}); the injector "
            "is swallowing faults",
        )
    return None


# -- columnar engine equivalence ------------------------------------------------


def check_columnar_equiv(case: FuzzCase) -> Violation | None:
    """The columnar StreamTable pipeline is bit-identical to the object path."""
    message_set = case.message_set()
    table = table_mod.StreamTable.from_message_set(message_set)

    def fail(detail: str) -> Violation:
        return Violation("columnar_equiv", case, detail)

    if table.to_message_set() != message_set:
        return fail(
            "StreamTable.from_message_set/to_message_set round trip lost "
            "information"
        )

    ordered_set = message_set.rate_monotonic()
    ordered_table = table.rate_monotonic()
    if ordered_table.to_message_set() != ordered_set:
        return fail(
            "columnar rate_monotonic produced a different ordering than the "
            "object sort"
        )

    bandwidth = case.bandwidth_bps
    table_u = table.utilizations(bandwidth)
    object_u = np.array([s.utilization(bandwidth) for s in message_set])
    if not np.array_equal(table_u, object_u):
        return fail(
            "per-stream utilizations differ bitwise between the table and "
            "object paths"
        )

    frame = _frame()
    vector_bits = frame.message_wire_bits_array(
        np.asarray(case.payloads_bits, dtype=float)
    )
    scalar_bits = np.array(
        [frame.message_wire_bits(c) for c in case.payloads_bits], dtype=float
    )
    if not np.array_equal(vector_bits, scalar_bits):
        return fail(
            "message_wire_bits_array diverges bitwise from the scalar "
            "wire-bit rule"
        )

    for variant in (PDPVariant.STANDARD, PDPVariant.MODIFIED):
        analysis = _pdp_analysis(case, variant)
        costs_set = analysis.augmented_lengths(ordered_set)
        costs_table = analysis.augmented_lengths(ordered_table)
        if not np.array_equal(costs_set, costs_table):
            return fail(
                f"{variant.name}: augmented lengths differ bitwise between "
                "the table and object paths"
            )
        verdict_set = analysis.is_schedulable(message_set)
        verdict_table = analysis.is_schedulable(table)
        if verdict_set != verdict_table:
            return fail(
                f"{variant.name}: PDP verdict moved between object "
                f"({verdict_set}) and columnar ({verdict_table}) inputs"
            )
        dense = rm_mod.ExactRMTest(ordered_table.periods)
        grouped = rm_mod.GroupedExactRMTest(ordered_table.periods)
        blocking = analysis.blocking
        if dense.is_schedulable(costs_table, blocking) != grouped.is_schedulable(
            costs_table, blocking
        ):
            return fail(
                f"{variant.name}: dense and grouped exact RM tests disagree "
                "on the same cost vector"
            )

    ttp = _ttp_analysis(case)

    def outcome(fn, argument):
        try:
            return ("ok", fn(argument))
        except ReproError as exc:
            return (type(exc).__name__, None)

    verdict_set = outcome(ttp.is_schedulable, message_set)
    verdict_table = outcome(ttp.is_schedulable, table)
    if verdict_set != verdict_table:
        return fail(
            f"TTP verdict moved between object ({verdict_set!r}) and "
            f"columnar ({verdict_table!r}) inputs"
        )
    scale_set = outcome(ttp.saturation_scale, message_set)
    scale_table = outcome(ttp.saturation_scale, table)
    if scale_set[0] != scale_table[0]:
        return fail(
            f"TTP saturation outcomes differ: object {scale_set!r} vs "
            f"columnar {scale_table!r}"
        )
    if scale_set[0] == "ok":
        same = scale_set[1] == scale_table[1] or (
            math.isnan(scale_set[1]) and math.isnan(scale_table[1])
        )
        if not same:
            return fail(
                f"TTP saturation scales differ bitwise: object "
                f"{scale_set[1]!r} vs columnar {scale_table[1]!r}"
            )
    return None


# -- streaming Monte Carlo equivalence ------------------------------------------

#: Chunk size of the fuzz-scale streaming runs; small enough that the whole
#: check costs ~40 breakdown searches per case at the relaxed tolerance.
_MC_CHUNK_SETS = 4

#: Bisection tolerance for the Monte Carlo equivalence check.  Accuracy of
#: individual samples is irrelevant here — both estimators share the same
#: kernels — so the search can stop early.
_MC_REL_TOL = 1e-3


def check_mc_streaming_equiv(case: FuzzCase) -> Violation | None:
    """The streaming estimator *is* the fixed-N estimator.

    Two obligations: (1) in plain mode (``strata=1``, no antithetic) the
    streaming chunk ``k`` consumes the sample stream of
    ``default_rng([seed, k])`` bit-identically, so chunk 0's mean must
    equal the fixed-N mean over the same ``chunk_sets`` sets exactly;
    (2) the variance-reduced mode changes *where* period samples land,
    never what is estimated, so its mean must agree with an independent
    fixed-N estimate within the combined confidence intervals.
    """
    analysis = _pdp_analysis(case, PDPVariant.STANDARD)
    p_min = min(case.periods_s)
    p_max = max(case.periods_s)
    distribution = PeriodDistribution(
        mean_period_s=0.5 * (p_min + p_max), ratio=p_max / p_min
    )
    sampler = MessageSetSampler(
        n_streams=len(case.periods_s), periods=distribution
    )
    mc_seed = case.seed * 3_000_017 + case.index
    bandwidth = case.bandwidth_bps

    streaming = montecarlo_mod.streaming_average_breakdown_utilization(
        analysis,
        sampler,
        bandwidth,
        seed=mc_seed,
        eps=1.0,  # converge immediately at min_chunks: 2 chunks exactly
        chunk_sets=_MC_CHUNK_SETS,
        min_chunks=2,
        max_sets=2 * _MC_CHUNK_SETS,
        rel_tol=_MC_REL_TOL,
    )
    fixed_chunk = montecarlo_mod.average_breakdown_utilization(
        analysis,
        sampler,
        bandwidth,
        _MC_CHUNK_SETS,
        np.random.default_rng([mc_seed, 0]),
        rel_tol=_MC_REL_TOL,
    )
    # If chunk 0 produced no samples (every set had infinite scale) the
    # first entry of chunk_means, if any, belongs to a later chunk — only
    # compare when chunk 0 demonstrably contributed.
    if fixed_chunk.n_sets and streaming.chunk_means:
        if streaming.chunk_means[0] != fixed_chunk.mean:
            return Violation(
                "mc_streaming_equiv",
                case,
                f"plain streaming chunk 0 mean {streaming.chunk_means[0]!r} "
                f"is not bit-identical to the fixed-N mean "
                f"{fixed_chunk.mean!r} over the same {_MC_CHUNK_SETS} sets",
            )

    fixed = montecarlo_mod.average_breakdown_utilization(
        analysis,
        sampler,
        bandwidth,
        4 * _MC_CHUNK_SETS,
        np.random.default_rng([mc_seed, 1000]),
        rel_tol=_MC_REL_TOL,
    )
    reduced = montecarlo_mod.streaming_average_breakdown_utilization(
        analysis,
        sampler,
        bandwidth,
        seed=(mc_seed, 2000),
        eps=1e-12,  # never converges: runs to the max_sets cap
        chunk_sets=_MC_CHUNK_SETS,
        min_chunks=2,
        max_sets=4 * _MC_CHUNK_SETS,
        strata=_MC_CHUNK_SETS,
        antithetic=True,
        rel_tol=_MC_REL_TOL,
    )
    if fixed.n_sets >= 2 and reduced.n_chunks >= 2:
        combined = math.hypot(fixed.stderr, reduced.stderr)
        if math.isfinite(combined):
            # 6x the combined stderr: loose enough that a clean estimator
            # never trips it (samples are bounded in [0, 1]), tight enough
            # that a biased stratification or twin-pairing rule does.
            tolerance = 6.0 * combined + 1e-12
            if abs(fixed.mean - reduced.mean) > tolerance:
                return Violation(
                    "mc_streaming_equiv",
                    case,
                    f"variance-reduced streaming mean {reduced.mean!r} and "
                    f"fixed-N mean {fixed.mean!r} disagree beyond 6x the "
                    f"combined stderr ({combined!r})",
                )
    return None


def _cluster_op_stream(case: FuzzCase) -> list:
    """A deterministic check/admit/release interleaving for cluster runs.

    Same derivation discipline as ``service_batch_equiv``: everything
    flows from ``case.seed``/``case.index`` through integer arithmetic,
    so the stream is identical across processes and PYTHONHASHSEED
    values.  Release targets are drawn from the *fleet* id space,
    including ids never assigned, so the front's unknown-stream path is
    exercised alongside real releases.
    """
    rng = random.Random(case.seed * 1_000_003 + case.index + 77)
    ops: list[admission_mod.AdmissionOp] = []
    for period_s, payload_bits in zip(case.periods_s, case.payloads_bits):
        roll = rng.random()
        if roll < 0.45:
            ops.append(admission_mod.AdmissionOp.admit(period_s, payload_bits))
        else:
            ops.append(admission_mod.AdmissionOp.check(period_s, payload_bits))
        if rng.random() < 0.35:
            ops.append(
                admission_mod.AdmissionOp.release(
                    rng.randrange(1, len(case.periods_s) + 2),
                    idempotent=rng.random() < 0.5,
                )
            )
    return ops


def check_cluster_shard_equiv(case: FuzzCase) -> Violation | None:
    """Sharded admission must be the single controller, bit for bit.

    An :class:`~repro.cluster.core.InProcessCluster` (consistent-hash
    routing, fleet-id translation, even budget leases) runs a derived op
    stream while a per-shard oracle — a fresh standalone
    :class:`~repro.admission.AdmissionController` holding the same lease
    cap — replays, in lockstep, exactly the worker-local subsequence the
    directory routed to that shard.  Every decision, station/id
    assignment, budget rejection, and fault must agree bit for bit once
    fleet ids are translated back to shard-local ones.  Also pins the
    hash ring's minimal-disruption contract: removing one shard may only
    move keys that shard owned.
    """
    policy = (
        admission_mod.AdmissionPolicy.EXACT,
        admission_mod.AdmissionPolicy.SUFFICIENT,
        admission_mod.AdmissionPolicy.HYBRID,
    )[case.index % 3]
    if case.index % 2:
        make_analysis = lambda: _ttp_analysis(case)  # noqa: E731
    else:
        make_analysis = lambda: _pdp_analysis(  # noqa: E731
            case, PDPVariant.MODIFIED
        )
    cap = 0.25 + 0.2 * (case.index % 4)
    n_shards = 2 + case.index % 2
    shard_ids = [f"w{i}" for i in range(n_shards)]
    cluster = cluster_core_mod.InProcessCluster(
        shard_ids,
        lambda: admission_mod.AdmissionController(make_analysis(), policy),
        utilization_cap=cap,
        policy="hash",
        seed=case.seed,
    )
    oracles = {}
    for shard in shard_ids:
        oracle = admission_mod.AdmissionController(make_analysis(), policy)
        lease = cluster.ledger.lease_of(shard)
        oracle.set_utilization_cap(lease.target if lease else 0.0)
        oracles[shard] = oracle

    for position, op in enumerate(_cluster_op_stream(case)):
        lengths = {
            shard: len(history)
            for shard, history in cluster.histories.items()
        }
        got = cluster.dispatch(op)
        routed = [
            shard
            for shard, history in cluster.histories.items()
            if len(history) > lengths[shard]
        ]
        if not routed:
            # Answered at the front (unknown fleet id): the wording is
            # pinned against the controller's own by construction; a
            # real controller never saw the op, so there is nothing to
            # replay.
            continue
        shard = routed[0]
        local_op = cluster.histories[shard][-1]
        want = oracles[shard].process_batch([local_op])[0]
        # Translate the cluster's fleet-term answer back to shard-local
        # terms before comparing.
        local_got = got
        if isinstance(got, admission_mod.AdmissionDecision):
            if got.admitted and got.stream_id is not None:
                owner = cluster.directory.owner_of(got.stream_id)
                if owner is None or owner[0] != shard:
                    return Violation(
                        "cluster_shard_equiv",
                        case,
                        f"op {position}: admitted fleet id {got.stream_id} "
                        f"not mapped to routed shard {shard}",
                    )
                local_got = replace(got, stream_id=owner[1])
        elif isinstance(got, admission_mod.ReleaseOutcome):
            local_got = replace(got, stream_id=local_op.stream_id)
        if local_got != want:
            return Violation(
                "cluster_shard_equiv",
                case,
                f"op {position} ({local_op.kind}) on shard {shard} "
                f"diverged: cluster={local_got!r}, standalone={want!r}",
            )

    # Minimal disruption: keys not owned by the removed shard must not
    # move when it leaves the ring.
    ring = cluster_hashring_mod.HashRing(shard_ids)
    victim = shard_ids[case.index % len(shard_ids)]
    shrunk = ring.without(victim)
    for period_s, payload_bits in zip(case.periods_s, case.payloads_bits):
        key = cluster_hashring_mod.stream_key(period_s, payload_bits)
        before = ring.lookup(key)
        after = shrunk.lookup(key)
        if before != victim and after != before:
            return Violation(
                "cluster_shard_equiv",
                case,
                f"ring moved key {key!r} from surviving shard {before} "
                f"to {after} when {victim} left",
            )
        if before == victim and after == victim:
            return Violation(
                "cluster_shard_equiv",
                case,
                f"ring still routes key {key!r} to removed shard {victim}",
            )
    return None


def check_cluster_budget_sound(case: FuzzCase) -> Violation | None:
    """The fleet can never jointly admit past the global cap.

    Two layers, both checked at every step.  First a live
    :class:`~repro.cluster.core.InProcessCluster` — including a
    mid-stream worker death with lease reclaim and redistribution —
    where the *fleet's* admitted utilization must stay within the global
    cap and the ledger's soundness probe must hold.  Second a
    demand-overcommit churn directly on a
    :class:`~repro.cluster.budget.BudgetLedger`: grants whose combined
    demand exceeds the cap, interleaved with acknowledgements and
    reclaims, where a ledger that sizes grants from a stale view of
    outstanding leases (the ``router_stale_lease`` mutant) overcommits
    and is observed here.
    """
    cap = 0.3 + 0.2 * (case.index % 3)
    shard_ids = ["w0", "w1", "w2"]
    if case.index % 2:
        make_analysis = lambda: _ttp_analysis(case)  # noqa: E731
    else:
        make_analysis = lambda: _pdp_analysis(  # noqa: E731
            case, PDPVariant.MODIFIED
        )
    cluster = cluster_core_mod.InProcessCluster(
        shard_ids,
        lambda: admission_mod.AdmissionController(
            make_analysis(), admission_mod.AdmissionPolicy.EXACT
        ),
        utilization_cap=cap,
        policy="hash",
        seed=case.seed,
    )
    ops = _cluster_op_stream(case)
    kill_at = len(ops) // 2
    epsilon = 1e-9
    for position, op in enumerate(ops):
        if position == kill_at and len(cluster.workers) > 1:
            cluster.kill_shard(sorted(cluster.workers)[case.index % 2])
        cluster.dispatch(op)
        if not cluster.ledger.sound():
            return Violation(
                "cluster_budget_sound",
                case,
                f"after op {position}: granted leases "
                f"{cluster.ledger.granted_total()!r} exceed the fleet cap "
                f"{cap!r}",
            )
        fleet = cluster.fleet_utilization()
        if fleet > cap + epsilon:
            return Violation(
                "cluster_budget_sound",
                case,
                f"after op {position}: fleet admitted utilization "
                f"{fleet!r} exceeds the global cap {cap!r}",
            )

    # Demand-overcommit churn straight on the ledger: total demand is
    # drawn well past the cap, so a correct ledger must clip and a
    # stale-view ledger visibly overcommits.
    rng = random.Random(case.seed * 1_000_003 + case.index + 991)
    ledger = cluster_budget_mod.BudgetLedger(cap)
    shards = [f"s{i}" for i in range(4)]
    for step in range(24):
        roll = rng.random()
        shard = shards[rng.randrange(len(shards))]
        if roll < 0.6:
            granted = ledger.grant(shard, rng.uniform(0.0, 1.5 * cap))
            if rng.random() < 0.7:
                ledger.acknowledge(shard, granted)
        elif roll < 0.8:
            lease = ledger.lease_of(shard)
            if lease is not None:
                ledger.acknowledge(shard, lease.target)
        else:
            ledger.reclaim(shard)
        if not ledger.sound():
            return Violation(
                "cluster_budget_sound",
                case,
                f"ledger churn step {step}: granted total "
                f"{ledger.granted_total()!r} exceeds cap {cap!r} "
                f"(stale-view grant sizing)",
            )
    return None


CHECKS: dict[str, Callable[[FuzzCase], Violation | None]] = {
    "pdp_vs_sim": check_pdp_vs_sim,
    "ttp_vs_sim": check_ttp_vs_sim,
    "scalar_vector_augmented": check_scalar_vector_augmented,
    "scalar_vector_split": check_scalar_vector_split,
    "scalar_vector_visits": check_scalar_vector_visits,
    "breakdown_batch": check_breakdown_batch,
    "shrink_monotonic": check_shrink_monotonic,
    "scale_invariance": check_scale_invariance,
    "pdp_fastpath_equiv": check_pdp_fastpath_equiv,
    "ttp_fastpath_equiv": check_ttp_fastpath_equiv,
    "service_batch_equiv": check_service_batch_equiv,
    "admission_incremental_equiv": check_admission_incremental_equiv,
    "admission_tracing_equiv": check_admission_tracing_equiv,
    "analysis_sound_under_loss": check_analysis_sound_under_loss,
    "fault_plan_determinism": check_fault_plan_determinism,
    "columnar_equiv": check_columnar_equiv,
    "mc_streaming_equiv": check_mc_streaming_equiv,
    "cluster_shard_equiv": check_cluster_shard_equiv,
    "cluster_budget_sound": check_cluster_budget_sound,
}


def run_check(name: str, case: FuzzCase) -> Violation | None:
    """Run one named property against one case."""
    try:
        return CHECKS[name](case)
    except KeyError:
        raise ReproError(
            f"unknown check {name!r}; available: {sorted(CHECKS)}"
        ) from None
