"""Deterministic fuzz-case generation.

Every case is reconstructible from ``(seed, index)`` alone:
``build_case(seed, index)`` seeds its own ``np.random.default_rng([seed,
index])``, so a counterexample repro file only needs those two integers
(the expanded parameters ride along for human inspection, and
:func:`FuzzCase.from_params` rebuilds a case from them directly when the
generator code has since changed).

The kind rotation interleaves plain random workloads with adversarial
families aimed at the analytic boundaries the differential checks guard:

* ``exact_multiple`` — periods at exact integer multiples of a TTRT-like
  base, including very large quotients, where the old absolute-epsilon
  ``floor(P/TTRT + 1e-12)`` rule miscounted token visits.
* ``single_frame`` / sub-frame payloads — messages at or below one frame
  of payload, exercising the ``K_i``/``L_i`` split edges.
* ``n1`` — one-stream sets (no interference, blocking-only).
* ``equal_periods`` — rate-monotonic priority ties.
* ``near_saturation`` — random sets scaled to just under their analytic
  breakdown, where an optimistic analysis bug becomes a simulated
  deadline miss.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.messages.stream import SynchronousStream

__all__ = ["CASE_KINDS", "FuzzCase", "build_case"]


CASE_KINDS: tuple[str, ...] = (
    "random",
    "exact_multiple",
    "single_frame",
    "n1",
    "equal_periods",
    "near_saturation",
)

#: Payload scale applied to ``near_saturation`` cases, as a fraction of
#: the analytic breakdown scale.  Close enough to the edge that even a
#: few-percent optimistic analysis mutation turns into a simulated miss
#: (the mutation smoke demands it), far enough that the (sufficient)
#: criteria hold with float margin on sound code.
NEAR_SATURATION_FRACTION = 0.98


@dataclass(frozen=True)
class FuzzCase:
    """One generated workload plus the ring context to judge it in.

    Attributes:
        kind: generator family (one of :data:`CASE_KINDS`).
        seed: fuzz-run seed the case derives from.
        index: case number within the run; ``(seed, index)`` replays it.
        bandwidth_bps: ring bandwidth shared by both protocols' rings.
        n_stations: ring size (streams sit at stations ``0..n-1``).
        periods_s: stream periods.
        payloads_bits: stream payload lengths.
        ttrt_hint_s: for ``exact_multiple`` cases, the base the periods
            are exact multiples of — checks probe the boundary rule at
            exactly this TTRT.
    """

    kind: str
    seed: int
    index: int
    bandwidth_bps: float
    n_stations: int
    periods_s: tuple[float, ...]
    payloads_bits: tuple[float, ...]
    ttrt_hint_s: float | None = None

    def message_set(self) -> MessageSet:
        """The workload as a :class:`MessageSet` (station ``i`` per stream)."""
        return MessageSet(
            SynchronousStream(period_s=p, payload_bits=c, station=i)
            for i, (p, c) in enumerate(zip(self.periods_s, self.payloads_bits))
        )

    def to_params(self) -> dict:
        """JSON-safe parameter dump (floats round-trip exactly)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "index": self.index,
            "bandwidth_bps": self.bandwidth_bps,
            "n_stations": self.n_stations,
            "periods_s": list(self.periods_s),
            "payloads_bits": list(self.payloads_bits),
            "ttrt_hint_s": self.ttrt_hint_s,
        }

    @staticmethod
    def from_params(params: dict) -> "FuzzCase":
        """Rebuild a case from a :meth:`to_params` dump (JSON round trip)."""
        return FuzzCase(
            kind=params["kind"],
            seed=int(params["seed"]),
            index=int(params["index"]),
            bandwidth_bps=float(params["bandwidth_bps"]),
            n_stations=int(params["n_stations"]),
            periods_s=tuple(float(p) for p in params["periods_s"]),
            payloads_bits=tuple(float(c) for c in params["payloads_bits"]),
            ttrt_hint_s=(
                None if params.get("ttrt_hint_s") is None
                else float(params["ttrt_hint_s"])
            ),
        )

    def with_streams(
        self, periods_s: tuple[float, ...], payloads_bits: tuple[float, ...]
    ) -> "FuzzCase":
        """A copy with a different workload (used by the shrinker)."""
        return replace(
            self,
            periods_s=periods_s,
            payloads_bits=payloads_bits,
            n_stations=max(len(periods_s), 1),
        )


def _random_bandwidth(rng: np.random.Generator) -> float:
    # Log-uniform across the paper's sweep range (4..160 Mb/s), hitting
    # both the F > Θ (low bandwidth) and F < Θ (high bandwidth) regimes.
    return float(10 ** rng.uniform(np.log10(4e6), np.log10(1.6e8)))


def _random_periods(rng: np.random.Generator, n: int) -> np.ndarray:
    # 5..100 ms: the paper's regime, and short enough that a simulated
    # horizon of a few P_max stays within a fuzz-budget event count.
    return 10 ** rng.uniform(np.log10(0.005), np.log10(0.1), size=n)


def _random_payloads(rng: np.random.Generator, n: int) -> np.ndarray:
    return np.round(10 ** rng.uniform(np.log10(1e3), np.log10(2e5), size=n))


def _base_case(kind: str, seed: int, index: int, rng: np.random.Generator) -> FuzzCase:
    if kind == "random":
        n = int(rng.integers(2, 9))
        periods = _random_periods(rng, n)
        payloads = _random_payloads(rng, n)
    elif kind == "exact_multiple":
        n = int(rng.integers(2, 7))
        base = float(10 ** rng.uniform(np.log10(0.002), np.log10(0.02)))
        small = rng.integers(2, 60, size=n)
        # One stream gets a huge quotient whose float division provably
        # lands *below* the integer — the regime where one ulp exceeds
        # any absolute epsilon and only a relative snap recovers the
        # exact multiple.  Scan forward from a random start for a k where
        # fl(fl(k·base)/base) < k (about half of all k qualify).
        k = int(rng.integers(50_000, 200_000))
        for candidate in range(k, k + 512):
            if (candidate * base) / base < candidate:
                k = candidate
                break
        small[int(rng.integers(0, n))] = k
        periods = small.astype(float) * base
        payloads = _random_payloads(rng, n)
        return FuzzCase(
            kind, seed, index, _random_bandwidth(rng), n,
            tuple(float(p) for p in periods),
            tuple(float(c) for c in payloads),
            ttrt_hint_s=base,
        )
    elif kind == "single_frame":
        n = int(rng.integers(1, 7))
        periods = _random_periods(rng, n)
        # At or below one paper frame of payload (512 info bits), down to
        # a single bit: every message is one (possibly short) frame.
        payloads = np.round(10 ** rng.uniform(0.0, np.log10(512.0), size=n))
    elif kind == "n1":
        periods = _random_periods(rng, 1)
        payloads = _random_payloads(rng, 1)
    elif kind == "equal_periods":
        n = int(rng.integers(2, 8))
        periods = np.full(n, float(_random_periods(rng, 1)[0]))
        payloads = _random_payloads(rng, n)
    elif kind == "near_saturation":
        # Many streams, short periods (1..10 ms), low bandwidth: at the
        # breakdown point each message is then only a frame or two, so a
        # single-frame fencepost in an analysis is a tens-of-percent
        # optimism — far past the few-percent conservatism slack between
        # the theorems' worst case and the simulators' realized one, and
        # exactly what the simulator differential must catch.
        n = int(rng.integers(4, 9))
        periods = 10 ** rng.uniform(np.log10(0.001), np.log10(0.01), size=n)
        payloads = _random_payloads(rng, n)
        bandwidth = float(10 ** rng.uniform(np.log10(4e6), np.log10(1.2e7)))
        return FuzzCase(
            kind, seed, index, bandwidth, n,
            tuple(float(p) for p in periods),
            tuple(float(c) for c in payloads),
        )
    else:
        raise ConfigurationError(f"unknown fuzz case kind: {kind!r}")
    return FuzzCase(
        kind, seed, index, _random_bandwidth(rng), max(int(len(periods)), 1),
        tuple(float(p) for p in periods),
        tuple(float(c) for c in payloads),
    )


def _scale_near_saturation(case: FuzzCase, protocol: str) -> FuzzCase:
    """Scale payloads to just under one protocol's analytic breakdown.

    Scaling against a single protocol (they alternate case by case)
    keeps the set genuinely close to *that* theorem's boundary — an
    optimistic bug in its analysis then admits a truly overloaded set
    and the matching simulator misses.  Imported lazily: the analyses
    import nothing from this package, but keeping generators
    import-light avoids cycles through :mod:`repro.verify.checks`.
    """
    from repro.analysis.breakdown import breakdown_scale
    from repro.analysis.pdp import PDPAnalysis, PDPVariant
    from repro.analysis.ttp import TTPAnalysis
    from repro.network.standards import (
        fddi_ring,
        ieee_802_5_ring,
        paper_frame_format,
    )

    frame = paper_frame_format()
    message_set = case.message_set()
    scale = 0.0
    if protocol == "pdp":
        pdp = PDPAnalysis(
            ieee_802_5_ring(case.bandwidth_bps, n_stations=case.n_stations),
            frame,
            PDPVariant.STANDARD,
        )
        scale, _ = breakdown_scale(message_set, pdp, rel_tol=1e-4)
    else:
        ttp = TTPAnalysis(
            fddi_ring(case.bandwidth_bps, n_stations=case.n_stations), frame
        )
        try:
            scale = ttp.saturation_scale(message_set)
        except Exception:
            scale = 0.0  # unallocatable (q_i < 2): leave the case as is
    if not (0 < scale < float("inf")):
        return case
    factor = NEAR_SATURATION_FRACTION * scale
    payloads = tuple(float(c * factor) for c in case.payloads_bits)
    return replace(case, payloads_bits=payloads)


def build_case(seed: int, index: int) -> FuzzCase:
    """Deterministically (re)build fuzz case ``index`` of run ``seed``."""
    kind = CASE_KINDS[index % len(CASE_KINDS)]
    rng = np.random.default_rng([seed, index])
    case = _base_case(kind, seed, index, rng)
    if kind == "near_saturation":
        # Alternate the targeted protocol deterministically by rotation.
        protocol = "pdp" if (index // len(CASE_KINDS)) % 2 == 0 else "ttp"
        case = _scale_near_saturation(case, protocol)
    return case
