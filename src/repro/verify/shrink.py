"""Greedy minimization of a failing fuzz case.

Given a case and the check it violates, :func:`shrink_case` searches for
the smallest workload that still fails:

1. drop whole streams, largest set reductions first;
2. round the surviving periods and payloads to short decimal literals
   (so the pinned counterexample reads like a hand-written test);
3. halve payloads toward zero.

Every candidate is re-judged with the *same* check; a transformation is
kept only when the violation persists, so the result provably still
fails.  The search is deterministic and bounded (each accepted step
strictly reduces a finite measure).
"""

from __future__ import annotations

from typing import Callable

from repro.verify.checks import Violation
from repro.verify.generators import FuzzCase

__all__ = ["shrink_case"]


def _still_fails(
    check: Callable[[FuzzCase], Violation | None], case: FuzzCase
) -> bool:
    if len(case.periods_s) == 0:
        return False
    try:
        return check(case) is not None
    except Exception:
        # A shrink candidate may leave the valid-input domain (e.g. an
        # unallocatable TTP set raising); that is not the violation we
        # are chasing, so reject the candidate.
        return False


def _round_sig(value: float, digits: int) -> float:
    if value == 0:
        return 0.0
    from math import floor, log10

    return round(value, -int(floor(log10(abs(value)))) + digits - 1)


def shrink_case(
    case: FuzzCase, check: Callable[[FuzzCase], Violation | None]
) -> FuzzCase:
    """The smallest variant of ``case`` on which ``check`` still fails."""
    current = case

    # Phase 1: drop streams while the failure persists.
    improved = True
    while improved and len(current.periods_s) > 1:
        improved = False
        for i in range(len(current.periods_s)):
            periods = tuple(
                p for j, p in enumerate(current.periods_s) if j != i
            )
            payloads = tuple(
                c for j, c in enumerate(current.payloads_bits) if j != i
            )
            candidate = current.with_streams(periods, payloads)
            if _still_fails(check, candidate):
                current = candidate
                improved = True
                break

    # Phase 2: simplify the numbers (3 then 1 significant digits).
    for digits in (3, 1):
        periods = tuple(_round_sig(p, digits) for p in current.periods_s)
        payloads = tuple(_round_sig(c, digits) for c in current.payloads_bits)
        candidate = current.with_streams(periods, payloads)
        if candidate != current and _still_fails(check, candidate):
            current = candidate

    # Phase 3: halve payloads while the failure persists.
    improved = True
    while improved:
        improved = False
        for i in range(len(current.payloads_bits)):
            payloads = list(current.payloads_bits)
            if payloads[i] < 2.0:
                continue
            payloads[i] = payloads[i] / 2.0
            candidate = current.with_streams(
                current.periods_s, tuple(payloads)
            )
            if _still_fails(check, candidate):
                current = candidate
                improved = True
    return current
