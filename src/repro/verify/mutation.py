"""Mutation smoke: prove the fuzz harness can actually catch bugs.

Each mutant re-introduces a realistic off-by-one or boundary bug into a
live code path (by hot-patching the defining module, the way the real
bug would have shipped), runs a short fuzz campaign, and records whether
any property fired.  A harness that cannot flag these deliberate bugs
would be giving vacuous green lights — ``make fuzz-quick`` therefore
requires **every** mutant to be detected.

The mutants, and the property expected to catch each:

``boundary_absolute_epsilon``
    The scalar token-visit rule reverts to the historical
    ``floor(P/TTRT + 1e-12)``, which undercounts exact multiples at
    large quotients → caught by ``scalar_vector_visits`` (the vectorized
    rule still snaps correctly).
``pdp_short_frame_dropped``
    The augmented length ``C'_i`` counts only the ``L_i`` full frames,
    dropping the short last frame — a fencepost on the frame count,
    injected into the scalar **and** vectorized paths so no
    scalar/vector differential can notice → the analysis is optimistic
    by up to a frame per message, and near-saturation cases scaled
    against the mutated analysis miss deadlines in simulation
    (``pdp_vs_sim``).
``ttp_budget_off_by_one``
    The local scheme allocates ``h_i = C_i/q_i + F_ovhd`` instead of
    ``C_i/(q_i - 1)`` — the classic misreading of equation (7) → the
    certified allocation is too small and the TTP simulator misses
    (``ttp_vs_sim``); the incremental admission engine, which computes
    its ``h`` terms inline, also diverges from the mutated oracle
    (``admission_incremental_equiv``), and whichever case comes first
    in the stream reports the detection.
``split_counts_overshoot``
    The vectorized frame split computes ``K_i = floor(ratio) + 1``
    unconditionally, overcounting frames at exact info-field multiples →
    caught bit-for-bit by ``scalar_vector_split`` /
    ``scalar_vector_augmented``.
``pdp_fastpath_short_frame``
    The PDP fast path's short-last-frame occupancy drops the ``Θ`` floor
    (``(chunk + ovh)/bw`` instead of ``max(…, Θ)``) — undercharging
    every sub-frame tail in the high-bandwidth regime where wire time
    beats the ring latency → caught bit-for-bit by
    ``pdp_fastpath_equiv`` against the scalar oracle.
``incremental_stale_level``
    The incremental admission engine treats the candidate's *own*
    priority level as reusable base state (``position + 1`` instead of
    ``position`` snapshot levels) — the classic fencepost on "levels
    above mine are unaffected".  A light probe's own-level pass is
    snapshotted under the base's key, and a later heavier probe at the
    same level reuses the stale verdict instead of re-testing → caught
    by ``admission_incremental_equiv``'s boundary-crossing probe
    ladders against the scalar oracle.
``fault_recovery_swallowed``
    The fault injector consumes ring fault events (the counters still
    tick) but charges zero recovery stall — a lossy-medium run silently
    degrades to a fault-free one, so every soundness verdict against it
    is vacuous → caught by ``fault_plan_determinism``'s positive-rate
    probe, which asserts that consumed token losses charge strictly
    positive recovery time.
``router_stale_lease``
    The cluster budget ledger sizes grants from a stale view of the
    fleet — headroom computed as if no other shard held a lease — so
    several workers are granted the same budget and the fleet can
    jointly admit past the global utilization cap → caught by
    ``cluster_budget_sound``'s demand-overcommit churn, which observes
    the granted total exceeding the cap.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.obs import logging as obslog
from repro.verify.fuzzer import FuzzConfig, FuzzReport, run_fuzz

__all__ = ["MUTANTS", "MutationReport", "run_mutation_smoke"]


# -- the deliberate bugs --------------------------------------------------------


def _buggy_token_visit_count(period_s: float, ttrt_s: float) -> int:
    return int(math.floor(period_s / ttrt_s + 1e-12))


def _buggy_pdp_augmented_length(payload_bits, ring, frame, variant):
    from repro.analysis.pdp import PDPVariant
    from repro.errors import MessageSetError

    if payload_bits < 0:
        raise MessageSetError("payload must be non-negative")
    if payload_bits == 0:
        return 0.0
    theta = ring.theta
    split = frame.split(payload_bits)
    l_i = split.full_frames  # BUG: every K_i below should be split.total_frames
    frame_time = frame.frame_time(ring.bandwidth_bps)
    if variant is PDPVariant.STANDARD:
        token_cost = l_i * theta / 2.0
    else:
        token_cost = theta / 2.0
    if frame_time <= theta:
        return l_i * theta + token_cost
    return l_i * frame_time + token_cost


def _buggy_pdp_augmented_lengths(payloads_bits, ring, frame, variant):
    from repro.analysis.pdp import PDPVariant
    from repro.errors import MessageSetError

    arr = np.asarray(payloads_bits, dtype=float)
    if np.any(arr < 0):
        raise MessageSetError("payloads must be non-negative")
    theta = ring.theta
    _, full = frame.split_counts(arr)  # BUG: ignores the K_i column
    frame_time = frame.frame_time(ring.bandwidth_bps)
    if variant is PDPVariant.STANDARD:
        token_cost = full * (theta / 2.0)
    else:
        token_cost = np.where(arr > 0, theta / 2.0, 0.0)
    if frame_time <= theta:
        return full * theta + token_cost
    return full * frame_time + token_cost


def _buggy_local_scheme_allocation(
    message_set, ttrt_s, bandwidth_bps, frame_overhead_time_s, delta_s
):
    from repro.analysis import boundary as boundary_mod
    from repro.analysis.ttp import TTPAllocation
    from repro.errors import AllocationError

    visits, bandwidths, augmented = [], [], []
    for stream in message_set:
        q_i = boundary_mod.token_visit_count(stream.period_s, ttrt_s)
        if q_i < 2:
            raise AllocationError("q_i < 2")
        c_i = stream.payload_time(bandwidth_bps)
        visits.append(q_i)
        bandwidths.append(c_i / q_i + frame_overhead_time_s)  # BUG: q, not q-1
        augmented.append(c_i + (q_i - 1) * frame_overhead_time_s)
    return TTPAllocation(
        ttrt_s=ttrt_s,
        token_visits=tuple(visits),
        bandwidths_s=tuple(bandwidths),
        augmented_lengths_s=tuple(augmented),
        delta_s=delta_s,
    )


def _buggy_split_counts(self, payloads_bits):
    from repro.errors import ConfigurationError

    arr = np.asarray(payloads_bits, dtype=float)
    if np.any(arr < 0):
        raise ConfigurationError("payloads must be non-negative")
    ratio = arr / self.info_bits
    full = np.floor(ratio)
    total = full + 1.0  # BUG: overcounts exact info-field multiples
    zero = arr == 0
    if np.any(zero):
        full = np.where(zero, 0.0, full)
        total = np.where(zero, 0.0, total)
    return total, full


def _buggy_short_frame_occupancy(chunk_bits, overhead_bits, bandwidth_bps, theta):
    return (chunk_bits + overhead_bits) / bandwidth_bps  # BUG: drops the Θ floor


def _buggy_snapshot_reusable_levels(position):
    return position + 1  # BUG: counts the candidate's own level as reusable


def _buggy_stall_cost(recovery_time_s):
    return 0.0  # BUG: consumes the fault event but never charges recovery


def _buggy_grantable(cap, outstanding):
    return max(0.0, cap)  # BUG: stale view — ignores outstanding leases


def _patch_sites(mutant: str) -> list[tuple[object, str, object]]:
    """(owner, attribute, replacement) triples for one mutant.

    Patches land on every module that bound the original name at import
    time, exactly where the bug would live had it been committed.
    """
    from repro.analysis import boundary as boundary_mod
    from repro.analysis import bounds as bounds_mod
    from repro.analysis import pdp as pdp_mod
    from repro.analysis import sba as sba_mod
    from repro.analysis import ttp as ttp_mod
    from repro.network import frames as frames_mod
    from repro.sim import fastpath as fastpath_mod

    if mutant == "boundary_absolute_epsilon":
        return [
            (boundary_mod, "token_visit_count", _buggy_token_visit_count),
            (ttp_mod, "token_visit_count", _buggy_token_visit_count),
            (sba_mod, "token_visit_count", _buggy_token_visit_count),
            (bounds_mod, "token_visit_count", _buggy_token_visit_count),
        ]
    if mutant == "pdp_short_frame_dropped":
        return [
            (pdp_mod, "pdp_augmented_length", _buggy_pdp_augmented_length),
            (pdp_mod, "pdp_augmented_lengths", _buggy_pdp_augmented_lengths),
        ]
    if mutant == "ttp_budget_off_by_one":
        return [
            (ttp_mod, "local_scheme_allocation", _buggy_local_scheme_allocation)
        ]
    if mutant == "split_counts_overshoot":
        return [
            (frames_mod.FrameFormat, "split_counts", _buggy_split_counts)
        ]
    if mutant == "pdp_fastpath_short_frame":
        return [
            (fastpath_mod, "_short_frame_occupancy", _buggy_short_frame_occupancy)
        ]
    if mutant == "incremental_stale_level":
        from repro import admission_incremental as admission_incremental_mod

        return [
            (
                admission_incremental_mod,
                "_snapshot_reusable_levels",
                _buggy_snapshot_reusable_levels,
            )
        ]
    if mutant == "fault_recovery_swallowed":
        from repro.faults import injector as faults_injector_mod

        return [(faults_injector_mod, "_stall_cost", _buggy_stall_cost)]
    if mutant == "router_stale_lease":
        from repro.cluster import budget as cluster_budget_mod

        return [(cluster_budget_mod, "_grantable", _buggy_grantable)]
    raise KeyError(mutant)


MUTANTS: tuple[str, ...] = (
    "boundary_absolute_epsilon",
    "pdp_short_frame_dropped",
    "ttp_budget_off_by_one",
    "split_counts_overshoot",
    "pdp_fastpath_short_frame",
    "incremental_stale_level",
    "fault_recovery_swallowed",
    "router_stale_lease",
)


@contextlib.contextmanager
def inject_mutant(mutant: str):
    """Apply one deliberate bug for the duration of the context.

    The content-addressed result cache is dropped on entry *and* exit:
    a mutant changes results without changing inputs, so entries written
    while it is live would poison identical-keyed runs after the
    restore (and vice versa).
    """
    from repro import cache as cache_mod

    sites = _patch_sites(mutant)
    saved = [(owner, attr, getattr(owner, attr)) for owner, attr, _ in sites]
    cache_mod.clear()
    try:
        for owner, attr, replacement in sites:
            setattr(owner, attr, replacement)
        yield
    finally:
        for owner, attr, original in saved:
            setattr(owner, attr, original)
        cache_mod.clear()


# -- the smoke run --------------------------------------------------------------


@dataclass
class MutationReport:
    """Detection outcome per mutant."""

    seed: int
    n_cases: int
    detected: dict[str, bool] = field(default_factory=dict)
    fired_checks: dict[str, tuple[str, ...]] = field(default_factory=dict)
    reports: dict[str, FuzzReport] = field(default_factory=dict)

    @property
    def all_detected(self) -> bool:
        return bool(self.detected) and all(self.detected.values())

    def summary(self) -> str:
        """Per-mutant verdict table with the properties that fired."""
        lines = [
            f"mutation smoke (seed={self.seed}, {self.n_cases} cases/mutant): "
            f"{sum(self.detected.values())}/{len(self.detected)} mutants detected"
        ]
        for mutant in self.detected:
            verdict = "DETECTED" if self.detected[mutant] else "MISSED"
            via = ", ".join(self.fired_checks[mutant]) or "-"
            lines.append(f"  {verdict:<8}  {mutant}  (via: {via})")
        return "\n".join(lines)


def run_mutation_smoke(
    seed: int = 20_260_704, n_cases: int = 18
) -> MutationReport:
    """Inject each mutant and assert the fuzz harness notices.

    The campaign per mutant is short (shrinking is disabled — detection,
    not minimization, is the question) but runs the *full* property set,
    including the simulators, under the same deterministic case stream a
    real campaign would see.
    """
    log = obslog.get_logger("verify.mutation")
    report = MutationReport(seed=seed, n_cases=n_cases)
    for mutant in MUTANTS:
        with inject_mutant(mutant):
            fuzz = run_fuzz(
                FuzzConfig(
                    seed=seed, n_cases=n_cases, shrink=False, max_violations=1
                )
            )
        fired = tuple(sorted({v.check for v in fuzz.violations}))
        report.detected[mutant] = not fuzz.ok
        report.fired_checks[mutant] = fired
        report.reports[mutant] = fuzz
        log.info(
            "mutant %s: %s", mutant,
            "detected via " + ", ".join(fired) if fired else "MISSED",
            extra={"mutant": mutant, "detected": not fuzz.ok},
        )
    return report
