"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InfeasibleParameterError",
    "MessageSetError",
    "AdmissionError",
    "AllocationError",
    "SimulationError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A network, protocol, or experiment parameter is invalid.

    Raised eagerly at object-construction time so that a bad parameter is
    reported where it was supplied rather than deep inside an analysis.
    """


class InfeasibleParameterError(ReproError):
    """A derived protocol parameter has no feasible value.

    Example: the timed token protocol requires ``TTRT <= P_min / 2``; if the
    per-rotation overhead already exceeds every feasible TTRT there is no
    valid configuration, and allocation must fail loudly instead of
    returning a nonsense bandwidth.
    """


class MessageSetError(ReproError):
    """A synchronous message set violates the model of Section 3.2.

    Covers non-positive periods, negative lengths, and empty sets where a
    non-empty one is required.
    """


class AdmissionError(MessageSetError):
    """An admission-control operation is invalid in the current state.

    Raised by :class:`repro.admission.AdmissionController` when a release
    names a stream that is unknown or already released.  Subclasses
    :class:`MessageSetError` so callers written against the pre-service
    API keep working, while the service layer can catch admission-state
    faults specifically (and map them to a 404 instead of a 500).
    """


class AllocationError(ReproError):
    """A synchronous bandwidth allocation scheme cannot allocate.

    Raised by the TTP allocation schemes when a message set cannot receive
    any valid synchronous capacities (for example ``floor(P_i/TTRT) < 2``
    under the local scheme).
    """


class SimulationError(ReproError):
    """The discrete-event simulator detected an internal inconsistency.

    These indicate bugs (two tokens on the ring, events scheduled in the
    past), never ordinary protocol behaviour such as a deadline miss.
    """


class ServiceError(ReproError):
    """The admission service rejected a request at the transport layer.

    Covers malformed wire payloads, unknown endpoints, and load-shedding
    backpressure (HTTP 429) — faults of the *request*, never of the
    admission decision logic.
    """
