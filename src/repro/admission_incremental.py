"""Incremental admission engine: O(changed-priority-levels) re-testing.

Both schedulability criteria are *priority monotone*, which is what makes
online admission incremental:

* **Theorem 4.1 (PDP).**  The exact-test verdict for priority level ``i``
  depends only on the streams at positions ``<= i`` of the rate-monotonic
  order (the interference matrix columns above ``i`` are zero on level
  ``i``'s scheduling points).  Admitting a candidate at position ``i``
  therefore leaves every level ``< i`` verdict unchanged — those verdicts
  are snapshotted per base population and reused, and only levels
  ``>= i`` are re-evaluated (one sliced matrix product over the cached
  :class:`~repro.analysis.rm.ExactRMTest` structure instead of the full
  stacked evaluation).
* **Theorem 5.1 (TTP).**  Equation (13) is a per-stream sum
  ``Σ h_i <= TTRT - δ``; for a fixed TTRT the base population's partial
  sum is snapshotted and a candidate costs one ``h`` term.  The TTRT is
  policy-selected *per candidate set*, so the snapshot is keyed by TTRT
  (the sqrt rule usually lands on the same value across candidates
  sharing a base).

On release, schedulability can only improve (both criteria are monotone
in the population), so no test runs at all; the snapshot is invalidated
lazily — a version bump now, a rebuild on the next decision that needs
it.  Rebuilds are mostly cache hits: every per-level verdict is also
published to the content-addressed result cache under a **canonical
sorted-prefix key** (:func:`repro.cache.keys.chained_prefix_keys`), so a
population reached twice — admit/release churn, permutation-equivalent
histories, even across processes via the disk tier — reuses the levels it
shares with any previously seen population.

Decisions are pinned to the batch oracle
(:meth:`~repro.admission.AdmissionController._exact_verdicts` on the
plain controller) by the ``admission_incremental_equiv`` fuzz property
over randomized admit/release/check interleavings; like the batched
exact test and the simulator fast paths, the incremental engine is pure
performance work and may not move a verdict.

Engine selection mirrors :mod:`repro.sim.dispatch`: explicit argument >
:func:`set_default_engine` (the runner's ``--admission-engine``) >
``REPRO_ADMISSION_ENGINE`` > ``auto``.  ``auto`` currently always picks
the incremental engine — it supports both analyses and falls back to the
oracle *per operation* where it cannot answer (counted in
``admission.incremental.fallbacks``) — leaving ``scalar`` as the forced
oracle path.
"""

from __future__ import annotations

import enum
import os

import numpy as np

from repro.admission import AdmissionController, AdmissionPolicy, ReleaseOutcome
from repro.analysis import boundary as boundary_mod
from repro.analysis.pdp import PDPAnalysis
from repro.analysis.rm import ExactRMTest
from repro.cache.keys import prefix_chain_extend, prefix_chain_seed
from repro.cache.store import result_cache
from repro.errors import ConfigurationError
from repro.messages.message_set import MessageSet
from repro.obs import metrics as _metrics
from repro.obs import tracing

__all__ = [
    "AdmissionEngine",
    "set_default_engine",
    "resolve_engine",
    "build_admission_controller",
    "IncrementalAdmissionController",
]

_M_EVALUATIONS = _metrics.counter("admission.incremental.evaluations")
_M_LEVELS_REUSED = _metrics.counter("admission.incremental.levels_reused")
_M_LEVELS_COMPUTED = _metrics.counter("admission.incremental.levels_computed")
_M_INVALIDATIONS = _metrics.counter("admission.incremental.invalidations")
_M_FALLBACKS = _metrics.counter("admission.incremental.fallbacks")


class AdmissionEngine(enum.Enum):
    """Which implementation answers exact admission tests."""

    SCALAR = "scalar"
    INCREMENTAL = "incremental"
    AUTO = "auto"


_DEFAULT_ENGINE: AdmissionEngine | None = None


def _coerce(engine: "AdmissionEngine | str") -> AdmissionEngine:
    if isinstance(engine, AdmissionEngine):
        return engine
    try:
        return AdmissionEngine(str(engine).lower())
    except ValueError:
        raise ConfigurationError(
            f"unknown admission engine {engine!r}; "
            f"expected one of {[e.value for e in AdmissionEngine]}"
        ) from None


def set_default_engine(engine: "AdmissionEngine | str | None") -> None:
    """Set the process default (the runner's ``--admission-engine``)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None if engine is None else _coerce(engine)


def resolve_engine(
    engine: "AdmissionEngine | str | None" = None,
) -> AdmissionEngine:
    """Explicit argument > process default > ``REPRO_ADMISSION_ENGINE`` > auto."""
    if engine is not None:
        return _coerce(engine)
    if _DEFAULT_ENGINE is not None:
        return _DEFAULT_ENGINE
    env = os.environ.get("REPRO_ADMISSION_ENGINE")
    if env:
        return _coerce(env)
    return AdmissionEngine.AUTO


def build_admission_controller(
    analysis,
    policy: AdmissionPolicy = AdmissionPolicy.HYBRID,
    *,
    cache_namespace: str | None = None,
    engine: "AdmissionEngine | str | None" = None,
    utilization_cap: float | None = None,
) -> AdmissionController:
    """An admission controller behind the engine switch.

    ``scalar`` forces the plain :class:`AdmissionController` (the batch
    oracle); ``incremental`` and ``auto`` build an
    :class:`IncrementalAdmissionController` — ``auto`` is not a distinct
    engine, it names "incremental where possible", and the incremental
    controller already falls back to the oracle per operation where the
    snapshot cannot answer.  ``utilization_cap`` installs the budget
    gate either way (the gate lives in the shared base class, ahead of
    the engine hook, so both engines apply it identically).
    """
    choice = resolve_engine(engine)
    if choice is AdmissionEngine.SCALAR:
        return AdmissionController(
            analysis,
            policy,
            cache_namespace=cache_namespace,
            utilization_cap=utilization_cap,
        )
    return IncrementalAdmissionController(
        analysis,
        policy,
        cache_namespace=cache_namespace,
        utilization_cap=utilization_cap,
    )


def _snapshot_reusable_levels(position: int) -> int:
    """How many leading priority levels a candidate inherits from its base.

    A candidate inserted at rate-monotonic position ``i`` leaves exactly
    the levels ``0 .. i-1`` untouched (its interference column is zero on
    their scheduling points), so ``i`` levels are reusable from the
    per-base snapshot.  Level ``i`` itself — the candidate's own level —
    must always be evaluated fresh.
    """
    return position


def _level_verdicts(
    test: ExactRMTest, costs: np.ndarray, blocking: float, lo: int, hi: int
) -> np.ndarray:
    """Per-level exact-test verdicts for levels ``lo .. hi-1``, sliced.

    One matrix product over just those levels' scheduling-point rows of
    the precomputed stacked structure, against the same thresholds the
    full evaluation uses — the per-level analogue of
    :meth:`ExactRMTest._evaluate`.
    """
    if hi <= lo:
        return np.empty(0, dtype=bool)
    starts = test._segment_starts
    a = int(starts[lo])
    b = int(starts[hi]) if hi < test.n_streams else test._flat_points.size
    demand = test._matrix[a:b] @ costs + blocking
    ok = demand <= test._flat_thresholds[a:b]
    return np.logical_or.reduceat(ok, starts[lo:hi] - a)


class IncrementalAdmissionController(AdmissionController):
    """:class:`AdmissionController` with per-level incremental evaluation.

    Drop-in replacement: same constructor, same operations, same
    decisions (pinned by the ``admission_incremental_equiv`` fuzz
    property).  What changes is the cost profile — admits re-test only
    the levels at or below the candidate's priority, releases test
    nothing, and per-level verdicts are shared through the result cache
    under canonical sorted-prefix keys so populations revisit past work
    instead of recomputing it.

    The snapshot is guarded by a version counter bumped on every state
    mutation (committed admit, successful release) and rebuilt lazily on
    the next decision; all access happens under the controller lock the
    base class already holds around every decision.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._base_version = 0
        self._snap_version = 0
        self._pdp_level_ok: dict[int, bool] = {}
        self._ttp_partials: dict[float, tuple[float, bool]] = {}
        # The base population's sorted-prefix cache keys, rebuilt lazily
        # once per base version (one running SHA-256 per rebuild).
        self._chain: list[str] | None = None
        # Candidates whose incremental verdict was all-levels-True at the
        # current snapshot version, keyed by (period, payload): if one is
        # committed, its verdicts *are* the new base's snapshot.
        self._promotable: dict[tuple[float, float], tuple] = {}

    @property
    def engine_name(self) -> str:
        """See :attr:`AdmissionController.engine_name`."""
        return "incremental"

    def _cache_key(self, base, candidate):
        # No per-decision cache entries: the per-level prefix cache
        # subsumes them with strictly better sharing (a level verdict is
        # reused by every candidate above it and by every base that
        # extends the same sorted prefix, where a (base, candidate)
        # decision key is reused only by its exact repeat).  Stacking
        # both would double the writes and, under churn, flood the
        # counters with decision misses the level cache then answers.
        return None

    # -- snapshot lifecycle ----------------------------------------------------

    def _snapshot(self) -> None:
        """Lazily invalidate on version mismatch; lock held by callers."""
        if self._snap_version != self._base_version:
            self._snap_version = self._base_version
            self._pdp_level_ok.clear()
            self._ttp_partials.clear()
            self._promotable.clear()
            self._chain = None
            _M_INVALIDATIONS.inc()

    def _commit(self, period_s, payload_bits, decision):
        promo = None
        if self._snap_version == self._base_version:
            promo = self._promotable.get((period_s, payload_bits))
        result = super()._commit(period_s, payload_bits, decision)
        self._base_version += 1
        self._chain = None
        if promo is not None:
            # The committed candidate passed every level of its own
            # candidate set, and that set *is* the new base — so its
            # verdicts carry over as the new snapshot instead of being
            # invalidated (the common admit path never rebuilds).
            self._snap_version = self._base_version
            self._promotable.clear()
            if promo[0] == "pdp":
                self._pdp_level_ok = {j: True for j in range(promo[1])}
                # Publish the new base's (all-True) prefix levels so a
                # later rebuild — release churn, another process via the
                # disk tier — hits instead of recomputing.  Publishing
                # here, on the rare admit, keeps the hot check path free
                # of cache writes entirely.
                cache, namespace = self._level_cache()
                if cache is not None:
                    for key in self._prefix_chain():
                        cache.put(key, True, namespace=namespace)
            else:
                self._ttp_partials = {promo[1]: (promo[2], True)}
        return result

    def release(self, stream_id: int, idempotent: bool = False) -> ReleaseOutcome:
        """See :meth:`AdmissionController.release`; here a successful
        release only bumps the snapshot version — schedulability can
        only improve when a stream leaves, so no test runs and the
        snapshot rebuild is deferred to the next decision needing it."""
        outcome = super().release(stream_id, idempotent=idempotent)
        if outcome.released:
            self._base_version += 1
            self._chain = None
        return outcome

    # -- the engine hook --------------------------------------------------------

    def _exact_verdicts(self, candidates: "list[MessageSet]"):
        self._snapshot()
        if isinstance(self._analysis, PDPAnalysis):
            return [self._pdp_verdict(ms) for ms in candidates]
        return [self._ttp_verdict(ms) for ms in candidates]

    # -- PDP: per-level sliced evaluation --------------------------------------

    def _level_cache(self):
        """(cache, namespace) for per-level verdicts, or (None, None)."""
        if self._cache_signature is None:
            return None, None
        return result_cache(), self._cache_namespace

    def _prefix_chain(self) -> list[str]:
        """The base population's canonical sorted-prefix keys.

        ``keys[j]`` is the cache key of the base's first ``j + 1``
        rate-monotonic streams (a candidate sorting at position ``i``
        shares exactly the first ``i`` of them).  Rebuilt lazily once
        per base version, one running SHA-256 for the whole vector.
        """
        chain = self._chain
        if chain is None:
            digest = prefix_chain_seed(
                {"admission_level": 1, "signature": self._cache_signature}
            )
            chain = self._chain = [
                prefix_chain_extend(digest, s.period_s, s.payload_bits)
                for s in sorted(self._streams.values())
            ]
        return chain

    def _pdp_verdict(self, ms: MessageSet) -> bool:
        analysis = self._analysis
        ordered = ms.rate_monotonic()
        members = ordered.streams
        n_levels = len(members)
        candidate = ms.streams[-1]
        position = next(k for k, s in enumerate(members) if s is candidate)
        test = analysis._exact_test_for(ordered)
        costs = analysis.augmented_lengths(ordered)
        blocking = analysis.blocking
        _M_EVALUATIONS.inc()

        cache, namespace = self._level_cache()
        snap = self._pdp_level_ok
        reusable = min(_snapshot_reusable_levels(position), n_levels - 1)

        missing = [j for j in range(reusable) if j not in snap]
        reused = reusable - len(missing)
        base_keys = None
        if missing and cache is not None:
            # For levels < position the candidate set's prefixes are the
            # base population's own sorted prefixes, so snapshot rebuilds
            # hit entries written by any earlier permutation-equivalent
            # population (and by the suffix publication below).
            base_keys = self._prefix_chain()
            still: list[int] = []
            for j in missing:
                hit = cache.get(base_keys[j], namespace=namespace)
                if hit is None:
                    still.append(j)
                else:
                    snap[j] = bool(hit)
                    reused += 1
            missing = still
        computed = len(missing)
        lo = 0
        while lo < computed:
            hi = lo + 1
            while hi < computed and missing[hi] == missing[hi - 1] + 1:
                hi += 1
            fresh = _level_verdicts(
                test, costs, blocking, missing[lo], missing[hi - 1] + 1
            )
            for j, ok in zip(missing[lo:hi], fresh):
                verdict = bool(ok)
                snap[j] = verdict
                if base_keys is not None:
                    cache.put(base_keys[j], verdict, namespace=namespace)
            lo = hi
        if reused:
            _M_LEVELS_REUSED.inc(reused)
            tracing.add(levels_reused=reused)
        if computed:
            _M_LEVELS_COMPUTED.inc(computed)
            tracing.add(levels_computed=computed)
        if not all(snap[j] for j in range(reusable)):
            return False

        fresh = _level_verdicts(test, costs, blocking, reusable, n_levels)
        _M_LEVELS_COMPUTED.inc(n_levels - reusable)
        tracing.add(levels_computed=n_levels - reusable)
        if bool(fresh.all()):
            self._promotable[(candidate.period_s, candidate.payload_bits)] = (
                "pdp",
                n_levels,
            )
            return True
        return False

    # -- TTP: partial-sum snapshot ----------------------------------------------

    def _ttp_verdict(self, ms: MessageSet) -> bool:
        analysis = self._analysis
        members = ms.streams
        candidate = members[-1]
        base = members[:-1]
        ttrt = analysis.select_ttrt(ms)
        if ttrt <= 0:
            # The allocator rejects non-positive TTRTs with a typed
            # error; route through the oracle so the exception matches.
            _M_FALLBACKS.inc()
            tracing.add(fallbacks=1)
            return bool(analysis.is_schedulable_many([ms])[0])
        _M_EVALUATIONS.inc()

        entry = self._ttp_partials.get(ttrt)
        if entry is None:
            bandwidth = analysis.ring.bandwidth_bps
            f_ovhd = analysis.frame_overhead_time
            partial = 0.0
            allocatable = True
            for stream in base:
                q_i = boundary_mod.token_visit_count(stream.period_s, ttrt)
                if q_i < 2:
                    allocatable = False
                    break
                # Same term, same left-to-right accumulation order as
                # ``sum(TTPAllocation.bandwidths_s)`` over the candidate
                # set (base order is construction order there too), so
                # the total below is bit-identical to the oracle's.
                partial = partial + (
                    stream.payload_time(bandwidth) / (q_i - 1) + f_ovhd
                )
            entry = (partial, allocatable)
            self._ttp_partials[ttrt] = entry
            _M_LEVELS_COMPUTED.inc(len(base))
            tracing.add(levels_computed=len(base))
        else:
            _M_LEVELS_REUSED.inc(len(base))
            tracing.add(levels_reused=len(base))
        partial, allocatable = entry
        if not allocatable:
            return False
        q_c = boundary_mod.token_visit_count(candidate.period_s, ttrt)
        if q_c < 2:
            return False
        h_c = (
            candidate.payload_time(analysis.ring.bandwidth_bps) / (q_c - 1)
            + analysis.frame_overhead_time
        )
        total = partial + h_c
        verdict = (ttrt - analysis.delta - total) >= -1e-12 * max(ttrt, 1.0)
        if verdict:
            # ``total`` accumulated the base terms left-to-right and then
            # the candidate's — exactly the new base's partial sum if this
            # candidate is committed (the base class appends it last).
            self._promotable[(candidate.period_s, candidate.payload_bits)] = (
                "ttp",
                ttrt,
                total,
            )
        return verdict
