"""The admission-control service layer (USAGE.md §14).

The library's schedulability criteria answer *offline* questions; this
package serves the *online* one — "can this stream join the ring right
now?" — over JSON/HTTP, fast enough to sit in a connection-setup path:

* :mod:`repro.service.protocol` — wire schema, :class:`ServiceConfig`,
  controller construction;
* :mod:`repro.service.batcher` — dynamic micro-batching into
  :meth:`~repro.admission.AdmissionController.process_batch`;
* :mod:`repro.service.server` — the asyncio HTTP server with rate
  limiting, load shedding, and graceful drain;
* :mod:`repro.service.client` — blocking and asyncio clients;
* :mod:`repro.service.loadgen` — the closed-loop load generator behind
  ``runner loadgen`` and ``make bench-service``.

Everything is stdlib + numpy; there is no new dependency surface.
"""

from repro.service.batcher import MicroBatcher, QueueFullError
from repro.service.client import AsyncServiceClient, Backoff, ServiceClient
from repro.service.loadgen import LoadConfig, LoadReport, run_load
from repro.service.protocol import ServiceConfig, build_controller
from repro.service.server import AdmissionServer

__all__ = [
    "AdmissionServer",
    "AsyncServiceClient",
    "Backoff",
    "LoadConfig",
    "LoadReport",
    "MicroBatcher",
    "QueueFullError",
    "ServiceClient",
    "ServiceConfig",
    "build_controller",
    "run_load",
]
