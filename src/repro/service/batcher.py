"""Dynamic micro-batching dispatcher for the admission service.

Concurrent requests are coalesced into one
:meth:`~repro.admission.AdmissionController.process_batch` call: the
dispatcher takes the first queued operation, then greedily drains
whatever else is already queued (up to ``batch_max``) and dispatches
immediately.  Batching emerges from backpressure alone — operations
pile up while the previous batch is on the worker thread and ship
together — so an idle service adds zero artificial latency, while under
load one stacked exact-test evaluation amortizes over up to
``batch_max`` requests.

Correctness is delegated entirely to the controller:
``process_batch`` serializes its operations in arrival order, so batching
is invisible in the results — only in the throughput.

Backpressure: the intake queue is bounded at ``queue_limit``.
:meth:`MicroBatcher.submit` never blocks the event loop waiting for
room; a full queue raises :class:`QueueFullError` immediately, carrying a
``retry_after_s`` hint, and the server maps that to **429**.  Shed
requests were never evaluated — no admission state is consumed.

The batch itself runs on a dedicated single-thread executor: admission
decisions are CPU-bound numpy work that must not stall the event loop,
and keeping *one* worker thread preserves batch ordering and keeps the
``service/batch`` timing spans on a single coherent span stack.

Tracing crosses the thread hop explicitly: context vars do not follow
``run_in_executor``, so each queued operation carries its request span
(``None`` when unsampled) and the worker installs a
:class:`~repro.obs.tracing.SpanGroup` over the sampled members — the
engine/cache spans the controller produces underneath are shared nodes
attached to every traced request the batch served.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionOp,
    OpFault,
    ReleaseOutcome,
)
from repro.errors import ServiceError
from repro.obs import metrics, timing, tracing

#: Batch sizes are powers-of-two-ish small integers bounded by
#: ``batch_max``; these buckets cover the default 64 with headroom.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

__all__ = ["QueueFullError", "MicroBatcher"]


class QueueFullError(ServiceError):
    """The intake queue is at ``queue_limit``; the request was shed.

    ``retry_after_s`` estimates when the backlog will have drained enough
    to try again (the server surfaces it as a ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class MicroBatcher:
    """Coalesces concurrent admission operations into controller batches.

    Args:
        controller: the :class:`AdmissionController` all batches run
            against.
        batch_window_s: nominal batch cadence, used only to scale the
            ``retry_after_s`` backoff hint on shed requests (dispatch
            itself never waits — see the module docstring).
        batch_max: largest batch handed to ``process_batch``.
        queue_limit: bound on queued-but-unbatched operations.

    Lifecycle: :meth:`start` spawns the dispatcher task; :meth:`drain`
    stops intake, answers **every** queued operation, and only then
    shuts the dispatcher down — a drained batcher has no silently
    dropped requests.
    """

    def __init__(
        self,
        controller: AdmissionController,
        *,
        batch_window_s: float = 0.002,
        batch_max: int = 64,
        queue_limit: int = 256,
    ):
        self._controller = controller
        self._window = float(batch_window_s)
        self._batch_max = int(batch_max)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=int(queue_limit))
        self._dispatcher: asyncio.Task | None = None
        self._draining = False
        # One worker thread, by design: batches stay ordered and the
        # span recorder's stack stays coherent (it is not thread-safe
        # across interleaved spans).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-admit"
        )
        self._m_submitted = metrics.counter("service.requests")
        self._m_shed = metrics.counter("service.shed")
        self._m_batches = metrics.counter("service.batches")
        self._m_batch_size = metrics.histogram(
            "service.batch_size", buckets=BATCH_SIZE_BUCKETS
        )
        self._m_queue_depth = metrics.gauge("service.queue_depth")

    @property
    def draining(self) -> bool:
        """Whether intake has been closed by :meth:`drain`."""
        return self._draining

    @property
    def engine_name(self) -> str:
        """Admission engine of the underlying controller (for reports)."""
        return getattr(self._controller, "engine_name", "scalar")

    @property
    def queue_depth(self) -> int:
        """Operations queued but not yet dispatched."""
        return self._queue.qsize()

    def start(self) -> None:
        """Spawn the dispatcher task on the running event loop."""
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_forever(), name="repro-admit-dispatcher"
            )

    async def submit(
        self, op: AdmissionOp, span: "tracing.Span | None" = None
    ) -> AdmissionDecision | ReleaseOutcome | OpFault:
        """Queue one operation and wait for its batch to answer it.

        ``span`` is the request's trace span (``None`` when unsampled);
        it rides the queue so the worker thread can attach the batch
        subtree to it despite the executor hop.

        Raises :class:`QueueFullError` when the queue is at capacity and
        :class:`ServiceError` when the batcher is draining; neither
        touches admission state.
        """
        if self._dispatcher is None:
            raise ServiceError("batcher is not started")
        if self._draining:
            raise ServiceError("service is draining; not accepting requests")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((op, future, span))
        except asyncio.QueueFull:
            self._m_shed.inc()
            # Rough time for the standing backlog to clear: one window
            # per batch_max operations ahead of us, floored at one window.
            backlog_batches = max(1.0, self._queue.qsize() / self._batch_max)
            raise QueueFullError(
                f"admission queue full ({self._queue.maxsize} pending)",
                retry_after_s=max(self._window, 0.001) * backlog_batches,
            ) from None
        self._m_submitted.inc()
        self._m_queue_depth.set(self._queue.qsize())
        return await future

    async def run_on_worker(self, fn, *args):
        """Run ``fn(*args)`` on the batch worker thread.

        Serializes with batch execution (one worker thread), which is
        what the breakdown endpoint wants: it reads a consistent admitted
        snapshot and its numpy work never lands on the event loop.
        """
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def drain(self) -> None:
        """Close intake, answer everything queued, stop the dispatcher."""
        self._draining = True
        if self._dispatcher is None:
            self._executor.shutdown(wait=True)
            return
        await self._queue.join()
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        self._executor.shutdown(wait=True)

    # -- dispatcher ------------------------------------------------------------

    async def _dispatch_forever(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            # Natural coalescing: take everything already queued —
            # the arrivals that piled up while the previous batch was
            # processing — and dispatch immediately.  An idle worker
            # adds zero artificial latency (the old fixed window made
            # every closed-loop client convoy behind the slowest one),
            # while under load batches fill from backpressure alone.
            while len(batch) < self._batch_max and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            self._m_queue_depth.set(self._queue.qsize())
            await self._run_batch(loop, batch)

    async def _run_batch(self, loop, batch) -> None:
        ops = [op for op, _, _ in batch]
        spans = [span for _, _, span in batch]
        try:
            results = await loop.run_in_executor(
                self._executor, self._process, ops, spans
            )
        except BaseException as exc:  # defensive: answer rather than hang
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(
                        ServiceError(f"batch execution failed: {exc}")
                    )
                self._queue.task_done()
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        for (_, future, _), result in zip(batch, results):
            if not future.done():  # client may have disconnected
                future.set_result(result)
            self._queue.task_done()

    def _process(self, ops: "list[AdmissionOp]", spans=()):
        # One "batch" child per sampled request, grouped so the engine
        # and cache spans produced inside process_batch land (as shared
        # nodes) on every traced member.
        members = [
            span.child("batch", batch_size=len(ops), engine=self.engine_name)
            for span in spans
            if span is not None
        ]
        token = tracing.use(tracing.SpanGroup(members)) if members else None
        t0 = time.perf_counter()
        try:
            with timing.span("service/batch"):
                results = self._controller.process_batch(ops)
        finally:
            elapsed = time.perf_counter() - t0
            for member in members:
                member.duration_s = elapsed
            if token is not None:
                tracing.release(token)
        with metrics.registry().hold():
            self._m_batches.inc()
            self._m_batch_size.observe(len(ops))
        return results
