"""Clients for the admission service: blocking and asyncio, stdlib only.

:class:`ServiceClient` wraps :mod:`http.client` with a persistent
keep-alive connection — the natural fit for scripts and tests.
:class:`AsyncServiceClient` speaks the same wire protocol over one
asyncio stream and is what the load generator multiplexes by the
hundreds.

Both expose the same surface:

* ``check(period_s, payload_bits)`` / ``admit(...)`` — returns the wire
  decision dict (``admitted``, ``stream_id``, ``station``, ``reason``,
  ``tested_by``, ``utilization_after``);
* ``release(stream_id, idempotent=False)`` — returns the wire release
  outcome;
* ``breakdown()`` / ``healthz()`` / ``metrics()`` / ``traces()`` — the
  GET endpoints;
* ``metrics_text()`` — the Prometheus exposition as raw text;
* ``request(method, path, body)`` — the raw ``(status, payload)`` escape
  hatch.

After every exchange, ``last_headers`` holds the response headers
(lower-cased) — the load generator reads ``x-trace-id`` there to pair
each measured latency with its server-side trace.

Error contract: transport failures and non-2xx responses raise
:class:`~repro.errors.ServiceError`.  Backpressure (429/503) raises
:class:`Backoff`, a ``ServiceError`` carrying ``status`` and
``retry_after_s`` so callers can implement honest retry loops; a 404 on
release raises :class:`~repro.errors.AdmissionError`, mirroring the
direct-call API.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math

from repro.errors import AdmissionError, ServiceError

__all__ = ["Backoff", "ServiceClient", "AsyncServiceClient"]


class Backoff(ServiceError):
    """The service shed the request (429) or is draining (503)."""

    def __init__(self, message: str, status: int, retry_after_s: float):
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


def _sanitize_delay(seconds: float) -> float:
    """Clamp a parsed retry delay to a sane non-negative value.

    NaN, infinities, and negative delays all clamp to 0 (retry
    immediately) — a hostile or buggy header must never stall a client
    forever or crash its retry arithmetic.
    """
    if not math.isfinite(seconds) or seconds < 0.0:
        return 0.0
    return seconds


def _retry_after_seconds(headers: dict, default: float = 1.0) -> float:
    """The ``Retry-After`` header as seconds (RFC 9110 delay-seconds form).

    The header name is matched case-insensitively (both clients lower-case
    response headers, but the helper must also serve callers handing in
    raw header dicts).  Numeric values — integral seconds per the RFC,
    plus fractional and whitespace-padded forms — are honored and
    sanitized through :func:`_sanitize_delay`; anything unparsable
    (e.g. the HTTP-date form) falls back to ``default``.
    """
    raw = None
    for name, value in headers.items():
        if str(name).lower() == "retry-after":
            raw = value
            break
    if raw is None:
        return default
    try:
        seconds = float(str(raw).strip())
    except (TypeError, ValueError):
        return default
    return _sanitize_delay(seconds)


def _raise_for_status(status: int, payload: dict, headers: dict) -> None:
    if 200 <= status < 300:
        return
    detail = payload.get("detail", payload.get("error", "unknown error"))
    if status in (429, 503):
        try:
            retry_after = _sanitize_delay(float(payload.get("retry_after_s")))
        except (TypeError, ValueError):
            retry_after = _retry_after_seconds(headers)
        raise Backoff(f"HTTP {status}: {detail}", status, retry_after)
    if status == 404 and payload.get("error") == "AdmissionError":
        raise AdmissionError(detail)
    raise ServiceError(f"HTTP {status}: {detail}")


def _decode(raw: bytes) -> dict:
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed response body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(f"expected a JSON object, got {raw[:80]!r}")
    return payload


class _EndpointMixin:
    """The high-level endpoint surface, shared sync/async via ``_call``."""

    def check(self, period_s: float, payload_bits: float):
        """Non-mutating what-if decision."""
        return self._call(
            "POST",
            "/v1/check",
            {"period_s": period_s, "payload_bits": payload_bits},
        )

    def admit(self, period_s: float, payload_bits: float):
        """Admission request; the decision carries ``stream_id`` on success."""
        return self._call(
            "POST",
            "/v1/admit",
            {"period_s": period_s, "payload_bits": payload_bits},
        )

    def release(self, stream_id: int, idempotent: bool = False):
        """Release an admitted stream."""
        return self._call(
            "POST",
            "/v1/release",
            {"stream_id": stream_id, "idempotent": idempotent},
        )

    def breakdown(self):
        """Headroom report for the admitted population."""
        return self._call("GET", "/v1/breakdown", None)

    def lease(self, utilization_cap: float | None = ...):
        """Read — or, given a cap (``None`` clears it), install — the
        worker's utilization-budget lease (cluster control plane)."""
        if utilization_cap is ...:
            return self._call("GET", "/v1/lease", None)
        return self._call(
            "POST", "/v1/lease", {"utilization_cap": utilization_cap}
        )

    def healthz(self):
        """Liveness / drain status."""
        return self._call("GET", "/healthz", None)

    def metrics(self):
        """The service's metric snapshot."""
        return self._call("GET", "/metrics", None)

    def traces(self, limit: int | None = None):
        """Recent request traces from the server's ring buffer."""
        path = (
            "/v1/traces"
            if limit is None
            else f"/v1/traces?limit={int(limit)}"
        )
        return self._call("GET", path, None)


class ServiceClient(_EndpointMixin):
    """Blocking client over one keep-alive :mod:`http.client` connection.

    Usable as a context manager; reconnects transparently if the server
    closed the idle connection.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8711,
        *,
        client_id: str | None = None,
        timeout_s: float = 30.0,
    ):
        self._host = host
        self._port = port
        self._client_id = client_id
        self._timeout_s = timeout_s
        self._conn: http.client.HTTPConnection | None = None
        self.last_headers: dict[str, str] = {}

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drop the persistent connection (if any)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        decode: bool = True,
    ):
        """Raw ``(status, payload)`` without status-based raising.

        ``decode=False`` skips the JSON decode and returns the body as
        bytes (the Prometheus exposition path).
        """
        data = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None
            else None
        )
        headers = {"Content-Type": "application/json"}
        if self._client_id is not None:
            headers["X-Client-Id"] = self._client_id
        for attempt in (1, 2):  # one transparent reconnect for stale sockets
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout_s
                )
            try:
                self._conn.request(method, path, body=data, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self.close()
                if attempt == 2:
                    raise ServiceError(
                        f"admission service at "
                        f"{self._host}:{self._port} unreachable: {exc}"
                    ) from exc
                continue
            self.last_headers = {
                k.lower(): v for k, v in response.getheaders()
            }
            payload = _decode(raw) if decode else raw
            return response.status, payload, dict(response.getheaders())
        raise AssertionError("unreachable")  # pragma: no cover

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``/metrics?format=prometheus``)."""
        status, raw, _ = self.request(
            "GET", "/metrics?format=prometheus", decode=False
        )
        if status != 200:
            raise ServiceError(
                f"HTTP {status} fetching prometheus metrics"
            )
        return raw.decode("utf-8")

    def _call(self, method: str, path: str, body: dict | None):
        status, payload, headers = self.request(method, path, body)
        _raise_for_status(
            status, payload, {k.lower(): v for k, v in headers.items()}
        )
        return payload


class AsyncServiceClient(_EndpointMixin):
    """Asyncio client over one keep-alive stream.

    Every high-level method is awaitable (``_call`` is a coroutine, so the
    mixin methods return coroutines here).  One client = one connection =
    one in-flight request; the load generator opens one per worker.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8711,
        *,
        client_id: str | None = None,
    ):
        self._host = host
        self._port = port
        self._client_id = client_id
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self.last_headers: dict[str, str] = {}

    async def __aenter__(self) -> "AsyncServiceClient":
        await self._connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    async def close(self) -> None:
        """Close the stream."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        decode: bool = True,
    ):
        """Raw ``(status, payload, headers)`` without status-based raising."""
        if self._writer is None:
            await self._connect()
        data = (
            json.dumps(body, separators=(",", ":")).encode("utf-8")
            if body is not None
            else b""
        )
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
            "Connection: keep-alive",
        ]
        if self._client_id is not None:
            lines.append(f"X-Client-Id: {self._client_id}")
        try:
            self._writer.write(
                ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + data
            )
            await self._writer.drain()
            return await self._read_response(decode=decode)
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            await self.close()
            raise ServiceError(
                f"admission service at {self._host}:{self._port} "
                f"dropped the connection: {exc}"
            ) from exc

    async def _read_response(self, decode: bool = True):
        # One readuntil for the whole header block (the server always
        # terminates headers with CRLF CRLF) — the per-line loop was a
        # measurable slice of load-generator CPU at serving rates.
        head = await self._reader.readuntil(b"\r\n\r\n")
        status_line, _, header_block = head.partition(b"\r\n")
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        self.last_headers = headers
        return status, _decode(raw) if decode else raw, headers

    async def _call(self, method: str, path: str, body: dict | None):
        status, payload, headers = await self.request(method, path, body)
        _raise_for_status(status, payload, headers)
        return payload

    async def metrics_text(self) -> str:
        """The Prometheus text exposition (``/metrics?format=prometheus``)."""
        status, raw, _ = await self.request(
            "GET", "/metrics?format=prometheus", decode=False
        )
        if status != 200:
            raise ServiceError(
                f"HTTP {status} fetching prometheus metrics"
            )
        return raw.decode("utf-8")
