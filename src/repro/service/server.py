"""The admission-control server: asyncio JSON-over-HTTP, stdlib only.

One :class:`AdmissionServer` owns one :class:`AdmissionController`, one
:class:`~repro.service.batcher.MicroBatcher`, and one per-client rate
limiter, and serves the endpoints documented in
:mod:`repro.service.protocol`.  HTTP/1.1 with keep-alive is hand-rolled
over asyncio streams — the protocol subset is tiny (request line,
headers, Content-Length bodies) and taking it on keeps the service free
of new dependencies.

Request path for ``/v1/check``, ``/v1/admit``, ``/v1/release``::

    parse -> rate limit -> batcher.submit -> (coalesced) process_batch

so every decision flows through the micro-batcher and is bit-identical
to a direct controller call (the batcher only changes *when* work runs,
never its serialization order).

Every request is a candidate for **tracing** (systematic sampling at
``config.trace_sample_rate``): a sampled request gets a root span whose
id is echoed back in an ``X-Trace-Id`` header, whose children cover the
batch, engine, and cache tiers, and which lands in the ring buffer
behind ``/v1/traces`` (plus the optional JSONL sink and the
slow-request log).  ``/metrics`` serves the JSON snapshot by default and
Prometheus text exposition under ``?format=prometheus`` — with the
correct ``Content-Type`` for each.

Shutdown is a *drain*: SIGTERM/SIGINT (or :meth:`drain_and_stop`) stops
accepting connections, answers every queued operation, then exits.  New
requests during the drain get **503**; nothing already accepted is
dropped.
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
from dataclasses import dataclass
from urllib.parse import parse_qs

from repro.admission import AdmissionOp, OpFault
from repro.analysis.breakdown import breakdown_scale
from repro.errors import ReproError, ServiceError
from repro.obs import metrics, prometheus, timing, tracing
from repro.obs.logging import get_logger
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S
from repro.obs.tracing import Tracer
from repro.service.batcher import MicroBatcher, QueueFullError
from repro.service.protocol import (
    ServiceConfig,
    WIRE_SCHEMA_VERSION,
    build_controller,
    decision_to_wire,
    dump_body,
    fault_status,
    fault_to_wire,
    load_body,
    parse_release_body,
    parse_stream_body,
    release_to_wire,
)
from repro.service.ratelimit import ClientRateLimiter

__all__ = ["AdmissionServer"]

_LOG = get_logger("repro.service.server")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies above this are rejected outright (no admission body is
#: more than a few dozen bytes of JSON).
_MAX_BODY_BYTES = 64 * 1024

#: Metric-name prefixes the service exposes (summary, ``/metrics``).
_METRIC_PREFIXES = (
    "service.",
    "cache.admission.",
    "admission.incremental.",
    "trace.",
)


@dataclass(frozen=True)
class _RawBody:
    """A pre-encoded response body with its own Content-Type.

    The JSON path stays the default; the Prometheus exposition returns
    one of these so ``_write_response`` serves ``text/plain`` instead of
    mislabelling text as ``application/json``.
    """

    content_type: str
    data: bytes


class AdmissionServer:
    """One admission service session.

    Args:
        config: the :class:`~repro.service.protocol.ServiceConfig`.
        controller: optionally, a pre-built controller (tests inject one
            with known state); by default built from the config.

    Usage::

        server = AdmissionServer(ServiceConfig(port=0))
        await server.start()          # server.port now holds the bound port
        ...
        await server.drain_and_stop()
    """

    def __init__(self, config: ServiceConfig, controller=None):
        self.config = config
        self.controller = (
            controller if controller is not None else build_controller(config)
        )
        self.batcher = MicroBatcher(
            self.controller,
            batch_window_s=config.batch_window_s,
            batch_max=config.batch_max,
            queue_limit=config.queue_limit,
        )
        self.limiter = ClientRateLimiter(
            config.rate_limit_rps, config.rate_limit_burst
        )
        self.tracer = Tracer(
            config.trace_sample_rate,
            buffer_size=config.trace_buffer,
            jsonl_path=config.trace_jsonl,
            slow_threshold_s=config.slow_trace_s,
        )
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained = asyncio.Event()
        self._drain_hooks: list = []
        self._m_http = metrics.counter("service.http_requests")
        self._m_errors = metrics.counter("service.http_errors")
        self._m_internal = metrics.counter("service.errors.internal")
        self._m_limited = metrics.counter("service.rate_limited")
        self._m_latency = metrics.histogram(
            "service.request_latency_s", buckets=DEFAULT_LATENCY_BUCKETS_S
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _LOG.info(
            "admission service listening on %s:%d (%s/%s, policy=%s, "
            "engine=%s)",
            self.config.host,
            self.port,
            self.config.protocol,
            self.config.variant,
            self.config.policy,
            self.controller.engine_name,
        )

    def add_drain_hook(self, hook) -> None:
        """Register a zero-argument callable run when a drain begins.

        Cluster workers use this to retract their port advertisement
        (the supervisor's discovery file) *before* the listener closes,
        so the router stops routing to a worker the moment it starts
        draining rather than when its socket dies.  Hooks must not
        raise; exceptions are logged and swallowed.
        """
        self._drain_hooks.append(hook)

    async def drain_and_stop(self) -> None:
        """Stop accepting, answer everything queued, shut down."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        for hook in self._drain_hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001 - drain must always complete
                _LOG.warning("drain hook failed", exc_info=True)
        _LOG.info("drain requested: closing listener, flushing queue")
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(
                self.batcher.drain(), timeout=self.config.drain_grace_s
            )
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            _LOG.warning(
                "drain exceeded %.1fs grace; shutting down anyway",
                self.config.drain_grace_s,
            )
        if self._server is not None:
            await self._server.wait_closed()
        self.tracer.close()
        self._drained.set()
        _LOG.info("admission service stopped")

    async def serve_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain and return."""
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or unsupported platform
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
        await self.drain_and_stop()

    def _cache_error_count(self) -> float:
        """Total disk/memory-tier cache corruption errors this process."""
        total = 0.0
        for name, data in metrics.snapshot(prefix="cache.").items():
            if name.endswith(".errors"):
                total += data.get("value", 0.0)
        return total

    def summary(self) -> dict:
        """Session counters for the run manifest / loadgen report."""
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "shard_id": self.config.shard_id,
            "worker_pid": os.getpid(),
            "admitted": self.controller.admitted_count,
            "utilization": self.controller.utilization(),
            "utilization_cap": self.controller.utilization_cap,
            "cache_errors": self._cache_error_count(),
            "admission_engine": self.controller.engine_name,
            "metrics": metrics.snapshot(prefix=_METRIC_PREFIXES),
            "spans": {
                path: stats
                for path, stats in timing.snapshot().items()
                if path.startswith("service/")
            },
        }

    # -- connection handling ---------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                path, _, query = target.partition("?")
                trace = self.tracer.begin("request", method=method, path=path)
                token = tracing.use(trace) if trace is not None else None
                started = asyncio.get_running_loop().time()
                try:
                    status, payload, extra_headers = await self._route(
                        method, path, query, headers, body, peer_host
                    )
                finally:
                    if token is not None:
                        tracing.release(token)
                elapsed = asyncio.get_running_loop().time() - started
                if trace is not None:
                    trace.attrs["status"] = status
                    extra_headers = list(extra_headers) + [
                        ("X-Trace-Id", trace.trace_id)
                    ]
                if self.config.shard_id is not None:
                    extra_headers = list(extra_headers) + [
                        ("X-Shard-Id", self.config.shard_id)
                    ]
                # Group the per-request updates so a concurrent snapshot
                # never sees the counter without its latency observation.
                with metrics.registry().hold():
                    self._m_http.inc()
                    if status >= 400:
                        self._m_errors.inc()
                    self._m_latency.observe(
                        elapsed,
                        exemplar=trace.trace_id if trace is not None else None,
                    )
                self.tracer.finish(trace, duration_s=elapsed)
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                await self._write_response(
                    writer, status, payload, extra_headers, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        """One HTTP request as ``(method, target, headers, body)``; None at EOF.

        The whole header block is taken in a single ``readuntil`` — one
        stream operation instead of one per header line, which matters on
        this hot path (every served decision pays this parse).
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # EOF between requests, or client died mid-header
        except (asyncio.LimitOverrunError, ConnectionError, OSError):
            return None
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split(" ")
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(request_line, None)
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", None)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self, writer, status, payload, extra_headers, keep_alive
    ) -> None:
        if isinstance(payload, _RawBody):
            content_type = payload.content_type
            body = payload.data
        else:
            content_type = "application/json"
            body = dump_body(payload)
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in extra_headers:
            lines.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _route(self, method, path, query, headers, body, peer_host):
        """Dispatch one request; returns (status, payload, extra_headers)."""
        try:
            if path == "/healthz":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return 200, self._healthz(), []
            if path == "/metrics":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._metrics_endpoint(query)
            if path == "/v1/traces":
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._traces_endpoint(query)
            if path == "/v1/lease":
                if method == "GET":
                    return (
                        200,
                        {
                            "schema_version": WIRE_SCHEMA_VERSION,
                            "shard_id": self.config.shard_id,
                            "worker_pid": os.getpid(),
                            "utilization_cap": self.controller.utilization_cap,
                            "utilization": self.controller.utilization(),
                            "admitted": self.controller.admitted_count,
                        },
                        [],
                    )
                if method != "POST":
                    return self._method_not_allowed("GET, POST")
                return self._lease_endpoint(body)
            if path == "/v1/breakdown":
                if method != "GET":
                    return self._method_not_allowed("GET")
                if self._draining:
                    return self._draining_response()
                return 200, await self._breakdown(), []
            if path in ("/v1/check", "/v1/admit", "/v1/release"):
                if method != "POST":
                    return self._method_not_allowed("POST")
                return await self._admission_endpoint(
                    path, headers, body, peer_host
                )
            return (
                404,
                {"error": "NotFound", "detail": f"no such endpoint: {path}"},
                [],
            )
        except ServiceError as exc:
            return 400, {"error": "ServiceError", "detail": str(exc)}, []
        except ReproError as exc:  # pragma: no cover - route-level catch-all
            return 422, {"error": type(exc).__name__, "detail": str(exc)}, []
        except Exception as exc:  # noqa: BLE001 - never kill the connection loop
            self._m_internal.inc()
            span = tracing.current()
            trace_id = getattr(span, "trace_id", None)
            _LOG.warning(
                "unhandled error serving %s %s (trace=%s): %s",
                method,
                path,
                trace_id or "-",
                exc,
                exc_info=True,
                extra={"path": path, "method": method, "trace_id": trace_id},
            )
            return 500, {"error": "InternalError", "detail": str(exc)}, []

    async def _admission_endpoint(self, path, headers, body, peer_host):
        if self._draining or self.batcher.draining:
            return self._draining_response()
        client = headers.get("x-client-id", peer_host)
        wait = self.limiter.check(
            client, asyncio.get_running_loop().time()
        )
        if wait > 0:
            self._m_limited.inc()
            return (
                429,
                {
                    "error": "RateLimited",
                    "detail": (
                        f"client {client!r} over "
                        f"{self.limiter.rate_per_s:g} rps"
                    ),
                    "retry_after_s": wait,
                },
                [("Retry-After", str(max(1, math.ceil(wait))))],
            )
        parsed = load_body(body)
        if path == "/v1/release":
            stream_id, idempotent = parse_release_body(parsed)
            op = AdmissionOp.release(stream_id, idempotent=idempotent)
        else:
            period_s, payload_bits = parse_stream_body(parsed)
            op = (
                AdmissionOp.check(period_s, payload_bits)
                if path == "/v1/check"
                else AdmissionOp.admit(period_s, payload_bits)
            )
        tracing.annotate(op=op.kind)
        try:
            span = tracing.current()
            result = await self.batcher.submit(op, span=span)
        except QueueFullError as exc:
            return (
                429,
                {
                    "error": "QueueFull",
                    "detail": str(exc),
                    "retry_after_s": exc.retry_after_s,
                },
                [("Retry-After", str(max(1, math.ceil(exc.retry_after_s))))],
            )
        except ServiceError:
            return self._draining_response()
        if isinstance(result, OpFault):
            return fault_status(result), fault_to_wire(result), []
        if op.kind == "release":
            return 200, release_to_wire(result), []
        return 200, decision_to_wire(result), []

    def _metrics_endpoint(self, query: str):
        """``/metrics``: JSON snapshot, or Prometheus text exposition.

        The snapshot is taken once under the registry lock (atomic cut);
        the Prometheus path renders that same cut, so the two formats can
        never disagree about a scrape instant.
        """
        params = parse_qs(query)
        fmt = params.get("format", ["json"])[-1]
        snap = metrics.snapshot(prefix=_METRIC_PREFIXES)
        if fmt == "json":
            return (
                200,
                {"schema_version": WIRE_SCHEMA_VERSION, "metrics": snap},
                [],
            )
        if fmt == "prometheus":
            labels = None
            if self.config.shard_id is not None:
                labels = {
                    "shard_id": self.config.shard_id,
                    "worker_pid": str(os.getpid()),
                }
            text = prometheus.render(snap, labels=labels)
            return (
                200,
                _RawBody(prometheus.CONTENT_TYPE, text.encode("utf-8")),
                [],
            )
        return (
            400,
            {
                "error": "BadFormat",
                "detail": (
                    f"unknown metrics format {fmt!r}; "
                    "expected 'json' or 'prometheus'"
                ),
            },
            [],
        )

    def _traces_endpoint(self, query: str):
        """``/v1/traces``: the ring buffer of finished traces (oldest first)."""
        params = parse_qs(query)
        limit = None
        raw_limit = params.get("limit", [None])[-1]
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError:
                return (
                    400,
                    {
                        "error": "BadLimit",
                        "detail": f"limit must be an integer, got {raw_limit!r}",
                    },
                    [],
                )
        traces = self.tracer.recent(limit)
        return (
            200,
            {
                "schema_version": WIRE_SCHEMA_VERSION,
                "sample_rate": self.tracer.sample_rate,
                "count": len(traces),
                "traces": traces,
            },
            [],
        )

    def _healthz(self) -> dict:
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "status": "draining" if self._draining else "ok",
            "shard_id": self.config.shard_id,
            "worker_pid": os.getpid(),
            "queue_depth": self.batcher.queue_depth,
            "admitted": self.controller.admitted_count,
            "utilization": self.controller.utilization(),
            "utilization_cap": self.controller.utilization_cap,
            "cache_errors": self._cache_error_count(),
            "protocol": self.config.protocol,
            "policy": self.config.policy,
            "admission_engine": self.controller.engine_name,
        }

    def _lease_endpoint(self, body: bytes):
        """``/v1/lease``: read or install this worker's utilization lease.

        POST body ``{"utilization_cap": float | null}`` installs a new
        budget cap on the controller (null removes it) and answers with
        both the previous and the now-active cap — the router treats the
        response as the worker's acknowledgement, and only re-grants
        budget freed by a shrink *after* this acknowledgement arrives
        (see :mod:`repro.cluster.budget`).  Lease administration is
        control-plane: it works during a drain, is never batched, and is
        never rate-limited.
        """
        parsed = load_body(body)
        if "utilization_cap" not in parsed:
            raise ServiceError("field 'utilization_cap' is required")
        cap = parsed["utilization_cap"]
        if cap is not None and (
            not isinstance(cap, (int, float)) or isinstance(cap, bool)
        ):
            raise ServiceError(
                f"field 'utilization_cap' must be a number or null, got {cap!r}"
            )
        try:
            previous = self.controller.set_utilization_cap(cap)
        except ReproError as exc:
            raise ServiceError(str(exc)) from exc
        return (
            200,
            {
                "schema_version": WIRE_SCHEMA_VERSION,
                "shard_id": self.config.shard_id,
                "worker_pid": os.getpid(),
                "previous_cap": previous,
                "utilization_cap": self.controller.utilization_cap,
                "utilization": self.controller.utilization(),
                "admitted": self.controller.admitted_count,
            },
            [],
        )

    async def _breakdown(self) -> dict:
        """Headroom of the admitted population (off the event loop)."""

        def compute():
            current = self.controller.current_set()
            report = {
                "schema_version": WIRE_SCHEMA_VERSION,
                "streams": len(current),
                "utilization": current.utilization(
                    self.controller.analysis.ring.bandwidth_bps
                ),
            }
            if len(current) == 0:
                report.update(scale=None, evaluations=0)
                return report
            scale, evaluations = breakdown_scale(
                current, self.controller.analysis, rel_tol=1e-3
            )
            report.update(scale=scale, evaluations=evaluations)
            return report

        return await self.batcher.run_on_worker(compute)

    @staticmethod
    def _method_not_allowed(allowed: str):
        return (
            405,
            {"error": "MethodNotAllowed", "detail": f"use {allowed}"},
            [("Allow", allowed)],
        )

    @staticmethod
    def _draining_response():
        return (
            503,
            {
                "error": "Draining",
                "detail": "service is draining; not accepting requests",
            },
            [("Retry-After", "1")],
        )
