"""Wire schema and configuration of the admission-control service.

The service speaks JSON over HTTP/1.1.  Endpoints:

=================  ======  =====================================================
``/v1/check``      POST    non-mutating what-if decision for one stream
``/v1/admit``      POST    admission request (installs the stream on acceptance)
``/v1/release``    POST    release a previously admitted stream
``/v1/breakdown``  GET     headroom report for the admitted population
``/v1/lease``      GET     this worker's utilization-budget lease
``/v1/lease``      POST    install a new lease cap (cluster control plane)
``/healthz``       GET     liveness/drain status plus queue depth, shard
                           identity (``shard_id``/``worker_pid``), and
                           cache corruption counters
``/metrics``       GET     metric snapshot; ``?format=prometheus`` for
                           text exposition, ``?format=json`` (default)
``/v1/traces``     GET     recent request traces (``?limit=N``), newest last
=================  ======  =====================================================

Request bodies: ``{"period_s": float, "payload_bits": float}`` for
check/admit, ``{"stream_id": int, "idempotent": bool}`` for release.
Every response is a JSON object; decision responses mirror
:class:`repro.admission.AdmissionDecision` field for field, so a wire
decision compares equal to a direct controller call (the
``service_batch_equiv`` fuzz property holds the server to that).

Backpressure semantics: a full batch queue or an exhausted per-client
token bucket answers **429** with a ``Retry-After`` header (seconds); a
draining server answers **503**.  Neither consumes admission state —
a shed request was never evaluated.

This module is deliberately transport-free: pure dataclasses and
encode/decode helpers shared by the server, both clients, and the tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    OpFault,
    ReleaseOutcome,
)
from repro.errors import ConfigurationError, ServiceError
from repro.network.standards import fddi_ring, ieee_802_5_ring, paper_frame_format
from repro.units import mbps

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ServiceConfig",
    "build_controller",
    "decision_to_wire",
    "release_to_wire",
    "fault_to_wire",
    "fault_status",
    "parse_stream_body",
    "parse_release_body",
    "dump_body",
    "load_body",
]

#: Version tag carried in every response envelope; consumers should
#: reject a newer major version rather than guess at field meanings.
WIRE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one admission-server session needs.

    The analysis side (protocol, bandwidth, ring size, policy) mirrors
    the library constructors; the serving side (batch window, queue
    bound, rate limit) tunes the micro-batcher and backpressure.  The
    defaults favour the exact test — the batched
    :meth:`~repro.analysis.rm.ExactRMTest.is_schedulable_batch` dispatch
    plus the content-addressed cache is the fast path this service
    exists to exercise — while ``policy="hybrid"`` restores the paper's
    amortized-bound pattern.
    """

    host: str = "127.0.0.1"
    port: int = 8711
    protocol: str = "pdp"  # "pdp" | "ttp"
    variant: str = "modified"  # PDP only: "standard" | "modified"
    bandwidth_mbps: float = 16.0
    n_stations: int = 40
    policy: str = "exact"  # "exact" | "sufficient" | "hybrid"
    admission_engine: str | None = None  # None → resolve (env / "auto")
    batch_window_s: float = 0.002
    batch_max: int = 64
    queue_limit: int = 256
    rate_limit_rps: float = 0.0  # per client; 0 disables
    rate_limit_burst: float = 50.0
    cache_namespace: str | None = "admission"
    drain_grace_s: float = 5.0
    shard_id: str | None = None  # cluster worker identity; None standalone
    utilization_cap: float | None = None  # budget lease; None unbounded
    trace_sample_rate: float = 1.0  # fraction of requests traced
    trace_buffer: int = 256  # traces retained for /v1/traces
    trace_jsonl: str | None = None  # append finished traces here
    slow_trace_s: float = 0.0  # log full span tree above this; 0 off
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in ("pdp", "ttp"):
            raise ConfigurationError(
                f"protocol must be 'pdp' or 'ttp', got {self.protocol!r}"
            )
        if self.variant not in ("standard", "modified"):
            raise ConfigurationError(
                f"variant must be 'standard' or 'modified', got {self.variant!r}"
            )
        if self.policy not in ("exact", "sufficient", "hybrid"):
            raise ConfigurationError(
                f"policy must be 'exact', 'sufficient', or 'hybrid', "
                f"got {self.policy!r}"
            )
        if self.admission_engine not in (None, "scalar", "incremental", "auto"):
            raise ConfigurationError(
                f"admission_engine must be 'scalar', 'incremental', or "
                f"'auto', got {self.admission_engine!r}"
            )
        if self.batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be at least 1, got {self.batch_max!r}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be at least 1, got {self.queue_limit!r}"
            )
        if self.batch_window_s < 0:
            raise ConfigurationError(
                f"batch_window_s must be non-negative, got {self.batch_window_s!r}"
            )
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigurationError(
                f"trace_sample_rate must be within [0, 1], got "
                f"{self.trace_sample_rate!r}"
            )
        if self.trace_buffer < 1:
            raise ConfigurationError(
                f"trace_buffer must be at least 1, got {self.trace_buffer!r}"
            )
        if self.slow_trace_s < 0:
            raise ConfigurationError(
                f"slow_trace_s must be non-negative, got {self.slow_trace_s!r}"
            )
        if self.utilization_cap is not None and not self.utilization_cap >= 0:
            raise ConfigurationError(
                f"utilization_cap must be non-negative, got "
                f"{self.utilization_cap!r}"
            )


def build_controller(config: ServiceConfig) -> AdmissionController:
    """The admission controller a server session runs (ring + analysis
    from the config, decisions fronted by the result cache).

    The exact-test structure LRU is sized for serving (a load-generator
    catalogue rotates more period vectors than the library default of 4
    holds, and a structure rebuild costs ~ms — it was the dominant term
    in served-decision p99).  The engine switch resolves through
    :func:`repro.admission_incremental.resolve_engine`: per-config value,
    else the process default / ``REPRO_ADMISSION_ENGINE`` / ``auto``.
    """
    from repro.admission_incremental import build_admission_controller
    from repro.analysis.pdp import PDPAnalysis, PDPVariant
    from repro.analysis.ttp import TTPAnalysis

    frame = paper_frame_format()
    bandwidth = mbps(config.bandwidth_mbps)
    if config.protocol == "pdp":
        variant = (
            PDPVariant.STANDARD
            if config.variant == "standard"
            else PDPVariant.MODIFIED
        )
        analysis = PDPAnalysis(
            ieee_802_5_ring(bandwidth, n_stations=config.n_stations),
            frame,
            variant,
            cache_size=1024,
        )
    else:
        analysis = TTPAnalysis(
            fddi_ring(bandwidth, n_stations=config.n_stations), frame
        )
    return build_admission_controller(
        analysis,
        AdmissionPolicy(config.policy),
        cache_namespace=config.cache_namespace,
        engine=config.admission_engine,
        utilization_cap=config.utilization_cap,
    )


# -- body parsing ---------------------------------------------------------------


def load_body(raw: bytes) -> dict:
    """Decode a JSON request body, mapping malformed input to 400s."""
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ServiceError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def dump_body(payload: dict) -> bytes:
    """Encode a response body (compact separators, UTF-8)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _number(body: dict, key: str) -> float:
    value = body.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ServiceError(f"field {key!r} must be a number, got {value!r}")
    return float(value)


def parse_stream_body(body: dict) -> tuple[float, float]:
    """``(period_s, payload_bits)`` of a check/admit body."""
    return _number(body, "period_s"), _number(body, "payload_bits")


def parse_release_body(body: dict) -> tuple[int, bool]:
    """``(stream_id, idempotent)`` of a release body."""
    stream_id = body.get("stream_id")
    if not isinstance(stream_id, int) or isinstance(stream_id, bool):
        raise ServiceError(
            f"field 'stream_id' must be an integer, got {stream_id!r}"
        )
    idempotent = body.get("idempotent", False)
    if not isinstance(idempotent, bool):
        raise ServiceError(
            f"field 'idempotent' must be a boolean, got {idempotent!r}"
        )
    return stream_id, idempotent


# -- result encoding ------------------------------------------------------------


def decision_to_wire(decision: AdmissionDecision) -> dict:
    """An :class:`AdmissionDecision` as its wire object (field for field)."""
    return {
        "schema_version": WIRE_SCHEMA_VERSION,
        "admitted": decision.admitted,
        "stream_id": decision.stream_id,
        "station": decision.station,
        "reason": decision.reason,
        "tested_by": decision.tested_by,
        "utilization_after": decision.utilization_after,
    }


def release_to_wire(outcome: ReleaseOutcome) -> dict:
    """A :class:`ReleaseOutcome` as its wire object."""
    return {
        "schema_version": WIRE_SCHEMA_VERSION,
        "released": outcome.released,
        "stream_id": outcome.stream_id,
    }


def fault_to_wire(fault: OpFault) -> dict:
    """An :class:`OpFault` as its wire object."""
    return {
        "schema_version": WIRE_SCHEMA_VERSION,
        "error": fault.error,
        "detail": fault.detail,
    }


def fault_status(fault: OpFault) -> int:
    """HTTP status for a captured operation fault.

    ``AdmissionError`` (unknown/already-released stream) is the caller
    naming a resource that does not exist — 404; every other library
    error is a semantically invalid request — 422.
    """
    return 404 if fault.error == "AdmissionError" else 422
