"""Per-client token-bucket rate limiting for the admission service.

Classic token bucket: a client's bucket refills at ``rate_per_s`` tokens
per second up to ``burst``; each request spends one token; an empty
bucket reports how long until the next token so the server can answer
429 with an honest ``Retry-After``.

Time is always passed in explicitly (monotonic seconds) — the limiter
never reads a clock itself, which keeps it exactly testable and lets the
server share one ``loop.time()`` read across the request path.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError

__all__ = ["TokenBucket", "ClientRateLimiter"]


class TokenBucket:
    """One client's bucket.  ``try_acquire`` returns 0.0 on success or
    the seconds until a token will be available."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate_per_s: float, burst: float, now: float):
        if rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be positive, got {rate_per_s!r}"
            )
        if burst < 1:
            raise ConfigurationError(f"burst must be at least 1, got {burst!r}")
        self.rate = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_acquire(self, now: float) -> float:
        """Spend one token, refilling for the elapsed time first."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class ClientRateLimiter:
    """A bounded pool of per-client buckets (LRU-evicted).

    ``rate_per_s <= 0`` disables limiting entirely: :meth:`check` always
    grants.  The client key is whatever the server extracts from the
    request (the ``X-Client-Id`` header, else the peer address); an
    evicted idle client simply starts over with a full bucket.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float = 50.0,
        max_clients: int = 1024,
    ):
        self._rate = float(rate_per_s)
        self._burst = float(burst)
        self._max_clients = max(int(max_clients), 1)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        """Whether any limiting is in force."""
        return self._rate > 0

    @property
    def rate_per_s(self) -> float:
        """The configured per-client sustained rate."""
        return self._rate

    def check(self, client: str, now: float) -> float:
        """0.0 = request granted; otherwise seconds to wait (429)."""
        if not self.enabled:
            return 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self._rate, self._burst, now)
            self._buckets[client] = bucket
            while len(self._buckets) > self._max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket.try_acquire(now)
