"""Closed-loop load generator for the admission service.

``runner loadgen`` drives a live server with a configurable worker fleet
and reports what the service actually sustained: throughput, latency
percentiles, shed (429) and drain (503) counts, and the server's own
``service.*`` metrics.  The report lands in ``BENCH_service.json`` using
the same summarized canary schema as the other ``BENCH_*.json`` files
(:mod:`repro.obs.benchjson` schema version 2), so the performance
trajectory of the service is tracked exactly like the figures'.

Workload model: each worker owns one keep-alive connection and issues
requests back to back (closed loop) or paced to a target rate.  Streams
are drawn from a small seeded catalogue of (period, payload) pairs —
repeat queries against a stable admitted population are precisely the
regime the content-addressed cache serves, so the warm-cache fast path
gets exercised alongside cold exact-test evaluations.  The op mix is
mostly ``check`` with a trickle of ``admit``/``release`` churn
(idempotent releases, as a retrying client would issue).

Everything here is deterministic given the seed **except** timing:
decision outcomes depend only on the op sequence, which is seeded per
worker; latencies are whatever the host delivers.
"""

from __future__ import annotations

import asyncio
import datetime
import platform
import random
import statistics
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServiceError
from repro.obs.benchjson import BENCH_SCHEMA_VERSION, cpu_info
from repro.service.client import AsyncServiceClient, Backoff
from repro.service.protocol import ServiceConfig
from repro.service.server import AdmissionServer

__all__ = [
    "LoadConfig",
    "LoadReport",
    "run_load",
    "run_against_spawned_server",
    "run_against_spawned_cluster",
    "admission_cache_summary",
    "bench_document",
    "write_latency_csv",
]


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation run.

    ``target_rps <= 0`` means closed-loop: every worker issues its next
    request the moment the previous answer arrives.  ``catalogue_size``
    bounds the set of distinct (period, payload) candidates — smaller
    catalogues run hotter caches.
    """

    host: str = "127.0.0.1"
    port: int = 8711
    duration_s: float = 5.0
    workers: int = 8
    target_rps: float = 0.0
    seed: int = 0
    catalogue_size: int = 32
    admit_fraction: float = 0.05
    release_fraction: float = 0.05


@dataclass
class LoadReport:
    """What one load run observed, client side."""

    duration_s: float = 0.0
    requests: int = 0
    throughput_rps: float = 0.0
    ops: dict = field(default_factory=dict)
    latency_s: dict = field(default_factory=dict)
    op_latency_s: dict = field(default_factory=dict)
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    draining: int = 0
    errors: int = 0
    latencies: list = field(default_factory=list)
    latencies_by_op: dict = field(default_factory=dict)
    #: Per-shard latency samples, keyed by the ``X-Shard-Id`` response
    #: header — populated only when the target stamps it (a cluster
    #: router or a shard-labelled worker); empty against a standalone
    #: server.
    latencies_by_shard: dict = field(default_factory=dict)
    shard_latency_s: dict = field(default_factory=dict)
    #: Per-request ``(kind, latency_s, trace_id)`` rows, in completion
    #: order — the ``--latency-csv`` export, with the server-side trace
    #: id (``X-Trace-Id``; empty when the request was unsampled).
    samples: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form (without the raw latency samples)."""
        return {
            "duration_s": self.duration_s,
            "requests": self.requests,
            "throughput_rps": self.throughput_rps,
            "ops": dict(self.ops),
            "latency_s": dict(self.latency_s),
            "op_latency_s": {k: dict(v) for k, v in self.op_latency_s.items()},
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "draining": self.draining,
            "errors": self.errors,
            "shard_latency_s": {
                k: dict(v) for k, v in self.shard_latency_s.items()
            },
        }


def _catalogue(config: LoadConfig) -> list[tuple[float, float]]:
    """The seeded candidate streams all workers draw from."""
    rng = random.Random(config.seed)
    catalogue = []
    for _ in range(config.catalogue_size):
        period_s = rng.choice([0.008, 0.016, 0.032, 0.064, 0.128, 0.256])
        payload_bits = float(rng.randrange(64, 2048, 64))
        catalogue.append((period_s, payload_bits))
    return catalogue


async def _worker(
    index: int,
    config: LoadConfig,
    catalogue: list[tuple[float, float]],
    deadline: float,
    report: LoadReport,
    admitted_ids: list[int],
) -> None:
    # Integer arithmetic, not a tuple seed: tuple seeding goes through
    # hash(), which PYTHONHASHSEED randomizes across processes.
    rng = random.Random(config.seed * 100_003 + index)
    interval = (
        config.workers / config.target_rps if config.target_rps > 0 else 0.0
    )
    loop = asyncio.get_running_loop()
    next_slot = loop.time()
    async with AsyncServiceClient(
        config.host, config.port, client_id=f"loadgen-{index}"
    ) as client:
        while loop.time() < deadline:
            if interval:
                next_slot += interval
                delay = next_slot - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            roll = rng.random()
            period_s, payload_bits = rng.choice(catalogue)
            started = loop.time()
            try:
                if roll < config.release_fraction and admitted_ids:
                    kind = "release"
                    stream_id = admitted_ids.pop(
                        rng.randrange(len(admitted_ids))
                    )
                    await client.release(stream_id, idempotent=True)
                elif roll < config.release_fraction + config.admit_fraction:
                    kind = "admit"
                    decision = await client.admit(period_s, payload_bits)
                    if decision["admitted"]:
                        admitted_ids.append(decision["stream_id"])
                        report.admitted += 1
                    else:
                        report.rejected += 1
                else:
                    kind = "check"
                    await client.check(period_s, payload_bits)
            except Backoff as exc:
                report.requests += 1
                report.shed += exc.status == 429
                report.draining += exc.status == 503
                await asyncio.sleep(min(exc.retry_after_s, 0.05))
                continue
            except ServiceError:
                report.requests += 1
                report.errors += 1
                continue
            report.requests += 1
            report.ops[kind] = report.ops.get(kind, 0) + 1
            elapsed = loop.time() - started
            report.latencies.append(elapsed)
            report.latencies_by_op.setdefault(kind, []).append(elapsed)
            shard = client.last_headers.get("x-shard-id")
            if shard:
                report.latencies_by_shard.setdefault(shard, []).append(elapsed)
            report.samples.append(
                (kind, elapsed, client.last_headers.get("x-trace-id", ""))
            )


def _percentile_summary(latencies: list) -> dict:
    samples = np.asarray(latencies, dtype=float)
    q = np.percentile(samples, [50.0, 90.0, 99.0, 99.9])
    return {
        "mean": float(samples.mean()),
        "p50": float(q[0]),
        "p90": float(q[1]),
        "p99": float(q[2]),
        "p999": float(q[3]),
        "max": float(samples.max()),
    }


def write_latency_csv(report: LoadReport, path: str) -> int:
    """Write the per-request samples as CSV; returns the row count.

    Columns: ``index,kind,latency_s,trace_id`` — ``trace_id`` links a
    measured latency back to its server-side span tree in ``/v1/traces``
    (empty when the request was unsampled).
    """
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write("index,kind,latency_s,trace_id\n")
        for index, (kind, latency_s, trace_id) in enumerate(report.samples):
            handle.write(f"{index},{kind},{latency_s:.9f},{trace_id}\n")
    return len(report.samples)


def _summarize_latencies(report: LoadReport) -> None:
    if not report.latencies:
        report.latency_s = {}
        report.op_latency_s = {}
        return
    report.latency_s = _percentile_summary(report.latencies)
    # Per-op percentiles: a release is a dict pop while a cold check is a
    # full exact-test evaluation — the aggregate percentiles blur kinds
    # with ~100x latency spread, so triage needs them split out.
    report.op_latency_s = {
        kind: _percentile_summary(samples)
        for kind, samples in sorted(report.latencies_by_op.items())
    }
    # Per-shard percentiles: the first question when a fleet p99
    # regresses is "which shard?" (see EXPERIMENTS.md).
    report.shard_latency_s = {
        shard: _percentile_summary(samples)
        for shard, samples in sorted(report.latencies_by_shard.items())
    }


async def run_load(config: LoadConfig) -> LoadReport:
    """Drive a running service; returns the client-side report."""
    catalogue = _catalogue(config)
    report = LoadReport()
    admitted_ids: list[int] = []
    loop = asyncio.get_running_loop()
    started = loop.time()
    deadline = started + config.duration_s
    await asyncio.gather(
        *(
            _worker(i, config, catalogue, deadline, report, admitted_ids)
            for i in range(config.workers)
        )
    )
    report.duration_s = loop.time() - started
    report.throughput_rps = (
        report.requests / report.duration_s if report.duration_s > 0 else 0.0
    )
    _summarize_latencies(report)
    return report


async def run_against_spawned_server(
    service_config: ServiceConfig, load_config: LoadConfig
) -> tuple[LoadReport, dict]:
    """Spawn a server in-process, load it, drain it.

    Returns ``(client report, server summary)``.  The load config's
    host/port are overridden with wherever the server actually bound
    (pass ``port=0`` in the service config for an ephemeral port).
    """
    server = AdmissionServer(service_config)
    await server.start()
    try:
        effective = LoadConfig(
            **{
                **load_config.__dict__,
                "host": service_config.host,
                "port": server.port,
            }
        )
        report = await run_load(effective)
    finally:
        await server.drain_and_stop()
    return report, server.summary()


async def run_against_spawned_cluster(cluster_config, load_config: LoadConfig):
    """Spawn a whole sharded cluster, load its router, drain it.

    Spins up a :class:`~repro.cluster.supervisor.WorkerPool` (real
    worker subprocesses) fronted by a
    :class:`~repro.cluster.router.ClusterRouter`, points the load at
    the router's port, and returns ``(client report, fleet summary)``
    where the fleet summary is the router's ``/healthz`` aggregate
    (per-shard health, budget-ledger state, soundness probe) captured
    right before the drain.  The report's per-shard latency split comes
    from the router's ``X-Shard-Id`` response header.
    """
    from repro.cluster.router import ClusterRouter
    from repro.cluster.supervisor import WorkerPool

    pool = WorkerPool(cluster_config)
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, pool.start)
    router = ClusterRouter(cluster_config, pool)
    fleet_summary: dict = {}
    try:
        await router.start()
        effective = LoadConfig(
            **{
                **load_config.__dict__,
                "host": cluster_config.host,
                "port": router.port,
            }
        )
        report = await run_load(effective)
        fleet_summary = await router._fleet_healthz()
    finally:
        await router.drain_and_stop()
    return report, fleet_summary


def admission_cache_summary(server_summary: dict) -> dict:
    """Hit/miss accounting of the server's admission result cache.

    Distills the ``cache.admission.*`` counters of a server summary into
    ``{"hits", "misses", "hit_ratio"}`` — the number the canary guard
    watches: a warm serving mix whose decisions are miss-dominated means
    the content-addressed keys stopped matching (e.g. a signature change
    that broke permutation-invariance), not that the workload changed.
    """
    counters = server_summary.get("metrics", {})

    def _value(name: str) -> float:
        return float(counters.get(name, {}).get("value", 0.0))

    hits = _value("cache.admission.hits")
    misses = _value("cache.admission.misses")
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_ratio": hits / total if total else None,
    }


def bench_document(
    report: LoadReport,
    *,
    config: LoadConfig,
    server_summary: dict | None = None,
) -> dict:
    """The run as a ``BENCH_*.json`` canary document.

    Emitted directly in :data:`~repro.obs.benchjson.BENCH_SCHEMA_VERSION`
    form — per-request latency statistics in ``stats`` (so the fields
    line up with the pytest-benchmark-derived canaries), throughput and
    shed counts in ``extra_info``.
    """
    samples = report.latencies
    if samples:
        q1, median, q3 = (
            float(x) for x in np.percentile(samples, [25.0, 50.0, 75.0])
        )
        stats = {
            "min": float(min(samples)),
            "max": float(max(samples)),
            "mean": float(statistics.fmean(samples)),
            "stddev": float(statistics.pstdev(samples)),
            "median": median,
            "iqr": q3 - q1,
            "q1": q1,
            "q3": q3,
            "ops": report.throughput_rps,
            "total": float(sum(samples)),
            "rounds": len(samples),
            "iterations": 1,
        }
    else:
        stats = {
            key: None
            for key in (
                "min", "max", "mean", "stddev", "median", "iqr", "q1", "q3",
                "ops", "total", "rounds", "iterations",
            )
        }
    extra_info = {
        "load_config": {
            "duration_s": config.duration_s,
            "workers": config.workers,
            "target_rps": config.target_rps,
            "seed": config.seed,
            "catalogue_size": config.catalogue_size,
            "admit_fraction": config.admit_fraction,
            "release_fraction": config.release_fraction,
        },
        "report": report.to_dict(),
    }
    if server_summary is not None:
        extra_info["server"] = server_summary
        extra_info["admission_cache"] = admission_cache_summary(server_summary)
    uname = platform.uname()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "datetime": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "pytest_benchmark_version": None,
        "commit_info": None,
        "machine": {
            "node": uname.node,
            "machine": uname.machine,
            "system": uname.system,
            "release": uname.release,
            "python_version": platform.python_version(),
            "cpu": cpu_info(arch=uname.machine),
        },
        "benchmarks": [
            {
                "group": "service",
                "name": "loadgen",
                "fullname": "repro.service.loadgen::run_load",
                "params": None,
                "extra_info": extra_info,
                "stats": stats,
            }
        ],
    }
