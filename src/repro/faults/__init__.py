"""Lossy-medium fault injection and retransmission-aware analysis.

The package has three layers:

* :mod:`repro.faults.plan` — seeded, rate-bounded fault schedules
  (:class:`FaultPlan`): deterministic ``(seed, kind)`` event streams of
  token losses, frame corruptions, and station membership changes.
* :mod:`repro.faults.injector` — the per-run consumer both scalar
  simulators poll (:class:`FaultInjector`), charging the token
  claim/recovery latency to the ring and accounting everything in
  :class:`repro.sim.trace.FaultStats`.
* :mod:`repro.faults.analysis` — retransmission-aware schedulability
  tests (:class:`FaultBudget`): Theorems 4.1/5.1 inflated by the bounded
  per-period error budget so acceptance stays *sound* under any fault
  plan drawn at or below the declared rates.
"""

from repro.faults.analysis import (
    FaultBudget,
    fault_aware_breakdown_scale,
    pdp_fault_aware_schedulable,
    pdp_fault_inflations,
    ttp_fault_aware_allocation,
    ttp_fault_aware_schedulable,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    rate_for_loss_fraction,
)
from repro.faults.stats import FaultStats

__all__ = [
    "FaultBudget",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultStats",
    "fault_aware_breakdown_scale",
    "pdp_fault_aware_schedulable",
    "pdp_fault_inflations",
    "rate_for_loss_fraction",
    "ttp_fault_aware_allocation",
    "ttp_fault_aware_schedulable",
]
