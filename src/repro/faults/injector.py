"""Per-run fault event consumer shared by both scalar simulators.

A :class:`FaultInjector` is built fresh for every simulation run from the
run's :class:`~repro.faults.plan.FaultPlan` and horizon.  The simulators
poll it at their natural decision points:

* ``ring_stall(now)`` — consume every *ring* event (token loss, station
  join/leave) that has fired by ``now`` and return the total recovery
  stall to charge before the ring may arbitrate again.  This models the
  token claim/recovery process: the medium is unusable for the configured
  recovery latency after each ring fault.
* ``corrupt_frame(now)`` — consume at most one pending corruption event;
  when it returns True the simulator transmits the frame (occupying the
  medium) but the payload is not delivered, forcing a retransmission.

Consumption is lazy: an event that fires mid-transmission is charged at the
next decision point, matching a ring where loss is detected when the token
fails to circulate.  All accounting lands in a
:class:`~repro.sim.trace.FaultStats`, which the simulators attach to their
reports, and recovery stalls are additionally surfaced through
``repro.obs`` (``sim.faults.recovery_stall_s`` histogram) so traces and
manifests show where a lossy run spent its time.
"""

from __future__ import annotations

from collections import deque

from repro.faults.plan import FaultKind, FaultPlan, RING_KINDS
from repro.faults.stats import FaultStats
from repro.obs import metrics as _metrics

__all__ = ["FaultInjector"]

#: Recovery-stall observations, visible in metric snapshots and manifests.
_STALL_HIST = _metrics.histogram("sim.faults.recovery_stall_s")

#: Event-time comparisons share the simulators' timestamp tolerance.
_TIME_EPS = 1e-15


def _stall_cost(recovery_time_s: float) -> float:
    """Medium time charged per consumed ring fault.

    Module-level on purpose: the mutation smoke patches this symbol to
    simulate an implementation that consumes fault events but forgets to
    charge recovery (``fault_recovery_swallowed``), and the
    ``fault_plan_determinism`` fuzz property must flag that bug.
    """
    return recovery_time_s


class FaultInjector:
    """Consumes a plan's event schedule over one simulation run."""

    __slots__ = ("stats", "_ring_events", "_corruptions", "_recovery_time_s")

    def __init__(self, plan: FaultPlan, horizon_s: float):
        events = plan.events_until(horizon_s)
        self._ring_events: deque[tuple[float, FaultKind]] = deque(
            (event.time_s, event.kind) for event in events if event.kind in RING_KINDS
        )
        self._corruptions: deque[float] = deque(
            event.time_s
            for event in events
            if event.kind is FaultKind.FRAME_CORRUPTION
        )
        self._recovery_time_s = plan.recovery_time_s
        self.stats = FaultStats()

    def ring_stall(self, now_s: float) -> float:
        """Total recovery stall owed for ring events fired by ``now_s``."""
        stats = self.stats
        stall = 0.0
        while self._ring_events and self._ring_events[0][0] <= now_s + _TIME_EPS:
            _, kind = self._ring_events.popleft()
            if kind is FaultKind.TOKEN_LOSS:
                stats.token_losses += 1
            else:
                stats.membership_events += 1
            cost = _stall_cost(self._recovery_time_s)
            if cost > 0.0:
                stall += cost
                stats.recovery_time_s += cost
                _STALL_HIST.observe(cost)
        return stall

    def corrupt_frame(self, now_s: float) -> bool:
        """Consume at most one corruption event fired by ``now_s``."""
        if self._corruptions and self._corruptions[0] <= now_s + _TIME_EPS:
            self._corruptions.popleft()
            self.stats.corrupted_frames += 1
            return True
        return False

    def record_corrupted_time(self, occupancy_s: float) -> None:
        """Account medium time wasted by a corrupted transmission."""
        self.stats.corrupted_time_s += occupancy_s
